//! Offline stub of `proptest`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. This stub keeps the subset of the API the
//! workspace's property tests use — `proptest!`, range/tuple/`Just`/
//! regex-pattern strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`,
//! `collection::vec`, and the `prop_assert*` macros — implemented as a
//! deterministic generate-and-check loop (seeded SplitMix64, no
//! shrinking). Failing cases print their inputs before re-panicking.

pub mod test_runner {
    /// Runner configuration (subset of the real struct).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic SplitMix64 stream used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream. Each property uses a fixed seed so failures
        /// reproduce exactly.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty choice");
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A value generator. Unlike the real proptest there is no value
    /// tree and no shrinking: `new_value` draws one concrete value.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (for `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
        _marker: PhantomData<T>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union {
                options,
                _marker: PhantomData,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` regex-pattern strategies (`"[a-z]{0,8}"`, `"\\PC*"`, …)
    /// via the tiny generator in [`crate::string`].
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start);
            let len = if span == 0 {
                self.size.start
            } else {
                self.size.start + rng.below(span)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod string {
    //! A miniature regex-pattern string generator covering the pattern
    //! subset used in this workspace: literals, `[...]` classes with
    //! ranges, `\PC` (any printable), and the `*`, `+`, `?`, `{m,n}`
    //! quantifiers. Unsupported syntax falls back to emitting the
    //! pattern text literally, which keeps "never panics" fuzz tests
    //! meaningful without a full regex engine.

    use crate::test_runner::TestRng;

    const STAR_MAX: usize = 16;

    #[derive(Debug, Clone)]
    enum Atom {
        /// A fixed character.
        Literal(char),
        /// A set of candidate characters.
        Class(Vec<char>),
    }

    fn printable() -> Vec<char> {
        // A representative printable set: ASCII graphic + space + a few
        // multibyte characters to shake out byte/char confusions.
        let mut set: Vec<char> = (' '..='~').collect();
        set.extend(['é', 'Ω', '→', '☃']);
        set
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' => {
                    // Range if both ends present, else a literal '-'.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            let (lo, hi) = (lo.min(hi), lo.max(hi));
                            set.extend((lo..=hi).filter(|c| c.is_ascii()));
                            prev = None;
                        }
                        _ => {
                            set.push('-');
                            prev = Some('-');
                        }
                    }
                }
                c => {
                    set.push(c);
                    prev = Some(c);
                }
            }
        }
        if set.is_empty() {
            set.push('?');
        }
        set
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    // \PC — "printable character" (as used by the fuzz
                    // tests); \p{...}/other escapes degrade to the same.
                    Some('P') | Some('p') => {
                        if chars.peek() == Some(&'C') {
                            chars.next();
                        } else if chars.peek() == Some(&'{') {
                            for c in chars.by_ref() {
                                if c == '}' {
                                    break;
                                }
                            }
                        }
                        Atom::Class(printable())
                    }
                    Some(other) => Atom::Literal(other),
                    None => break,
                },
                '.' => Atom::Class(printable()),
                c => Atom::Literal(c),
            };
            // Quantifier?
            let (min, max) = match chars.peek().copied() {
                Some('*') => {
                    chars.next();
                    (0, STAR_MAX)
                }
                Some('+') => {
                    chars.next();
                    (1, STAR_MAX)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or_else(|_| {
                                lo.trim().parse::<usize>().unwrap_or(0) + STAR_MAX
                            }),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    };
                    (lo, hi.max(lo))
                }
                _ => (1, 1),
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    /// Generates one string matching (our subset of) `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let count = if max > min {
                min + rng.below(max - min + 1)
            } else {
                min
            };
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                }
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Forwarded to `assert!`: there is no shrink/reject machinery to feed.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Forwarded to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Forwarded to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among the listed strategies (all must share a value
/// type). Weights (`n => strat`) are not supported by the stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The main property-test macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs (deterministic seed)
/// and runs the body. On failure the generated inputs are printed and
/// the original panic is re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            // Stable per-test seed: derived from the test name so cases
            // differ between tests but reproduce across runs.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            };
            let mut rng = $crate::test_runner::TestRng::new(seed);
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stub: case {case} of {} failed with inputs:",
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..500 {
            let (a, b) = Strategy::new_value(&(3u32..7, 0.5f64..1.5), &mut rng);
            assert!((3..7).contains(&a));
            assert!((0.5..1.5).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::new_value(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn pattern_strings_match_charset() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = Strategy::new_value(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        // `\PC*` may be empty and must never panic.
        for _ in 0..200 {
            let _ = Strategy::new_value(&"\\PC*", &mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 5).count(), 0);
        }
    }
}
