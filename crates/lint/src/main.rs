//! `crlint` — workspace static analysis for the clockroute invariants.
//!
//! ```text
//! crlint --workspace [--json] [--root <dir>] [--no-allowlist-check]
//! crlint --explain CRxxx
//! ```
//!
//! Exit codes mirror `crplan`: 0 clean, 1 findings, 2 internal error
//! (bad arguments, unreadable tree, stale rule allowlist). See
//! DESIGN.md §11 for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("crlint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when the tree is clean, `Ok(false)` on findings.
fn run(args: Vec<String>) -> Result<bool, String> {
    let mut workspace = false;
    let mut json = false;
    let mut check_allowlists = true;
    let mut root: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--no-allowlist-check" => check_allowlists = false,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--explain" => {
                let rule = it.next().ok_or("--explain requires a rule ID (e.g. CR008)")?;
                let text = clockroute_lint::rules::explain(&rule)
                    .ok_or_else(|| format!("unknown rule `{rule}`; known rules: CR000..CR010"))?;
                println!("{text}");
                return Ok(true);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("nothing to do: pass --workspace\n{USAGE}"));
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            clockroute_lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };

    // A stale allowlist means some rule is silently mis-scoped, which
    // poisons every subsequent "clean" verdict — so it is an internal
    // error (exit 2), not a finding.
    if check_allowlists {
        let dead = clockroute_lint::check_allowlists(&root);
        if !dead.is_empty() {
            return Err(format!(
                "stale rule allowlist entr{} (file moved without updating \
                 crates/lint/src/rules.rs?):\n  {}",
                if dead.len() == 1 { "y" } else { "ies" },
                dead.join("\n  ")
            ));
        }
    }

    let findings = clockroute_lint::run_workspace(&root)?;
    if json {
        println!("{}", clockroute_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("crlint: workspace clean");
        } else {
            println!("crlint: {} finding(s)", findings.len());
        }
    }
    Ok(findings.is_empty())
}

const USAGE: &str = "\
usage: crlint --workspace [--json] [--root <dir>] [--no-allowlist-check]
       crlint --explain CRxxx

  --workspace           lint every first-party .rs file in the workspace
  --json                machine-readable output (deterministic ordering)
  --root <dir>          workspace root (default: walk up from the current dir)
  --no-allowlist-check  skip verifying rule allowlist paths exist on disk
  --explain CRxxx       print a rule's rationale, motivating bug, and
                        suppression syntax

exit codes: 0 clean, 1 findings, 2 internal error";
