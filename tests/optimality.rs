//! Optimality certification: the search algorithms must match the
//! exhaustive reference oracles on small instances.
//!
//! The oracles (`clockroute_core::reference`) enumerate every simple path
//! and every insertion assignment — they share no queue, pruning or
//! wave-front machinery with the algorithms under test, so agreement here
//! certifies the paper's optimality claims end-to-end.

use clockroute::core::reference;
use clockroute::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_graphs() -> Vec<(String, GridGraph)> {
    let mut graphs = Vec::new();
    // Open grids at pitches that force different insertion behaviour.
    for (w, h, pitch) in [(4u32, 3u32, 800.0f64), (3, 3, 1500.0), (5, 2, 1000.0)] {
        graphs.push((
            format!("open {w}x{h} @{pitch}"),
            GridGraph::open(w, h, Length::from_um(pitch)),
        ));
    }
    // Blocked variants: random node/edge blockages, seeded.
    let mut rng = StdRng::seed_from_u64(7);
    for seed in 0..4 {
        let mut blk = BlockageMap::new(4, 3);
        for _ in 0..3 {
            let p = Point::new(rng.gen_range(1..3), rng.gen_range(0..3));
            blk.block_node(p);
        }
        // One random edge blockage that keeps the corners connected.
        let y = rng.gen_range(0..3);
        blk.block_edge(Point::new(1, y), Point::new(2, y));
        graphs.push((
            format!("blocked 4x3 #{seed}"),
            GridGraph::new(blk, Length::from_um(900.0), Length::from_um(900.0)),
        ));
    }
    graphs
}

#[test]
fn fastpath_matches_exhaustive_min_delay() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for (name, g) in tiny_graphs() {
        let s = Point::new(0, 0);
        let t = Point::new(g.width() - 1, g.height() - 1);
        let max_edges = 12; // covers every simple path on these grids
        let oracle = reference::min_delay_exhaustive(&g, &tech, &lib, s, t, max_edges);
        let sol = FastPathSpec::new(&g, &tech, &lib).source(s).sink(t).solve();
        match (oracle, sol) {
            (Ok(best), Ok(sol)) => {
                assert!(
                    (sol.delay().ps() - best.ps()).abs() < 1e-6,
                    "{name}: fast path {} vs oracle {best}",
                    sol.delay()
                );
            }
            (Err(_), Err(_)) => {}
            (o, s2) => panic!("{name}: oracle {o:?} vs solver {s2:?} feasibility disagrees"),
        }
    }
}

#[test]
fn rbp_matches_exhaustive_min_registers() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for (name, g) in tiny_graphs() {
        let s = Point::new(0, 0);
        let t = Point::new(g.width() - 1, g.height() - 1);
        for period in [90.0, 120.0, 200.0, 400.0] {
            let t_phi = Time::from_ps(period);
            let oracle =
                reference::min_registers_exhaustive(&g, &tech, &lib, s, t, t_phi, 12);
            let sol = RbpSpec::new(&g, &tech, &lib)
                .source(s)
                .sink(t)
                .period(t_phi)
                .solve();
            match (oracle, sol) {
                (Ok(best), Ok(sol)) => assert_eq!(
                    sol.register_count(),
                    best,
                    "{name} @{period}ps: RBP used {} registers, oracle says {best}",
                    sol.register_count()
                ),
                (Err(_), Err(_)) => {}
                (o, s2) => {
                    panic!("{name} @{period}ps: oracle {o:?} vs solver {s2:?} disagree")
                }
            }
        }
    }
}

#[test]
fn gals_matches_exhaustive_min_latency() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for (name, g) in tiny_graphs() {
        let s = Point::new(0, 0);
        let t = Point::new(g.width() - 1, g.height() - 1);
        for (ts, tt) in [(150.0, 150.0), (120.0, 200.0), (250.0, 130.0)] {
            let (ts, tt) = (Time::from_ps(ts), Time::from_ps(tt));
            let oracle =
                reference::min_gals_latency_exhaustive(&g, &tech, &lib, s, t, ts, tt, 12);
            let sol = GalsSpec::new(&g, &tech, &lib)
                .source(s)
                .sink(t)
                .periods(ts, tt)
                .solve();
            match (oracle, sol) {
                (Ok(best), Ok(sol)) => assert!(
                    (sol.latency().ps() - best.ps()).abs() < 1e-6,
                    "{name} ({ts},{tt}): GALS latency {} vs oracle {best}",
                    sol.latency()
                ),
                (Err(_), Err(_)) => {}
                (o, s2) => {
                    panic!("{name} ({ts},{tt}): oracle {o:?} vs solver {s2:?} disagree")
                }
            }
        }
    }
}

#[test]
fn rbp_oracle_agreement_on_random_seeds() {
    // Wider randomised sweep on a slightly larger instance.
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..12 {
        let mut blk = BlockageMap::new(4, 4);
        for _ in 0..rng.gen_range(0..4) {
            blk.block_node(Point::new(rng.gen_range(0..4), rng.gen_range(1..3)));
        }
        let pitch = rng.gen_range(500.0..1500.0);
        let g = GridGraph::new(blk, Length::from_um(pitch), Length::from_um(pitch));
        let s = Point::new(0, 0);
        let t = Point::new(3, 3);
        let period = Time::from_ps(rng.gen_range(80.0..300.0));
        let oracle = reference::min_registers_exhaustive(&g, &tech, &lib, s, t, period, 15);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(s)
            .sink(t)
            .period(period)
            .solve();
        match (oracle, sol) {
            (Ok(best), Ok(sol)) => assert_eq!(
                sol.register_count(),
                best,
                "trial {trial} (pitch {pitch:.0}, T {period}): mismatch"
            ),
            (Err(_), Err(_)) => {}
            (o, s2) => panic!("trial {trial}: {o:?} vs {s2:?}"),
        }
    }
}
