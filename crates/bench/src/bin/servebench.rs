//! Service cache latency table: per-request wall-clock for the three
//! `crserve` answer paths — cold solve, exact-match cache hit, and
//! near-miss warm start — on growing grids.
//!
//! Before any time is reported, every path's response is asserted
//! byte-identical (modulo the `cache` label) to a cold solve on a fresh
//! service, so the table can never trade correctness for speed. The
//! run fails loudly if a cache hit is not at least 10× faster than the
//! cold solve it replays.
//!
//! Usage: `cargo run --release -p clockroute-bench --bin servebench [max_grid]`
//! (default 100; pass 200 to add the paper-sized grid).
//!
//! Besides the table, each run appends one JSONL record per grid to
//! `BENCH_serve.json` at the workspace root — cold/hit/warm latencies
//! plus the snapshot recovery time — so future PRs can diff service
//! performance as a trajectory, and one `serve.retry` record pinning
//! the deterministic client backoff schedule.

use clockroute_service::{Admission, RetryPolicy, Service, ServiceConfig};
use std::io::Write;
use std::time::Instant;

/// A scenario with `nets` short registered nets alternating between the
/// left and right die edges, plus one hard block in the right-middle
/// whose position is the only variable. A search footprint is the
/// arena's bounding box — roughly the cost-`len` diamond around the
/// net — so moving the block dirties only the right-middle corridors:
/// left-band nets and far right-band nets replay from the cached solve,
/// the few near the block re-route.
fn scenario_text(grid: u32, nets: u32, block_x: u32) -> String {
    let mut text = format!("die 25mm 25mm\ngrid {grid} {grid}\n");
    text.push_str(&format!(
        "block hard {block_x} {} {} {}\n",
        grid / 2 - 2,
        block_x + 3,
        grid / 2 + 1
    ));
    let len = grid / 5;
    for i in 0..nets {
        let y = 2 + i * (grid - 4) / nets;
        let (x0, x1) = if i % 2 == 0 {
            (1, 1 + len)
        } else {
            (grid - 2 - len, grid - 2)
        };
        text.push_str(&format!(
            "net reg name=n{i} src={x0},{y} dst={x1},{y} period=400\n"
        ));
    }
    text
}

fn route_line(text: &str) -> String {
    format!(
        "{{\"id\":\"b\",\"op\":\"route\",\"scenario\":{}}}",
        clockroute_core::telemetry::json_string(text)
    )
}

fn normalize(response: &str) -> String {
    response
        .replace("\"cache\":\"hit\"", "\"cache\":\"cold\"")
        .replace("\"cache\":\"warm\"", "\"cache\":\"cold\"")
        .replace("\"cache\":\"coalesced\"", "\"cache\":\"cold\"")
}

/// Times one request on `service`, asserting the response took the
/// expected cache path and matches `reference` byte-for-byte after
/// label normalization.
fn timed(service: &Service, line: &str, path: &str, reference: &str) -> f64 {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = Instant::now();
    let response = service.handle_line(line);
    let seconds = start.elapsed().as_secs_f64();
    assert!(
        response.contains(&format!("\"cache\":\"{path}\"")),
        "expected a {path} response, got: {response}"
    );
    assert_eq!(
        normalize(&response),
        normalize(reference),
        "{path} response diverged from the cold reference"
    );
    seconds
}

/// Appends one JSONL record to `BENCH_serve.json` at the workspace
/// root. Best-effort: a read-only checkout costs the trajectory entry,
/// not the bench run.
fn append_trajectory(record: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{record}"));
    if let Err(e) = appended {
        eprintln!("warning: cannot append to BENCH_serve.json: {e}");
    }
}

/// Populates a state directory with the solve for `line`, restarts a
/// service on it, and returns how long recovery (verified replay +
/// compaction) took. Asserts the recovered entry answers as a hit with
/// the reference bytes.
fn timed_recovery(line: &str, reference: &str, tag: &str) -> f64 {
    let dir = std::env::temp_dir().join(format!("servebench-state-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        state: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let first = Service::new(config.clone());
    first.handle_line(line);
    drop(first); // "crash": only the fsynced append log survives

    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = Instant::now();
    let recovered = Service::new(config);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.metrics().counter_value("service.persist.recovered"),
        1,
        "snapshot replay lost the entry"
    );
    let _ = timed(&recovered, line, "hit", reference);
    let _ = std::fs::remove_dir_all(&dir);
    seconds
}

/// Walks the deterministic client retry policy against a saturated
/// admission gate (the in-flight "solve" completes after three
/// rejections), returning the busy hint, the attempts taken, and the
/// full delay schedule. No clock involved: the schedule is a pure
/// function of the seed, which is what makes it a trajectory record
/// worth diffing.
fn retry_walk() -> (u64, u32, Vec<u64>) {
    let gate = Admission::new(1, 64, Some(50));
    let mut held = Some(gate.try_admit(1).expect("free slot"));
    let policy = RetryPolicy::new(0xC10C);
    let mut attempts = 0u32;
    let mut hint = 0u64;
    let mut delays = Vec::new();
    loop {
        match gate.try_admit(1) {
            Ok(_permit) => return (hint, attempts, delays),
            Err(rejection) => {
                hint = rejection.retry_after_ms().expect("busy is transient");
                let delay = policy
                    .backoff_ms(attempts, Some(hint))
                    .expect("schedule long enough for three rejections");
                delays.push(delay);
                attempts += 1;
                if attempts == 3 {
                    held.take(); // the in-flight solve finishes
                }
            }
        }
    }
}

/// Drives `clients` concurrent client threads against one sharded
/// service, each firing `PER_CLIENT` requests over a seeded mix of the
/// (pre-warmed) distinct scenarios. Every response is asserted
/// byte-identical to its cold reference before its latency counts.
/// Returns `(req_per_s, p50_ms, p99_ms)`.
fn concurrent_throughput(clients: usize, texts: &[String], refs: &[String]) -> (f64, f64, f64) {
    const PER_CLIENT: usize = 200;
    let service = Service::new(ServiceConfig {
        max_inflight: clients,
        ..ServiceConfig::default()
    });
    // Pre-warm every distinct scenario so the timed section measures
    // steady-state concurrent serving, not first-solve planning.
    for (text, reference) in texts.iter().zip(refs) {
        let got = service.handle_line(&route_line(text));
        assert_eq!(normalize(&got), normalize(reference));
    }

    let barrier = std::sync::Barrier::new(clients + 1);
    let (service, barrier, texts, refs) = (&service, &barrier, texts, refs);
    // crlint-allow: CR004 bench harness drives real concurrent clients; the service under test owns its own pool
    let (wall, latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(PER_CLIENT);
                    barrier.wait();
                    for r in 0..PER_CLIENT {
                        let idx = (clockroute_core::canon::mix64((c as u64) * 1009 ^ (r as u64))
                            % texts.len() as u64) as usize;
                        let line = route_line(&texts[idx]);
                        // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
                        let start = Instant::now();
                        let got = service.handle_line(&line);
                        latencies.push(start.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(
                            normalize(&got),
                            normalize(&refs[idx]),
                            "client {c} request {r} diverged"
                        );
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
        let start = Instant::now();
        let mut latencies = Vec::with_capacity(clients * PER_CLIENT);
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
        (start.elapsed().as_secs_f64(), latencies)
    });

    let mut sorted = latencies;
    sorted.sort_by(f64::total_cmp);
    let p50 = sorted[sorted.len() / 2];
    let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)];
    ((clients * PER_CLIENT) as f64 / wall, p50, p99)
}

fn main() {
    let max_grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    println!("# Service cache latency (cold / hit / warm)");
    println!();
    println!(
        "Each row: one scenario solved cold, replayed as an exact-match hit \
         (best of 5), then re-requested with the hard block moved (warm \
         start: only nets whose search footprints intersect the blockage \
         delta re-route). All responses asserted byte-identical to a fresh \
         cold solve before timing is reported."
    );
    println!();
    println!("| grid | nets | cold s | hit s | warm s | recovery s | hit speedup | warm speedup |");
    println!("|------|------|--------|-------|--------|------------|-------------|--------------|");

    for &(grid, nets) in [(60u32, 8u32), (100, 10), (200, 10)]
        .iter()
        .filter(|&&(g, _)| g <= max_grid)
    {
        let a = scenario_text(grid, nets, grid * 5 / 8);
        let b = scenario_text(grid, nets, grid * 3 / 4);
        let line_a = route_line(&a);
        let line_b = route_line(&b);

        // Fresh-service cold solves are the byte-identity references.
        let ref_a = Service::new(ServiceConfig::default()).handle_line(&line_a);
        let ref_b = Service::new(ServiceConfig::default()).handle_line(&line_b);

        let service = Service::new(ServiceConfig::default());
        let cold = timed(&service, &line_a, "cold", &ref_a);
        let hit = (0..5)
            .map(|_| timed(&service, &line_a, "hit", &ref_a))
            .fold(f64::INFINITY, f64::min);
        let warm = timed(&service, &line_b, "warm", &ref_b);

        let recovery = timed_recovery(&line_a, &ref_a, &format!("g{grid}"));

        let hit_speedup = cold / hit;
        let warm_speedup = cold / warm;
        println!(
            "| {grid}×{grid} | {nets} | {cold:.4} | {hit:.6} | {warm:.4} | {recovery:.4} | {hit_speedup:.0}× | {warm_speedup:.2}× |"
        );
        assert!(
            hit_speedup >= 10.0,
            "cache hit must be ≥10× faster than cold (got {hit_speedup:.1}×)"
        );
        // Only meaningful when the solve dominates disk latency: on a
        // fast box a sub-millisecond cold solve loses to the fsync-bound
        // replay no matter how cheap verification is.
        assert!(
            recovery < cold || cold < 0.002,
            "replaying a verified snapshot ({recovery:.4}s) must beat re-solving ({cold:.4}s)"
        );
        append_trajectory(&format!(
            "{{\"bench\":\"serve\",\"grid\":{grid},\"nets\":{nets},\"cold_s\":{cold:.6},\
             \"hit_s\":{hit:.6},\"warm_s\":{warm:.6},\"recovery_s\":{recovery:.6}}}"
        ));
    }

    let (hint, attempts, delays) = retry_walk();
    let delays_json: Vec<String> = delays.iter().map(u64::to_string).collect();
    println!();
    println!(
        "Client backoff (seed 0xC10C, server hint {hint} ms): {attempts} busy \
         rejections, delays {delays:?} ms — deterministic, so this schedule \
         is pinned in the trajectory record."
    );
    append_trajectory(&format!(
        "{{\"bench\":\"serve.retry\",\"hint_ms\":{hint},\"attempts\":{attempts},\
         \"delays_ms\":[{}]}}",
        delays_json.join(",")
    ));

    // Concurrent clients: seeded mix of duplicate/distinct scenarios
    // against the sharded cache, hit-heavy steady state.
    let texts: Vec<String> = [30u32, 34, 38, 42]
        .iter()
        .map(|&bx| scenario_text(60, 8, bx))
        .collect();
    let refs: Vec<String> = texts
        .iter()
        .map(|t| Service::new(ServiceConfig::default()).handle_line(&route_line(t)))
        .collect();
    println!();
    println!("## Concurrent clients (grid 60×60, 4 scenarios, hit-heavy)");
    println!();
    println!("| clients | req/s | p50 ms | p99 ms |");
    println!("|---------|-------|--------|--------|");
    let mut single_req_s = 0.0;
    for clients in [1usize, 4] {
        let (req_s, p50, p99) = concurrent_throughput(clients, &texts, &refs);
        println!("| {clients} | {req_s:.0} | {p50:.4} | {p99:.4} |");
        append_trajectory(&format!(
            "{{\"bench\":\"serve.concurrent\",\"clients\":{clients},\"req_s\":{req_s:.1},\
             \"p50_ms\":{p50:.4},\"p99_ms\":{p99:.4}}}"
        ));
        if clients == 1 {
            single_req_s = req_s;
        } else {
            // Honest bar for a 1-CPU container: hits are CPU-bound, so
            // extra clients cannot multiply throughput there — but the
            // sharded locks and bounded pool must not *lose* meaningful
            // throughput either. On multi-core hosts this passes with
            // headroom.
            assert!(
                req_s >= 0.75 * single_req_s,
                "{clients} clients ({req_s:.0} req/s) fell below 75% of the \
                 single-client baseline ({single_req_s:.0} req/s)"
            );
        }
    }

    println!();
    println!(
        "Interpretation: a hit replays stored bytes (no planning), so its \
         speedup is orders of magnitude and bounded only by hashing and \
         response assembly. Warm starts still pay for re-routing the nets \
         whose footprints intersect the moved block — footprints are \
         conservative over-approximations (arena bounding boxes), so the \
         warm win grows with die size and shrinks as the delta cuts \
         through more traffic."
    );
}
