//! The paper §I's *first* solution to multi-cycle routing: a purely
//! combinational channel where the receiver counts a predesignated
//! number of cycles before latching.
//!
//! No synchronizers are inserted; the signal simply takes
//! `k = ⌈delay / T⌉` cycles to settle, and — the disadvantage the paper
//! calls out — **consecutive sends cannot overlap**, so the channel's
//! throughput collapses to one datum per `k` cycles. This model exists
//! to quantify that trade-off against RBP pipelining
//! (`examples/three_solutions.rs`).

use clockroute_geom::units::Time;
use serde::{Deserialize, Serialize};

/// Simulation results for a multi-cycle combinational channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiCycleReport {
    /// Cycles the receiver must wait per datum (`k`).
    pub wait_cycles: u32,
    /// First-datum arrival time `k·T`.
    pub first_arrival: Time,
    /// Arrival time of the last datum.
    pub last_arrival: Time,
    /// Tokens delivered.
    pub delivered: usize,
    /// Delivered tokens per receiver cycle (`1/k` in steady state).
    pub throughput_tokens_per_cycle: f64,
}

/// A combinational channel with a cycle-counting receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiCycleChannel {
    delay: Time,
    period: Time,
}

impl MultiCycleChannel {
    /// Creates a channel with the given end-to-end combinational delay,
    /// clocked at `period`.
    ///
    /// # Panics
    ///
    /// Panics if the period or delay is not strictly positive and finite.
    pub fn new(delay: Time, period: Time) -> MultiCycleChannel {
        assert!(
            period.ps() > 0.0 && period.is_finite(),
            "period must be positive and finite"
        );
        assert!(
            delay.ps() > 0.0 && delay.is_finite(),
            "delay must be positive and finite"
        );
        MultiCycleChannel { delay, period }
    }

    /// The number of receiver cycles per datum: `⌈delay / T⌉`.
    pub fn wait_cycles(&self) -> u32 {
        (self.delay.ps() / self.period.ps()).ceil().max(1.0) as u32
    }

    /// Analytic latency `k·T`.
    pub fn analytic_latency(&self) -> Time {
        self.period * f64::from(self.wait_cycles())
    }

    /// Simulates `tokens` consecutive (non-overlapped) sends.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn simulate(&self, tokens: usize) -> MultiCycleReport {
        assert!(tokens > 0, "need at least one token");
        let k = self.wait_cycles();
        // Send i launches at (i·k)·T and is latched at (i·k + k)·T.
        let first_arrival = self.period * f64::from(k);
        let last_cycle = (tokens as u64) * u64::from(k);
        let last_arrival = self.period * last_cycle as f64;
        MultiCycleReport {
            wait_cycles: k,
            first_arrival,
            last_arrival,
            delivered: tokens,
            throughput_tokens_per_cycle: 1.0 / f64::from(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_cycles_round_up() {
        let ch = MultiCycleChannel::new(Time::from_ps(1370.0), Time::from_ps(300.0));
        assert_eq!(ch.wait_cycles(), 5);
        assert_eq!(ch.analytic_latency(), Time::from_ps(1500.0));
        // Exact multiple.
        let ch = MultiCycleChannel::new(Time::from_ps(900.0), Time::from_ps(300.0));
        assert_eq!(ch.wait_cycles(), 3);
        // Sub-cycle delay still costs one cycle.
        let ch = MultiCycleChannel::new(Time::from_ps(100.0), Time::from_ps(300.0));
        assert_eq!(ch.wait_cycles(), 1);
    }

    #[test]
    fn throughput_is_one_over_k() {
        let ch = MultiCycleChannel::new(Time::from_ps(1000.0), Time::from_ps(300.0));
        let r = ch.simulate(10);
        assert_eq!(r.wait_cycles, 4);
        assert!((r.throughput_tokens_per_cycle - 0.25).abs() < 1e-12);
        assert_eq!(r.first_arrival, Time::from_ps(1200.0));
        assert_eq!(r.last_arrival, Time::from_ps(12000.0));
        assert_eq!(r.delivered, 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_delay_rejected() {
        let _ = MultiCycleChannel::new(Time::ZERO, Time::from_ps(100.0));
    }
}
