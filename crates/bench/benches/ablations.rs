//! Ablation benches for the design choices called out in `DESIGN.md` §6:
//!
//! 1. two-queue vs array-of-queues RBP (paper §III, closing remark);
//! 2. the admissible wire feasibility bound on vs off (the mechanism the
//!    paper credits for RBP's speed advantage at small periods);
//! 3. latch routing overhead vs RBP (3-D vs 2-D pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use clockroute_bench::paper_setup;
use clockroute_core::{LatchSpec, RbpSpec, RbpVariant};
use clockroute_geom::units::Time;

fn bench_queue_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbp_queue_variant");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, tech, lib, s, t) = paper_setup(50);
    for (name, variant) in [
        ("two_queue", RbpVariant::TwoQueue),
        ("queue_array", RbpVariant::QueueArray),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &variant, |b, &v| {
            b.iter(|| {
                let sol = RbpSpec::new(&graph, &tech, &lib)
                    .source(s)
                    .sink(t)
                    .period(Time::from_ps(300.0))
                    .variant(v)
                    .solve()
                    .unwrap();
                black_box(sol.latency())
            })
        });
    }
    group.finish();
}

fn bench_wire_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbp_wire_bound");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, tech, lib, s, t) = paper_setup(50);
    for (name, enabled) in [("bound_on", true), ("bound_off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &enabled, |b, &e| {
            b.iter(|| {
                let sol = RbpSpec::new(&graph, &tech, &lib)
                    .source(s)
                    .sink(t)
                    .period(Time::from_ps(300.0))
                    .wire_bound(e)
                    .solve()
                    .unwrap();
                black_box(sol.stats().configs)
            })
        });
    }
    group.finish();
}

fn bench_latch_vs_rbp(c: &mut Criterion) {
    let mut group = c.benchmark_group("latch_vs_rbp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let (graph, tech, lib, s, t) = paper_setup(50);
    group.bench_function("rbp", |b| {
        b.iter(|| {
            let sol = RbpSpec::new(&graph, &tech, &lib)
                .source(s)
                .sink(t)
                .period(Time::from_ps(300.0))
                .solve()
                .unwrap();
            black_box(sol.register_count())
        })
    });
    group.bench_function("latch_borrow_60ps", |b| {
        b.iter(|| {
            let sol = LatchSpec::new(&graph, &tech, &lib)
                .source(s)
                .sink(t)
                .period(Time::from_ps(300.0))
                .borrow_window(Time::from_ps(60.0))
                .solve()
                .unwrap();
            black_box(sol.latch_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue_variants, bench_wire_bound, bench_latch_vs_rbp);
criterion_main!(benches);
