//! Regenerates **Table I** (E1): RBP statistics as a function of `T_φ` on
//! the 200×200 grid (0.125 mm separation, terminals 40 mm apart), plus
//! the §V-A trend verdicts (E6).
//!
//! Usage: `cargo run --release -p clockroute-bench --bin table1 [grid]`
//! (default grid 200; pass e.g. 100 for a quicker run).

use clockroute_bench::{format_table1, table1, trends, PAPER_PERIODS};

fn main() {
    let grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    eprintln!("# Table I reproduction — {grid}×{grid} grid, terminals 40 mm apart");
    eprintln!("# (paper columns shown beside measured values)\n");
    let rows = table1(grid, &PAPER_PERIODS);
    println!("{}", format_table1(&rows));

    let v = trends(&rows);
    println!("\n## §V-A observation verdicts (E6)");
    println!(
        "- obs.1 registers increase as T_phi decreases ............ {}",
        verdict(v.registers_monotone)
    );
    println!(
        "- obs.1 register separation decreases .................... {}",
        verdict(v.reg_sep_monotone)
    );
    println!(
        "- obs.2 configs examined decrease with T_phi ............. {}",
        verdict(v.configs_decrease)
    );
    println!(
        "- obs.3 RBP faster than fast path below a threshold ...... {}",
        verdict(v.rbp_faster_below_threshold)
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "NOT reproduced"
    }
}
