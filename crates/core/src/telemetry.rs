//! Structured search telemetry: counters, gauges, spans and events.
//!
//! Production routing flows are tuned off per-net counters — pops,
//! prunes, arena growth, phase timings — so every search and the
//! multi-net planner report what they did through a [`Telemetry`] sink.
//! The design splits the API along a determinism boundary:
//!
//! * **Counters and gauges** are pure functions of the search inputs
//!   (pops, pushes, prunes, promotions, arena bytes, budget charges).
//!   They are replayed from per-net shards in commit order, so an
//!   aggregated [`MetricsRecorder`] produces **byte-identical JSON for
//!   every `--jobs` value** — asserted by the CLI end-to-end tests.
//! * **Spans and events** carry wall-clock time and scheduling detail
//!   (rounds, conflicts, re-routes). They are trace-only: useful for
//!   reading one run, never included in the deterministic metrics JSON.
//!
//! The default sink is nothing at all: specs hold a
//! [`TelemetryHandle`], a `Copy` option-of-reference whose methods
//! compile to a branch on `None` — zero cost unless a sink is attached.
//!
//! Two concrete sinks ship here: [`MetricsRecorder`] (in-memory
//! aggregation + ordered op log for shard replay) and [`TraceWriter`]
//! (JSONL event stream). [`Tee`] fans one instrumentation stream out to
//! both.

use crate::lockcheck::{LockRank, OrderedMutex};
use crate::stats::SearchStats;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// A telemetry field value (borrowed; sinks serialize immediately).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer (counts, sizes).
    U64(u64),
    /// Floating point (delays, latencies, picoseconds).
    F64(f64),
    /// Short borrowed text (stage names, net names, outcomes).
    Str(&'a str),
}

/// A telemetry sink. All methods default to no-ops so a sink only
/// implements what it consumes; `Sync` because one sink may be shared by
/// planner worker threads.
pub trait Telemetry: Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, _name: &str, _delta: u64) {}
    /// Raises the named gauge to `value` if larger (max-merge, so shard
    /// replay order cannot change the result).
    fn gauge_max(&self, _name: &str, _value: u64) {}
    /// Sets the named gauge to `value` unconditionally (last-value
    /// semantics, so the gauge can shrink — cache length after eviction,
    /// queue depth after drain). Only meaningful from serialized call
    /// sites: replaying last-value writes from concurrent shards would
    /// make the result order-dependent, which is why the planner's
    /// per-net shards stick to [`gauge_max`](Telemetry::gauge_max).
    fn gauge_set(&self, _name: &str, _value: u64) {}
    /// Records a completed span of `nanos` wall-clock nanoseconds.
    /// Trace-only: never part of the deterministic metrics surface.
    fn span_ns(&self, _name: &str, _nanos: u64) {}
    /// Records a structured event. Trace-only, like spans.
    fn event(&self, _name: &str, _fields: &[(&str, Value<'_>)]) {}
}

/// Forward through shared references so borrowed sinks compose
/// (e.g. `Tee(&recorder, &trace)`).
impl<T: Telemetry + ?Sized> Telemetry for &T {
    fn counter(&self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }
    fn gauge_max(&self, name: &str, value: u64) {
        (**self).gauge_max(name, value);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        (**self).gauge_set(name, value);
    }
    fn span_ns(&self, name: &str, nanos: u64) {
        (**self).span_ns(name, nanos);
    }
    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        (**self).event(name, fields);
    }
}

/// Forward through `Arc` so sinks can be shared across threads and
/// composed (e.g. `Tee<Arc<dyn …>, Arc<dyn …>>`).
impl<T: Telemetry + Send + ?Sized> Telemetry for Arc<T> {
    fn counter(&self, name: &str, delta: u64) {
        (**self).counter(name, delta);
    }
    fn gauge_max(&self, name: &str, value: u64) {
        (**self).gauge_max(name, value);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        (**self).gauge_set(name, value);
    }
    fn span_ns(&self, name: &str, nanos: u64) {
        (**self).span_ns(name, nanos);
    }
    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        (**self).event(name, fields);
    }
}

/// The no-op sink (what an unattached handle behaves like).
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Telemetry for Noop {}

/// A `Copy` handle the specs carry: either nothing (the default — every
/// call is a single untaken branch) or a borrowed sink.
#[derive(Clone, Copy, Default)]
pub struct TelemetryHandle<'a> {
    sink: Option<&'a dyn Telemetry>,
}

impl fmt::Debug for TelemetryHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.sink.is_some() {
            "TelemetryHandle(attached)"
        } else {
            "TelemetryHandle(none)"
        })
    }
}

impl<'a> TelemetryHandle<'a> {
    /// The detached handle (all operations are no-ops).
    pub const fn none() -> TelemetryHandle<'a> {
        TelemetryHandle { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn new(sink: &'a dyn Telemetry) -> TelemetryHandle<'a> {
        TelemetryHandle { sink: Some(sink) }
    }

    /// `true` when a sink is attached.
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }

    /// See [`Telemetry::counter`].
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(s) = self.sink {
            s.counter(name, delta);
        }
    }

    /// See [`Telemetry::gauge_max`].
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(s) = self.sink {
            s.gauge_max(name, value);
        }
    }

    /// See [`Telemetry::gauge_set`].
    #[inline]
    pub fn gauge_set(&self, name: &str, value: u64) {
        if let Some(s) = self.sink {
            s.gauge_set(name, value);
        }
    }

    /// See [`Telemetry::span_ns`].
    #[inline]
    pub fn span_ns(&self, name: &str, nanos: u64) {
        if let Some(s) = self.sink {
            s.span_ns(name, nanos);
        }
    }

    /// See [`Telemetry::event`].
    #[inline]
    pub fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        if let Some(s) = self.sink {
            s.event(name, fields);
        }
    }

    /// Flushes one search's statistics: deterministic counters/gauges
    /// keyed `search.<stage>.*`, plus a trace-only span and completion
    /// event. Called once per `solve`, on success and on error alike, so
    /// budget-exhausted and infeasible searches are visible too.
    pub(crate) fn flush_search(
        &self,
        stage: &str,
        stats: &SearchStats,
        elapsed: Duration,
        ok: bool,
    ) {
        let Some(sink) = self.sink else { return };
        let emit = |suffix: &str, v: u64| {
            if v > 0 {
                sink.counter(&format!("search.{stage}.{suffix}"), v);
            }
        };
        emit("solves", 1);
        emit("errors", u64::from(!ok));
        emit("pops", stats.configs);
        emit("pushed", stats.pushed);
        emit("pruned", stats.pruned);
        emit("bound_rejected", stats.bound_rejected);
        emit("stale_skipped", stats.stale_skipped);
        emit("waves", u64::from(stats.waves));
        emit("promoted", stats.promoted);
        emit("arena_steps", stats.arena_steps);
        emit("arena_bytes", stats.arena_bytes());
        emit("budget_charges", stats.budget_charges);
        emit("goal_pruned", stats.goal_pruned);
        emit("front_comparisons", stats.front_comparisons);
        sink.gauge_max(&format!("search.{stage}.max_queue"), stats.max_queue as u64);
        let span = format!("search.{stage}.solve_ns");
        sink.span_ns(&span, elapsed.as_nanos() as u64);
        sink.event(
            &format!("search.{stage}.done"),
            &[
                ("ok", Value::U64(u64::from(ok))),
                ("pops", Value::U64(stats.configs)),
                ("waves", Value::U64(u64::from(stats.waves))),
                ("arena_steps", Value::U64(stats.arena_steps)),
            ],
        );
    }
}

/// One recorded operation, kept in call order so a per-net shard can be
/// replayed into an aggregate sink at commit time.
#[derive(Debug, Clone)]
enum Op {
    Counter(String, u64),
    Gauge(String, u64),
    GaugeSet(String, u64),
    Span(String, u64),
    Event(String, Vec<(String, OwnedValue)>),
}

#[derive(Debug, Clone)]
enum OwnedValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl OwnedValue {
    fn of(v: &Value<'_>) -> OwnedValue {
        match *v {
            Value::U64(x) => OwnedValue::U64(x),
            Value::F64(x) => OwnedValue::F64(x),
            Value::Str(s) => OwnedValue::Str(s.to_owned()),
        }
    }

    fn to_json(&self) -> String {
        match self {
            OwnedValue::U64(x) => x.to_string(),
            OwnedValue::F64(x) if x.is_finite() => format!("{x}"),
            OwnedValue::F64(_) => "null".to_owned(),
            OwnedValue::Str(s) => json_string(s),
        }
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    log: Vec<Op>,
}

/// In-memory aggregating sink.
///
/// Aggregates counters (sum) and gauges (max) into sorted maps, and
/// additionally keeps every operation — spans and events included — in
/// call order so the whole shard can be replayed with [`replay_into`]
/// (`MetricsRecorder::replay_into`). The planner gives each net its own
/// shard and replays committed shards in net order, which is what makes
/// the merged metrics independent of worker count and scheduling.
#[derive(Debug)]
pub struct MetricsRecorder {
    /// Telemetry-ranked (the leaf of the lattice): a recorder may be
    /// locked while any other lock is held, but must itself call out
    /// to nothing. Poisoning is ridden through inside `OrderedMutex` —
    /// telemetry must never take the search down.
    inner: OrderedMutex<RecorderInner>,
}

impl Default for MetricsRecorder {
    fn default() -> MetricsRecorder {
        MetricsRecorder::new()
    }
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            inner: OrderedMutex::new(LockRank::Telemetry, "telemetry.recorder", RecorderInner::default()),
        }
    }

    /// Replays every recorded operation, in original call order, into
    /// another sink.
    pub fn replay_into(&self, sink: &dyn Telemetry) {
        // Snapshot the log and release before replaying: the sink is
        // typically another Telemetry-ranked recorder, and replaying
        // under our own lock would be a same-rank double acquire (and
        // a needlessly long hold).
        let log: Vec<Op> = self.inner.lock().log.clone();
        for op in &log {
            match op {
                Op::Counter(name, delta) => sink.counter(name, *delta),
                Op::Gauge(name, value) => sink.gauge_max(name, *value),
                Op::GaugeSet(name, value) => sink.gauge_set(name, *value),
                Op::Span(name, ns) => sink.span_ns(name, *ns),
                Op::Event(name, fields) => {
                    let borrowed: Vec<(&str, Value<'_>)> = fields
                        .iter()
                        .map(|(k, v)| {
                            let val = match v {
                                OwnedValue::U64(x) => Value::U64(*x),
                                OwnedValue::F64(x) => Value::F64(*x),
                                OwnedValue::Str(s) => Value::Str(s.as_str()),
                            };
                            (k.as_str(), val)
                        })
                        .collect();
                    sink.event(name, &borrowed);
                }
            }
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (0 if never touched).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.inner.lock().gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.inner.lock()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Deterministic JSON document of counters and gauges.
    ///
    /// Only the deterministic surface is serialized — spans and events
    /// never appear here — and keys are emitted in sorted order, so for
    /// a fixed scenario this output is byte-identical across runs and
    /// `--jobs` values.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &inner.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(&json_string(k));
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &inner.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(&json_string(k));
            out.push_str(": ");
            out.push_str(&v.to_string());
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Aligned `name  value` rows (counters then gauges, sorted), for
    /// the report summary table. Deterministic for the same reason as
    /// [`to_json`](MetricsRecorder::to_json).
    pub fn summary_rows(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let width = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        inner
            .counters
            .iter()
            .chain(inner.gauges.iter())
            .map(|(k, v)| format!("{k:<width$}  {v}"))
            .collect()
    }
}

impl Telemetry for MetricsRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
        inner.log.push(Op::Counter(name.to_owned(), delta));
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        let slot = inner.gauges.entry(name.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
        inner.log.push(Op::Gauge(name.to_owned(), value));
    }

    fn gauge_set(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_owned(), value);
        inner.log.push(Op::GaugeSet(name.to_owned(), value));
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.inner.lock().log.push(Op::Span(name.to_owned(), nanos));
    }

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        let owned = fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), OwnedValue::of(v)))
            .collect();
        self.inner.lock().log.push(Op::Event(name.to_owned(), owned));
    }
}

/// JSONL event-trace sink: every operation becomes one JSON object per
/// line, written immediately. Write errors are swallowed — telemetry
/// must never fail a route.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Send> {
    out: OrderedMutex<W>,
}

impl<W: Write + Send> TraceWriter<W> {
    /// Wraps a writer (a `File`, a `Vec<u8>`, …).
    pub fn new(out: W) -> TraceWriter<W> {
        TraceWriter {
            out: OrderedMutex::new(LockRank::Telemetry, "telemetry.trace", out),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner();
        let _ = w.flush();
        w
    }

    fn line(&self, text: &str) {
        let mut out = self.out.lock();
        let _ = writeln!(out, "{text}");
    }
}

impl<W: Write + Send> Telemetry for TraceWriter<W> {
    fn counter(&self, name: &str, delta: u64) {
        self.line(&format!(
            "{{\"kind\":\"counter\",\"name\":{},\"delta\":{delta}}}",
            json_string(name)
        ));
    }

    fn gauge_max(&self, name: &str, value: u64) {
        self.line(&format!(
            "{{\"kind\":\"gauge\",\"name\":{},\"max\":{value}}}",
            json_string(name)
        ));
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.line(&format!(
            "{{\"kind\":\"gauge_set\",\"name\":{},\"value\":{value}}}",
            json_string(name)
        ));
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.line(&format!(
            "{{\"kind\":\"span\",\"name\":{},\"ns\":{nanos}}}",
            json_string(name)
        ));
    }

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        let mut body = String::new();
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&json_string(k));
            body.push(':');
            body.push_str(&OwnedValue::of(v).to_json());
        }
        self.line(&format!(
            "{{\"kind\":\"event\",\"name\":{},\"fields\":{{{body}}}}}",
            json_string(name)
        ));
    }
}

/// Fans every operation out to two sinks (metrics + trace, typically).
#[derive(Debug)]
pub struct Tee<A: Telemetry, B: Telemetry>(pub A, pub B);

impl<A: Telemetry, B: Telemetry> Telemetry for Tee<A, B> {
    fn counter(&self, name: &str, delta: u64) {
        self.0.counter(name, delta);
        self.1.counter(name, delta);
    }
    fn gauge_max(&self, name: &str, value: u64) {
        self.0.gauge_max(name, value);
        self.1.gauge_max(name, value);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        self.0.gauge_set(name, value);
        self.1.gauge_set(name, value);
    }
    fn span_ns(&self, name: &str, nanos: u64) {
        self.0.span_ns(name, nanos);
        self.1.span_ns(name, nanos);
    }
    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        self.0.event(name, fields);
        self.1.event(name, fields);
    }
}

/// Escapes `s` as a JSON string literal (quotes included). Public
/// because every JSON producer in the workspace (trace lines, `crserve`
/// protocol responses) must escape identically for `validate_json` /
/// `validate_jsonl` to hold.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `text` is one well-formed JSON value (object, array,
/// string, number, boolean or null) with nothing but whitespace after
/// it. A minimal recursive-descent checker for the test-suite — this
/// workspace ships no JSON parser dependency.
///
/// # Errors
///
/// Returns a byte offset + message on the first syntax error.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

/// Validates JSONL: every non-empty line must be a well-formed JSON
/// value.
///
/// # Errors
///
/// Returns the first offending line (1-based) and its error.
pub fn validate_jsonl(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(format!("unexpected end of input at byte {pos}"));
    };
    match c {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos),
        b't' => parse_literal(b, pos, "true"),
        b'f' => parse_literal(b, pos, "false"),
        b'n' => parse_literal(b, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => Err(format!("unexpected byte {:?} at {pos}", c as char)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(&b'e' | &b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(&b'+' | &b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let h = TelemetryHandle::none();
        assert!(!h.is_active());
        h.counter("x", 1);
        h.gauge_max("x", 1);
        h.span_ns("x", 1);
        h.event("x", &[("k", Value::U64(1))]);
    }

    #[test]
    fn recorder_aggregates_counters_and_gauges() {
        let rec = MetricsRecorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.counter("b", 1);
        rec.gauge_max("q", 7);
        rec.gauge_max("q", 4); // lower: ignored
        assert_eq!(rec.counter_value("a"), 5);
        assert_eq!(rec.counter_value("b"), 1);
        assert_eq!(rec.counter_value("missing"), 0);
        assert_eq!(rec.gauge_value("q"), 7);
    }

    #[test]
    fn replay_reproduces_aggregates_and_order() {
        let shard = MetricsRecorder::new();
        shard.counter("a", 2);
        shard.gauge_max("g", 9);
        shard.span_ns("s", 123);
        shard.event("e", &[("net", Value::Str("n0")), ("x", Value::F64(1.5))]);
        shard.counter("a", 1);

        let total = MetricsRecorder::new();
        shard.replay_into(&total);
        assert_eq!(total.counter_value("a"), 3);
        assert_eq!(total.gauge_value("g"), 9);

        // Replay into a trace preserves call order.
        let trace = TraceWriter::new(Vec::new());
        shard.replay_into(&trace);
        let text = String::from_utf8(trace.into_inner()).unwrap();
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| l.split('"').nth(3).unwrap())
            .collect();
        assert_eq!(kinds, ["counter", "gauge", "span", "event", "counter"]);
        validate_jsonl(&text).unwrap();
    }

    #[test]
    fn gauge_set_is_last_value_while_gauge_max_keeps_the_peak() {
        let rec = MetricsRecorder::new();
        rec.gauge_set("len", 5);
        rec.gauge_set("len", 3); // shrink is visible — the whole point
        rec.gauge_max("len.max", 5);
        rec.gauge_max("len.max", 3);
        assert_eq!(rec.gauge_value("len"), 3);
        assert_eq!(rec.gauge_value("len.max"), 5);

        // A max-merge after a set still raises, a lower one still loses.
        rec.gauge_max("len", 9);
        assert_eq!(rec.gauge_value("len"), 9);
        rec.gauge_set("len", 2);
        assert_eq!(rec.gauge_value("len"), 2);
    }

    #[test]
    fn replay_preserves_gauge_set_ordering() {
        let shard = MetricsRecorder::new();
        shard.gauge_set("len", 7);
        shard.gauge_set("len", 4);
        let total = MetricsRecorder::new();
        shard.replay_into(&total);
        assert_eq!(total.gauge_value("len"), 4, "replay must keep call order");

        let trace = TraceWriter::new(Vec::new());
        shard.replay_into(&trace);
        let text = String::from_utf8(trace.into_inner()).unwrap();
        validate_jsonl(&text).unwrap();
        assert_eq!(text.matches("\"gauge_set\"").count(), 2);
    }

    #[test]
    fn json_export_is_sorted_and_valid() {
        let rec = MetricsRecorder::new();
        rec.counter("z.last", 1);
        rec.counter("a.first", 2);
        rec.gauge_max("m.mid", 3);
        rec.span_ns("never.in.json", 1); // spans excluded
        let json = rec.to_json();
        validate_json(&json).unwrap();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "keys must be sorted:\n{json}");
        assert!(!json.contains("never.in.json"));
    }

    #[test]
    fn json_export_identical_regardless_of_call_order() {
        let forward = MetricsRecorder::new();
        forward.counter("a", 1);
        forward.counter("b", 2);
        forward.gauge_max("g", 5);
        forward.gauge_max("g", 9);
        let backward = MetricsRecorder::new();
        backward.gauge_max("g", 9);
        backward.gauge_max("g", 5);
        backward.counter("b", 2);
        backward.counter("a", 1);
        assert_eq!(forward.to_json(), backward.to_json());
    }

    #[test]
    fn empty_recorder_exports_valid_json() {
        let json = MetricsRecorder::new().to_json();
        validate_json(&json).unwrap();
    }

    #[test]
    fn trace_lines_are_valid_jsonl_with_escaping() {
        let trace = TraceWriter::new(Vec::new());
        trace.counter("weird \"name\"\n", 1);
        trace.event(
            "e",
            &[
                ("s", Value::Str("a\\b\t")),
                ("nan", Value::F64(f64::NAN)),
                ("f", Value::F64(2.25)),
            ],
        );
        let text = String::from_utf8(trace.into_inner()).unwrap();
        validate_jsonl(&text).unwrap();
        assert!(text.contains("null"), "NaN must serialize as null: {text}");
    }

    #[test]
    fn tee_duplicates_operations() {
        let a = MetricsRecorder::new();
        let b = Arc::new(MetricsRecorder::new());
        let tee = Tee(&a, b.clone());
        tee.counter("x", 4);
        tee.gauge_max("g", 2);
        assert_eq!(a.counter_value("x"), 4);
        assert_eq!(b.counter_value("x"), 4);
        assert_eq!(a.gauge_value("g"), 2);
        assert_eq!(b.gauge_value("g"), 2);
    }

    #[test]
    fn summary_rows_are_aligned_and_sorted() {
        let rec = MetricsRecorder::new();
        rec.counter("bbb.long.name", 10);
        rec.counter("a", 2);
        rec.gauge_max("zz.gauge", 3);
        let rows = rec.summary_rows();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("a "), "{rows:?}");
        assert!(rows[0].ends_with(" 2"), "{rows:?}");
        assert!(rows[2].starts_with("zz.gauge"), "{rows:?}");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\": [1, 2.5, \"x\", true, null], \"b\": {}}",
            "  {\"nested\": {\"deep\": [[[]]]}}  ",
            "\"\\u00e9\\n\"",
        ] {
            assert!(validate_json(good).is_ok(), "{good}");
        }
        for bad in [
            "", "{", "}", "{\"a\":}", "{\"a\":1,}", "[1 2]", "tru", "1.",
            "01x", "\"unterminated", "{\"a\":1} extra", "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
        assert!(validate_jsonl("{}\n[1]\n\n\"x\"\n").is_ok());
        assert!(validate_jsonl("{}\nnot json\n").is_err());
    }
}
