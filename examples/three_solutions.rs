//! The paper §I's three solutions to multi-cycle cross-chip routing,
//! quantified side by side on the same net:
//!
//! 1. **combinational multi-cycle** — the receiver counts `k` cycles;
//!    consecutive sends cannot overlap (throughput `1/k`);
//! 2. **register pipelining (RBP)** — synchronizers inserted optimally;
//!    one datum per cycle, robust, but clock load grows;
//! 3. **wave pipelining** — several wavefronts share the wire; fast, but
//!    feasibility collapses as delay variation grows.
//!
//! Run with: `cargo run --release --example three_solutions`

use clockroute::prelude::*;
use clockroute_sim::{MultiCycleChannel, RegisterPipeline, StallPattern, WavePipe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20 mm net on a 0.25 mm grid, clocked at 300 ps.
    let graph = GridGraph::open(90, 90, Length::from_um(250.0));
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    let (s, t) = (Point::new(2, 2), Point::new(42, 42));
    let period = Time::from_ps(300.0);

    // Shared starting point: the minimum-delay buffered route.
    let fast = FastPathSpec::new(&graph, &tech, &lib)
        .source(s)
        .sink(t)
        .solve()?;
    println!(
        "net: 20 mm, optimal buffered delay {:.0} ({} buffers), clock {period}\n",
        fast.delay(),
        fast.buffer_count()
    );

    println!(
        "{:<26} {:>8} {:>12} {:>14} {:>10}",
        "solution", "cycles", "latency", "throughput", "sync elems"
    );

    // 1. Combinational multi-cycle.
    let mc = MultiCycleChannel::new(fast.delay(), period);
    let mc_run = mc.simulate(100);
    println!(
        "{:<26} {:>8} {:>9.0} ps {:>11.3}/ns {:>10}",
        "combinational (counting)",
        mc_run.wait_cycles,
        mc.analytic_latency().ps(),
        mc_run.throughput_tokens_per_cycle * 1.0e3 / period.ps(),
        0
    );

    // 2. Register pipelining (RBP).
    let rbp = RbpSpec::new(&graph, &tech, &lib)
        .source(s)
        .sink(t)
        .period(period)
        .solve()?;
    let pipe = RegisterPipeline::new(rbp.register_count(), period);
    let pipe_run = pipe.simulate(100, StallPattern::None);
    println!(
        "{:<26} {:>8} {:>9.0} ps {:>11.3}/ns {:>10}",
        "register pipelining (RBP)",
        rbp.register_count() + 1,
        pipe_run.first_arrival.ps(),
        pipe_run.throughput_tokens_per_cycle * 1.0e3 / period.ps(),
        rbp.register_count()
    );

    // 3. Wave pipelining at increasing delay variation.
    for spread in [0.02, 0.10, 0.25] {
        let wp = WavePipe::new(fast.delay(), spread, Time::from_ps(20.0), period);
        let safe = Time::from_ps(wp.min_launch_interval().ps().max(period.ps()));
        let run = wp.simulate(200, safe, 7);
        assert_eq!(run.collisions, 0, "safe rate must not interfere");
        println!(
            "{:<26} {:>8} {:>9.0} ps {:>11.3}/ns {:>10}",
            format!("wave pipelining ±{:.0}%", spread * 100.0),
            wp.latency_cycles(),
            wp.analytic_latency().ps(),
            wp.analytic_throughput_tokens_per_ns(),
            0
        );
    }

    // Demonstrate the wave-pipelining hazard the paper warns about:
    // at ±25 % variation, launching at the ±2 % rate interferes.
    let optimistic = WavePipe::new(fast.delay(), 0.02, Time::from_ps(20.0), period);
    let pessimistic = WavePipe::new(fast.delay(), 0.25, Time::from_ps(20.0), period);
    let run = pessimistic.simulate(200, optimistic.min_launch_interval(), 7);
    println!(
        "\nhazard check: ±2 %-rate launches under ±25 % variation ⇒ {} collisions in 200 waves",
        run.collisions
    );
    assert!(run.collisions > 0);
    println!("(\"wave pipelining is very sensitive to delay, process, and temperature");
    println!("  variations — effects that are even more pronounced for long routes\" — §I)");
    Ok(())
}
