// Fixture: CR000 — suppression hygiene.

fn naked_allow(v: &[u32]) -> u32 {
    // crlint-allow: CR002
    v.first().unwrap() + 1
}

fn justified_allow(v: &[u32]) -> u32 {
    // crlint-allow: CR002 fixture: callers guarantee non-empty input
    v.first().unwrap() + 1
}

fn unknown_rule(v: &[u32]) -> u32 {
    // crlint-allow: CR999 no such rule exists
    v.first().copied().unwrap_or(0)
}
