//! Per-request admission control and request timing.
//!
//! This is the **only** module in `clockroute-service` that reads a
//! clock (crlint CR003 enforces that). Everything else in the crate is
//! a pure function of its inputs, which is what keeps service
//! responses byte-identical to a cold `crplan` run.
//!
//! Admission is deliberately deterministic where it matters for tests:
//! the net-count cap rejects before any clock is consulted, so a
//! too-large request always gets the same `busy` response; only the
//! in-flight permit count (a concurrency limit) and the search
//! deadline depend on runtime conditions.
//!
//! Admission is also deliberately **lock-free** (one CAS loop on an
//! atomic permit count), so it sits *outside* the
//! [`clockroute_core::lockcheck`] rank lattice: a permit can be
//! acquired or released at any point of the request path without
//! interacting with the ranked locks. That is an invariant worth
//! keeping — giving admission a mutex would force it a rank below
//! `Pool`, i.e. it could never be touched from inside a pooled worker
//! that holds anything. The permit itself, like a `SolveSlot` claim,
//! is a *resource* the rank checker cannot see; its release-on-drop
//! discipline is covered by the inflight-accounting tests instead.

use clockroute_core::SearchBudget;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Fallback per-solve estimate when no `--budget-ms` is configured,
/// used only to derive `retry_after_ms` hints.
const DEFAULT_SOLVE_MS: u64 = 25;

/// Why a request was turned away at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// More requests in flight than the configured limit.
    Busy {
        /// The configured in-flight ceiling.
        limit: usize,
        /// Deterministic client back-off hint (see
        /// [`Rejection::retry_after_ms`]).
        retry_after_ms: u64,
    },
    /// The scenario declares more nets than the service accepts.
    TooLarge {
        /// Nets in the request.
        nets: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl Rejection {
    /// Human-readable reason, used verbatim in `busy` responses.
    pub fn reason(&self) -> String {
        match self {
            Rejection::Busy { limit, .. } => {
                format!("too many requests in flight (limit {limit})")
            }
            Rejection::TooLarge { nets, limit } => {
                format!("scenario has {nets} nets, limit {limit}")
            }
        }
    }

    /// When the client should try again, in milliseconds — `Some` only
    /// for transient rejections ([`Rejection::Busy`]); a net-cap
    /// rejection is permanent and carries no hint. The value is a pure
    /// function of configured state (the per-net search budget, or a
    /// fixed fallback, as the worst-case time for one in-flight slot
    /// to free), so identical rejections always hint identically —
    /// tests pin exact bytes.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Rejection::Busy { retry_after_ms, .. } => Some(*retry_after_ms),
            Rejection::TooLarge { .. } => None,
        }
    }
}

/// Gatekeeper handing out in-flight permits and per-request budgets.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    max_nets: usize,
    budget_ms: Option<u64>,
    inflight: AtomicUsize,
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent solves of at
    /// most `max_nets` nets each, each under a `budget_ms` search
    /// deadline (`None` = unlimited).
    pub fn new(max_inflight: usize, max_nets: usize, budget_ms: Option<u64>) -> Admission {
        Admission {
            max_inflight,
            max_nets,
            budget_ms,
            inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to admit a request for `nets` nets. The returned permit
    /// releases its in-flight slot on drop.
    ///
    /// # Errors
    ///
    /// [`Rejection::TooLarge`] when the net cap is exceeded (checked
    /// first, so it is deterministic), else [`Rejection::Busy`] when
    /// all in-flight slots are taken.
    pub fn try_admit(&self, nets: usize) -> Result<Permit<'_>, Rejection> {
        if nets > self.max_nets {
            return Err(Rejection::TooLarge {
                nets,
                limit: self.max_nets,
            });
        }
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.max_inflight {
                return Err(Rejection::Busy {
                    limit: self.max_inflight,
                    retry_after_ms: self.budget_ms.unwrap_or(DEFAULT_SOLVE_MS).max(1),
                });
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(Permit { gate: self }),
                Err(actual) => current = actual,
            }
        }
    }

    /// The search budget every admitted solve runs under. Server-global
    /// by design: the budget is part of the solve's observable
    /// behaviour (a blown deadline degrades nets), so letting clients
    /// pick per-request budgets would poison the result cache.
    pub fn budget(&self) -> SearchBudget {
        match self.budget_ms {
            Some(ms) => SearchBudget::unlimited().with_deadline(Duration::from_millis(ms)),
            None => SearchBudget::unlimited(),
        }
    }

    /// Requests currently being solved.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }
}

/// An admitted request's slot; dropping it frees the slot.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Wall-clock timer for the `service.request.ns` span.
#[derive(Debug)]
pub struct RequestTimer {
    start: Instant,
}

impl RequestTimer {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> RequestTimer {
        RequestTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`RequestTimer::start`], saturated to
    /// `u64`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_cap_rejects_deterministically() {
        let gate = Admission::new(4, 10, None);
        let err = gate.try_admit(11).unwrap_err();
        assert_eq!(err, Rejection::TooLarge { nets: 11, limit: 10 });
        assert!(err.reason().contains("11 nets"));
        assert_eq!(gate.inflight(), 0, "no slot consumed on rejection");
    }

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let gate = Admission::new(2, 100, None);
        let a = gate.try_admit(1).unwrap();
        let b = gate.try_admit(1).unwrap();
        let err = gate.try_admit(1).unwrap_err();
        assert_eq!(
            err,
            Rejection::Busy {
                limit: 2,
                retry_after_ms: 25
            }
        );
        assert!(err.reason().contains("limit 2"));
        drop(a);
        let c = gate.try_admit(1).unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn budget_reflects_configuration() {
        assert!(Admission::new(1, 1, None).budget().is_unlimited());
        assert!(!Admission::new(1, 1, Some(5)).budget().is_unlimited());
    }

    #[test]
    fn retry_hint_tracks_the_budget_and_is_absent_for_permanent_rejects() {
        let gate = Admission::new(1, 10, Some(300));
        let _held = gate.try_admit(1).unwrap();
        let busy = gate.try_admit(1).unwrap_err();
        assert_eq!(busy.retry_after_ms(), Some(300));
        let too_large = gate.try_admit(11).unwrap_err();
        assert_eq!(too_large.retry_after_ms(), None, "no point retrying");
        // Unbudgeted services fall back to a fixed, still-deterministic
        // hint.
        let gate = Admission::new(1, 10, None);
        let _held = gate.try_admit(1).unwrap();
        assert_eq!(gate.try_admit(1).unwrap_err().retry_after_ms(), Some(25));
    }

    #[test]
    fn timer_is_monotonic() {
        let t = RequestTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
