//! `crplan` — command-line interconnect planner.
//!
//! ```text
//! usage: crplan <scenario.cr> [--render] [--quiet]
//! ```
//!
//! Reads a scenario file (see [`clockroute_cli::scenario`] for the
//! format), plans every net with the optimal fast-path / RBP / GALS
//! searches, and prints a per-net report plus aggregate statistics.
//! `--render` additionally draws each routed net as ASCII art.

use clockroute_cli::scenario;
use clockroute_elmore::GateLibrary;
use clockroute_grid::{render_grid, GridGraph, RenderOptions};
use clockroute_plan::Planner;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let render = args.iter().any(|a| a == "--render");
    let quiet = args.iter().any(|a| a == "--quiet");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: crplan <scenario.cr> [--render] [--quiet]");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let (gw, gh) = scenario.grid;
    let graph = GridGraph::from_floorplan(&scenario.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    if !quiet {
        let (px, py) = scenario.floorplan.pitch(gw, gh);
        println!(
            "# die {:.1}×{:.1} mm, grid {gw}×{gh} (pitch {:.3}×{:.3} mm), {} blocks, {} nets",
            scenario.floorplan.die_width().mm(),
            scenario.floorplan.die_height().mm(),
            px.mm(),
            py.mm(),
            scenario.floorplan.blocks().len(),
            scenario.nets.len()
        );
    }

    let planner = Planner::new(graph.clone(), scenario.tech, lib.clone())
        .reserve_routes(scenario.reserve);
    let plan = planner.plan(&scenario.nets);

    for result in plan.results() {
        println!("{result}");
        if render {
            if let Some(path) = &result.path {
                let mut labels = vec![(path.source(), 'S'), (path.sink(), 'T')];
                for (pt, gate) in path.gates() {
                    if pt != path.source() && pt != path.sink() {
                        let c = match lib.gate(gate).kind() {
                            clockroute_elmore::GateKind::Buffer => 'B',
                            clockroute_elmore::GateKind::McFifo => 'F',
                            _ => 'R',
                        };
                        labels.push((pt, c));
                    }
                }
                println!(
                    "{}",
                    render_grid(
                        &graph,
                        Some(&path.grid_path()),
                        &labels,
                        &RenderOptions::default()
                    )
                );
            }
        }
    }

    let failed = plan.failed().count();
    if !quiet {
        println!(
            "# routed {}/{} nets, {:.1} mm total wire, {} synchronizers, max depth {} cycles",
            plan.routed().count(),
            plan.results().len(),
            plan.total_wirelength().mm(),
            plan.total_synchronizers(),
            plan.max_cycles().unwrap_or(0)
        );
    }
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
