// Fixture: CR007 — unbounded reads of untrusted streams.
// BAD (line 4): BufRead::lines buffers until the peer stops.
fn pump(reader: impl std::io::BufRead, sink: &mut Vec<String>) {
    for line in reader.lines() {
        if let Ok(line) = line {
            sink.push(line);
        }
    }
}

// BAD (line 13): read_line grows the buffer at the peer's pleasure.
fn one(reader: &mut impl std::io::BufRead, buf: &mut String) {
    let _ = reader.read_line(buf);
}

// BAD (line 19): UFCS form of read_to_string is the same hole.
fn slurp(buf: &mut String) {
    let mut src = std::io::empty();
    let _ = std::io::Read::read_to_string(&mut src, buf);
}

// GOOD: a local function merely *named* lines is out of scope.
fn lines() -> usize {
    0
}
fn count() -> usize {
    lines()
}

// GOOD: a suppression with a proof is honoured.
fn trusted(buf: &mut String) {
    let mut src = std::io::empty();
    // crlint-allow: CR007 operator-piped stdin in a one-shot mode, not a serving socket
    let _ = std::io::Read::read_to_string(&mut src, buf);
}

#[cfg(test)]
mod tests {
    // GOOD: tests may slurp; they own both ends of the stream.
    #[test]
    fn slurps() {
        let mut buf = String::new();
        let _ = std::io::Read::read_to_string(&mut std::io::empty(), &mut buf);
        assert!(buf.is_empty());
    }
}
