//! Congestion-aware global routing: the multicommodity-flow batch mode.
//!
//! The sequential [`Planner`] routes nets in declaration order and
//! resolves contention by detouring later nets around earlier commits,
//! so batch quality is an artifact of net order. This crate adds a
//! *batch* mode in the shape of Albrecht–Kahng–Măndoiu–Zelikovsky's
//! multicommodity-flow formulation (PAPERS.md):
//!
//! 1. **Fractional phase** — synchronous price rounds. Every round,
//!    each net independently asks the priced geometry oracle
//!    ([`price`]) for its cheapest path under the *current* per-edge
//!    congestion prices (physical length × multiplier); after all nets
//!    have answered, prices on overloaded edges are raised
//!    multiplicatively. Jacobi-style synchronous updates make the
//!    round outcome independent of net declaration order.
//! 2. **Integralization** — deterministic seeded randomized rounding:
//!    each net draws one geometry from its per-round candidate
//!    distribution with a PRNG seeded from `seed ⊕ hash(name)` (so
//!    draws are order-free), then overflow offenders are ripped up
//!    worst-first (ties by net name) and rerouted under saturation
//!    prices until feasible, stuck, or budget-exhausted.
//! 3. **Legalization** — each net's chosen geometry becomes a
//!    one-net corridor (every off-path edge blocked) handed to the
//!    exact per-net searches via an inner [`Planner`], so timing,
//!    buffering and synchronizer insertion stay bit-exact with the
//!    sequential engine's cost model. A net that cannot be legalized
//!    in its corridor retries on the full grid, reusing the
//!    degradation ladder end to end.
//!
//! **Determinism contract.** Same scenario + seed + iteration count ⇒
//! byte-identical plan, regardless of `--jobs`: all state is keyed by
//! `BTreeMap` over canonical edge keys or net names, the oracle breaks
//! ties by node id, and rounding draws are per-net functions of the
//! seed and name. When no edge anywhere has a finite capacity
//! ([`EdgeCapacities::is_unconstrained`]), `flow` delegates wholesale
//! to [`Planner::plan`], so every pre-existing scenario is
//! byte-identical by construction.

mod price;
pub mod report;

pub use report::{FlowMode, FlowSummary, RoundStats};

use clockroute_core::canon::{mix64, CanonHasher};
use clockroute_core::telemetry::Value;
use clockroute_core::{BudgetMeter, SearchStage, TelemetryHandle};
use clockroute_geom::Point;
use clockroute_grid::{edge_key, EdgeCapacities, EdgeKey, GridGraph};
use clockroute_plan::{NetResult, NetSpec, Plan, Planner, SharedTelemetry};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs of the flow pipeline. The defaults are deliberately small:
/// the fractional phase converges in a handful of rounds on the
/// scenario sizes the planner targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowConfig {
    /// Fractional price rounds (clamped to ≥ 1).
    pub iters: u32,
    /// Rounding seed; same seed ⇒ same plan.
    pub seed: u64,
    /// Multiplicative price-update step: an overloaded edge's price is
    /// scaled by `1 + epsilon · usage/cap` each round.
    pub epsilon: f64,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            iters: 12,
            seed: 0,
            epsilon: 0.25,
        }
    }
}

/// A plan produced by flow mode, with its congestion summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowPlan {
    plan: Plan,
    summary: FlowSummary,
}

impl FlowPlan {
    /// The routed plan (same shape as [`Planner::plan`]'s output).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The congestion/overflow summary.
    pub fn summary(&self) -> &FlowSummary {
        &self.summary
    }

    /// Decomposes into plan and summary.
    pub fn into_parts(self) -> (Plan, FlowSummary) {
        (self.plan, self.summary)
    }
}

/// Extension trait surfacing flow mode on [`Planner`] without a
/// dependency cycle (the planner crate stays oblivious to flow).
pub trait PlannerFlowExt {
    /// Routes `nets` as a congestion-aware batch against `caps`.
    ///
    /// With no finite capacity anywhere this is exactly
    /// [`Planner::plan`] (byte-identical, same reservation and job
    /// settings). Otherwise the three-phase flow pipeline runs; inner
    /// legalization planners run sequentially with reservation off —
    /// the capacity model replaces route reservation as the contention
    /// mechanism.
    fn flow(self, nets: &[NetSpec], caps: &EdgeCapacities, config: FlowConfig) -> FlowPlan;
}

impl PlannerFlowExt for Planner {
    fn flow(self, nets: &[NetSpec], caps: &EdgeCapacities, config: FlowConfig) -> FlowPlan {
        if caps.is_unconstrained() {
            let telemetry = self.telemetry_sink().cloned();
            let plan = self.plan(nets);
            th(&telemetry).counter("flow.delegated", 1);
            return FlowPlan {
                plan,
                summary: FlowSummary::delegated(config.seed),
            };
        }
        flow_priced(self, nets, caps, config)
    }
}

/// Price multiplier ceiling — keeps repeated multiplicative updates
/// finite without ever changing which edge is cheapest in practice.
const PRICE_CEILING: f64 = 1e9;
/// Additive weight penalty per unit of saturation during rip-up: any
/// unsaturated detour is cheaper than one more unit on a full edge.
const SATURATION_PENALTY: f64 = 1e6;

/// A borrowed telemetry handle over an optional shared sink.
fn th(t: &Option<SharedTelemetry>) -> TelemetryHandle<'_> {
    match t {
        Some(s) => s.handle(),
        None => TelemetryHandle::none(),
    }
}

/// Canonical geometry key: the path's points as a comparable value.
type PathKey = Vec<Point>;

fn net_draw_state(seed: u64, name: &str) -> u64 {
    let mut h = CanonHasher::new();
    h.write_str(name);
    mix64(seed ^ h.finish())
}

/// Adds (`delta = 1`) or removes (`delta = -1`) a path's usage on the
/// capacitated edges.
fn apply_usage(
    usage: &mut BTreeMap<EdgeKey, u32>,
    cap_edges: &BTreeMap<EdgeKey, u32>,
    points: &[Point],
    delta: i64,
) {
    for w in points.windows(2) {
        let k = edge_key(w[0], w[1]);
        if cap_edges.contains_key(&k) {
            let e = usage.entry(k).or_insert(0);
            *e = (i64::from(*e) + delta).max(0) as u32;
        }
    }
}

/// `(total, max)` overflow of `usage` against `cap_edges`.
fn overflow_of(usage: &BTreeMap<EdgeKey, u32>, cap_edges: &BTreeMap<EdgeKey, u32>) -> (u64, u32) {
    let mut total = 0u64;
    let mut max = 0u32;
    for (k, &u) in usage {
        if let Some(&c) = cap_edges.get(k) {
            if u > c {
                total += u64::from(u - c);
                max = max.max(u - c);
            }
        }
    }
    (total, max)
}

/// The grid restricted to one net's chosen geometry: every edge not on
/// the path is blocked, so the exact searches legalize timing along
/// exactly this corridor.
fn corridor_graph(base: &GridGraph, points: &[Point]) -> GridGraph {
    let mut g = base.clone();
    let on_path: BTreeSet<EdgeKey> = points.windows(2).map(|w| edge_key(w[0], w[1])).collect();
    for y in 0..g.height() {
        for x in 0..g.width() {
            let p = Point::new(x, y);
            for q in [Point::new(x + 1, y), Point::new(x, y + 1)] {
                if q.x >= g.width() || q.y >= g.height() {
                    continue;
                }
                if !on_path.contains(&edge_key(p, q)) {
                    g.blockage_mut().block_edge(p, q);
                }
            }
        }
    }
    g
}

/// One inner per-net legalization planner: sequential, reservation
/// off, same budget and ladder as the outer planner, telemetry shared.
fn inner_planner(
    outer: &Planner,
    graph: GridGraph,
    telemetry: &Option<SharedTelemetry>,
) -> Planner {
    let mut p = Planner::new(graph, *outer.technology(), outer.library().clone())
        .reserve_routes(false)
        .budget(outer.search_budget())
        .degrade(outer.degrades())
        .jobs(1);
    if let Some(t) = telemetry {
        p = p.telemetry(t.clone());
    }
    p
}

fn flow_priced(
    planner: Planner,
    nets: &[NetSpec],
    caps: &EdgeCapacities,
    config: FlowConfig,
) -> FlowPlan {
    let graph = planner.graph().clone();
    let telemetry = planner.telemetry_sink().cloned();
    let iters = config.iters.max(1);
    let cap_edges: BTreeMap<EdgeKey, u32> = caps
        .capacitated_edges(&graph)
        .into_iter()
        .map(|(a, b, c)| (edge_key(a, b), c))
        .collect();
    let mut meter = BudgetMeter::new(planner.search_budget(), SearchStage::Flow);
    let mut budget_exhausted = false;

    // Phase 1 — fractional price rounds (synchronous: every net in a
    // round sees the same prices, so the round's outcome is a pure
    // function of the previous round, not of net declaration order).
    let mut prices: BTreeMap<EdgeKey, f64> = BTreeMap::new();
    let mut candidates: BTreeMap<&str, BTreeMap<PathKey, u32>> = BTreeMap::new();
    let mut round_stats = Vec::new();
    let mut price_updates = 0u64;
    let mut rounds = 0u32;
    'rounds: for round in 0..iters {
        let weight = |a: Point, b: Point| -> f64 {
            prices.get(&edge_key(a, b)).copied().unwrap_or(1.0)
        };
        let mut round_paths: Vec<(&str, Vec<Point>)> = Vec::new();
        for net in nets {
            match price::priced_path(&graph, net.source, net.sink, &weight, &mut meter) {
                Ok(Some(points)) => round_paths.push((&net.name, points)),
                Ok(None) => {} // unreachable terminals: full planner decides later
                Err(_) => {
                    budget_exhausted = true;
                    break 'rounds;
                }
            }
        }
        rounds += 1;
        let mut usage: BTreeMap<EdgeKey, u32> = BTreeMap::new();
        for (_, points) in &round_paths {
            apply_usage(&mut usage, &cap_edges, points, 1);
        }
        let (total, max) = overflow_of(&usage, &cap_edges);
        round_stats.push(RoundStats {
            round,
            total_overflow: total,
            max_overflow: max,
        });
        th(&telemetry).event(
            "flow.round",
            &[
                ("round", Value::U64(u64::from(round))),
                ("total_overflow", Value::U64(total)),
                ("max_overflow", Value::U64(u64::from(max))),
            ],
        );
        for (name, points) in round_paths {
            *candidates
                .entry(name)
                .or_default()
                .entry(points)
                .or_insert(0) += 1;
        }
        if total == 0 {
            // No overloaded edge ⇒ no price changes ⇒ every later round
            // repeats this one: a fixed point.
            break;
        }
        for (k, &u) in &usage {
            if let Some(&c) = cap_edges.get(k) {
                if u > c {
                    let p = prices.entry(*k).or_insert(1.0);
                    *p = (*p * (1.0 + config.epsilon * f64::from(u) / f64::from(c.max(1))))
                        .min(PRICE_CEILING);
                    price_updates += 1;
                }
            }
        }
    }
    let best_fractional_overflow = round_stats.iter().map(|r| r.total_overflow).min();

    // Phase 2a — seeded randomized rounding: each net draws one
    // geometry from its candidate distribution, weighted by how many
    // rounds chose it. The draw is a pure function of (seed, name), so
    // declaration order cannot change anyone's route.
    let mut chosen: BTreeMap<&str, Vec<Point>> = BTreeMap::new();
    for net in nets {
        let Some(dist) = candidates.get(net.name.as_str()) else {
            continue;
        };
        let total: u64 = dist.values().map(|&c| u64::from(c)).sum();
        if total == 0 {
            continue;
        }
        let draw = net_draw_state(config.seed, &net.name) % total;
        let mut acc = 0u64;
        for (points, &count) in dist {
            acc += u64::from(count);
            if draw < acc {
                chosen.insert(&net.name, points.clone());
                break;
            }
        }
    }

    // Phase 2b — priced rip-up-and-reroute of overflow offenders,
    // worst overflow contribution first, ties by net name ascending.
    let mut usage: BTreeMap<EdgeKey, u32> = BTreeMap::new();
    for points in chosen.values() {
        apply_usage(&mut usage, &cap_edges, points, 1);
    }
    let mut tried: BTreeMap<&str, BTreeSet<PathKey>> = BTreeMap::new();
    let mut ripups = 0u64;
    let ripup_cap = 16 * (nets.len() as u64 + 4);
    while !budget_exhausted && ripups < ripup_cap {
        let (total, _) = overflow_of(&usage, &cap_edges);
        if total == 0 {
            break;
        }
        // Worst offender: the net whose path crosses the most overflow.
        // Iterating the name-keyed map with a strict `>` keeps the
        // lexicographically smallest name on ties.
        let mut offender: Option<(&str, u64)> = None;
        for (&name, points) in &chosen {
            let mut contribution = 0u64;
            for w in points.windows(2) {
                let k = edge_key(w[0], w[1]);
                if let (Some(&c), Some(&u)) = (cap_edges.get(&k), usage.get(&k)) {
                    if u > c {
                        contribution += u64::from(u - c);
                    }
                }
            }
            if contribution > 0 && offender.is_none_or(|(_, best)| contribution > best) {
                offender = Some((name, contribution));
            }
        }
        let Some((name, _)) = offender else { break };
        let Some(old_points) = chosen.get(name).cloned() else {
            break;
        };
        apply_usage(&mut usage, &cap_edges, &old_points, -1);
        let weight = |a: Point, b: Point| -> f64 {
            let k = edge_key(a, b);
            let base = prices.get(&k).copied().unwrap_or(1.0);
            match (cap_edges.get(&k), usage.get(&k)) {
                (Some(&c), Some(&u)) if u >= c => {
                    base + SATURATION_PENALTY * f64::from(u - c + 1)
                }
                (Some(&0), None) => base + SATURATION_PENALTY,
                _ => base,
            }
        };
        let Some(net) = nets.iter().find(|n| n.name == name) else {
            break;
        };
        match price::priced_path(&graph, net.source, net.sink, &weight, &mut meter) {
            Ok(Some(new_points)) => {
                let seen = tried.entry(name).or_default();
                seen.insert(old_points.clone());
                if seen.contains(&new_points) {
                    // Cycling between known geometries: restore and stop.
                    apply_usage(&mut usage, &cap_edges, &old_points, 1);
                    chosen.insert(name, old_points);
                    break;
                }
                apply_usage(&mut usage, &cap_edges, &new_points, 1);
                chosen.insert(name, new_points);
                ripups += 1;
            }
            Ok(None) => {
                apply_usage(&mut usage, &cap_edges, &old_points, 1);
                break;
            }
            Err(_) => {
                apply_usage(&mut usage, &cap_edges, &old_points, 1);
                budget_exhausted = true;
            }
        }
    }

    // Phase 3 — per-net corridor legalization through the exact
    // searches. Sequential in declaration order; each net's result is
    // independent of every other net (reservation off), so emission
    // order is the only thing declaration order still controls.
    let mut results: Vec<NetResult> = Vec::with_capacity(nets.len());
    for net in nets {
        let single = std::slice::from_ref(net);
        let corridor_result = chosen.get(net.name.as_str()).and_then(|points| {
            let inner = inner_planner(&planner, corridor_graph(&graph, points), &telemetry);
            let plan = inner.plan(single);
            plan.results().first().cloned().filter(|r| r.is_routed())
        });
        let result = match corridor_result {
            Some(r) => r,
            None => {
                // No geometry, or the corridor was too tight for the
                // timing searches: fall back to the full grid and the
                // complete degradation ladder.
                let inner = inner_planner(&planner, graph.clone(), &telemetry);
                let plan = inner.plan(single);
                match plan.results().first().cloned() {
                    Some(r) => r,
                    None => NetResult {
                        name: net.name.clone(),
                        path: None,
                        latency: None,
                        cycles: None,
                        wirelength: None,
                        error: None,
                        degradation: Default::default(),
                    },
                }
            }
        };
        results.push(result);
    }

    // Final congestion is measured on the routes that actually shipped.
    let mut final_usage: BTreeMap<EdgeKey, u32> = BTreeMap::new();
    for r in &results {
        if let Some(path) = &r.path {
            apply_usage(&mut final_usage, &cap_edges, path.points(), 1);
        }
    }
    let (total_overflow, max_overflow) = overflow_of(&final_usage, &cap_edges);
    let overloaded: BTreeMap<EdgeKey, (u32, u32)> = final_usage
        .iter()
        .filter_map(|(k, &u)| {
            cap_edges
                .get(k)
                .filter(|&&c| u > c)
                .map(|&c| (*k, (u, c)))
        })
        .collect();

    let t = th(&telemetry);
    t.counter("flow.rounds", u64::from(rounds));
    t.counter("flow.price.updates", price_updates);
    t.counter("flow.ripups", ripups);
    if budget_exhausted {
        t.counter("flow.budget.exhausted", 1);
    }
    t.gauge_set("flow.overflow.total", total_overflow);
    t.gauge_set("flow.overflow.max", u64::from(max_overflow));

    FlowPlan {
        plan: Plan::from_results(results),
        summary: FlowSummary {
            mode: FlowMode::Priced,
            rounds,
            price_updates,
            ripups,
            seed: config.seed,
            budget_exhausted,
            best_fractional_overflow,
            round_stats,
            total_overflow,
            max_overflow,
            overloaded,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_core::SearchBudget;
    use clockroute_elmore::{GateLibrary, Technology};
    use clockroute_geom::units::Length;
    use std::time::Duration;

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn planner(graph: GridGraph) -> Planner {
        Planner::new(graph, Technology::paper_070nm(), GateLibrary::paper_library())
    }

    fn contention_nets() -> Vec<NetSpec> {
        // Three identical-terminal nets: sequential stacking puts them
        // all on the same row; capacity 1 forces flow to spread them.
        (0..3)
            .map(|i| NetSpec::combinational(&format!("n{i}"), p(0, 2), p(6, 2)))
            .collect()
    }

    #[test]
    fn unconstrained_flow_equals_sequential_plan() {
        let g = GridGraph::open(8, 8, Length::from_um(125.0));
        let nets = vec![
            NetSpec::combinational("a", p(0, 0), p(7, 7)),
            NetSpec::combinational("b", p(0, 7), p(7, 0)),
        ];
        let sequential = planner(g.clone()).plan(&nets);
        let flow = planner(g).flow(&nets, &EdgeCapacities::new(), FlowConfig::default());
        assert_eq!(flow.plan(), &sequential);
        assert_eq!(flow.summary().mode, FlowMode::Delegated);
    }

    #[test]
    fn capacity_one_spreads_identical_nets() {
        let g = GridGraph::open(7, 5, Length::from_um(125.0));
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let nets = contention_nets();
        let flow = planner(g).flow(&nets, &caps, FlowConfig::default());
        assert_eq!(flow.summary().mode, FlowMode::Priced);
        assert_eq!(
            flow.summary().total_overflow,
            0,
            "flow left overflow: {:?}",
            flow.summary()
        );
        assert!(flow.plan().results().iter().all(|r| r.is_routed()));
        // Three nets over shared terminals cannot share any edge, so
        // their middle columns must use three distinct rows.
        let rows: BTreeSet<u32> = flow
            .plan()
            .results()
            .iter()
            .filter_map(|r| r.path.as_ref())
            .flat_map(|path| path.points().iter().filter(|q| q.x == 3).map(|q| q.y))
            .collect();
        assert_eq!(rows.len(), 3, "nets share a middle row: {rows:?}");
    }

    #[test]
    fn same_seed_reproduces_byte_identical_plans() {
        let g = GridGraph::open(7, 5, Length::from_um(125.0));
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let nets = contention_nets();
        let cfg = FlowConfig {
            seed: 42,
            ..FlowConfig::default()
        };
        let a = planner(g.clone()).flow(&nets, &caps, cfg);
        let b = planner(g).flow(&nets, &caps, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn net_permutation_does_not_change_any_route() {
        let g = GridGraph::open(7, 5, Length::from_um(125.0));
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let nets = contention_nets();
        let mut permuted = nets.clone();
        permuted.reverse();
        let a = planner(g.clone()).flow(&nets, &caps, FlowConfig::default());
        let b = planner(g).flow(&permuted, &caps, FlowConfig::default());
        let by_name = |fp: &FlowPlan| -> BTreeMap<String, String> {
            fp.plan()
                .results()
                .iter()
                .map(|r| (r.name.clone(), r.to_string()))
                .collect()
        };
        assert_eq!(by_name(&a), by_name(&b));
        assert_eq!(a.summary().total_overflow, b.summary().total_overflow);
    }

    #[test]
    fn zero_deadline_degrades_to_ladder_instead_of_hanging() {
        let g = GridGraph::open(7, 5, Length::from_um(125.0));
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let nets = contention_nets();
        let flow = planner(g)
            .budget(SearchBudget::unlimited().with_deadline(Duration::ZERO))
            .flow(&nets, &caps, FlowConfig::default());
        assert!(flow.summary().budget_exhausted);
        // Every net still ships a route via the unbudgeted fallback rung.
        assert!(flow.plan().results().iter().all(|r| r.is_routed()));
    }

    #[test]
    fn jobs_setting_cannot_change_the_flow_plan() {
        let g = GridGraph::open(7, 5, Length::from_um(125.0));
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let nets = contention_nets();
        let a = planner(g.clone()).jobs(1).flow(&nets, &caps, FlowConfig::default());
        let b = planner(g).jobs(8).flow(&nets, &caps, FlowConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn corridor_graph_blocks_everything_off_path() {
        let g = GridGraph::open(4, 3, Length::from_um(125.0));
        let path = [p(0, 0), p(1, 0), p(1, 1)];
        let c = corridor_graph(&g, &path);
        assert!(!c.blockage().is_edge_blocked(p(0, 0), p(1, 0)));
        assert!(!c.blockage().is_edge_blocked(p(1, 0), p(1, 1)));
        assert!(c.blockage().is_edge_blocked(p(1, 0), p(2, 0)));
        assert!(c.blockage().is_edge_blocked(p(0, 0), p(0, 1)));
    }

    #[test]
    fn rounding_draw_is_order_free_and_seed_sensitive() {
        assert_eq!(net_draw_state(7, "a"), net_draw_state(7, "a"));
        assert_ne!(net_draw_state(7, "a"), net_draw_state(8, "a"));
        assert_ne!(net_draw_state(7, "a"), net_draw_state(7, "b"));
    }
}
