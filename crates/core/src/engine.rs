//! Shared search-engine internals: candidate arena, priority queue and
//! inferiority pruning.
//!
//! All three algorithms (fast path, RBP, GALS) are label-correcting
//! searches over the grid graph whose candidates carry a downstream
//! capacitance `c` and a delay `d`. This module centralises the mechanics
//! they share so the algorithm files contain only the logic the paper
//! actually describes.

use clockroute_elmore::GateId;
use clockroute_grid::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

pub(crate) const NO_PARENT: u32 = u32::MAX;

/// One step of a partial route, stored in a persistent arena so candidate
/// extension is O(1) and path reconstruction is a parent walk.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Step {
    pub node: NodeId,
    pub gate: Option<GateId>,
    pub parent: u32,
}

/// Size of one arena step record, for arena-memory telemetry.
pub(crate) fn step_size_bytes() -> usize {
    std::mem::size_of::<Step>()
}

/// Append-only arena of [`Step`]s shared by all candidates of a search.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    steps: Vec<Step>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of steps allocated — the budget meter's arena-memory
    /// measure (each step is one fixed-size record).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn push(&mut self, node: NodeId, gate: Option<GateId>, parent: u32) -> u32 {
        // crlint-allow: CR002 arena growth is capped by the budget meter well below u32::MAX steps
        let id = u32::try_from(self.steps.len()).expect("arena overflow");
        self.steps.push(Step { node, gate, parent });
        id
    }

    /// Bounding box of every node an arena step was allocated for.
    ///
    /// All grid state a search reads is at or adjacent to such a node, so
    /// this box (dilated by one step) over-approximates the search's read
    /// set — see [`TouchedRegion`](crate::TouchedRegion).
    pub fn touched(&self, graph: &clockroute_grid::GridGraph) -> Option<crate::TouchedRegion> {
        let mut steps = self.steps.iter();
        let mut region = crate::TouchedRegion::of_point(graph.point(steps.next()?.node));
        for step in steps {
            region.include(graph.point(step.node));
        }
        Some(region)
    }

    /// Walks from `trail` (the source-side head) to the root (the sink),
    /// merging consecutive same-node steps (a gate-insertion step shares
    /// its node with the arrival step it decorates).
    ///
    /// Returns `(nodes, labels)` in source→sink order.
    pub fn reconstruct(&self, trail: u32) -> (Vec<NodeId>, Vec<Option<GateId>>) {
        let mut nodes = Vec::new();
        let mut labels: Vec<Option<GateId>> = Vec::new();
        let mut cur = trail;
        while cur != NO_PARENT {
            let step = self.steps[cur as usize];
            if nodes.last() == Some(&step.node) {
                // Same node: keep the strongest label seen (gate steps are
                // pushed after arrival steps, so the gate is already
                // recorded; arrival steps carry `None`).
                if labels.last() == Some(&None) {
                    // crlint-allow: CR002 the `last()` probe above just returned Some
                    *labels.last_mut().expect("non-empty") = step.gate;
                }
            } else {
                nodes.push(step.node);
                labels.push(step.gate);
            }
            cur = step.parent;
        }
        (nodes, labels)
    }
}

/// A partial solution. Field meaning follows the paper's candidate tuples
/// `(c, d, m, v)` (fast path / RBP) and `(c, d, m, v, z, l)` (GALS); the
/// labelling `m` is materialised lazily through the arena `trail`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand {
    /// Downstream input capacitance seen at `node`, in fF.
    pub cap: f64,
    /// Delay from `node` to the most recent downstream synchronizer (or
    /// the sink), in ps. For fast path this is the full delay to `t`.
    pub delay: f64,
    pub node: NodeId,
    /// Arena index of the head step.
    pub trail: u32,
    /// `true` if the candidate's labelling already places a gate at
    /// `node` (then no further insertion may occur here).
    pub gate_here: bool,
    /// GALS: `true` once the MCFIFO has been inserted (paper's `z`).
    pub fifo_inserted: bool,
    /// GALS: accumulated latency `l` from the last synchronizer to `t`.
    pub latency: f64,
    /// Delay of the stage adjacent to the sink (fixed once the first
    /// synchronizer is inserted); used by the slack tie-break.
    pub sink_stage: f64,
    /// Latch extension: cumulative time borrowed so far, in ps.
    pub borrowed: f64,
    /// Fast path: candidate represents a completed route (source gate
    /// delay already added); popping it terminates the search.
    pub finalized: bool,
}

impl Cand {
    pub fn start(cap: f64, delay: f64, trail: u32, node: NodeId) -> Cand {
        Cand {
            cap,
            delay,
            node,
            trail,
            gate_here: true,
            fifo_inserted: false,
            latency: 0.0,
            sink_stage: f64::NAN,
            borrowed: 0.0,
            finalized: false,
        }
    }
}

/// Priority-queue wrapper: min-heap on `delay` with a deterministic
/// sequence-number tie-break (Rust's `BinaryHeap` is a max-heap, hence the
/// reversed ordering).
pub(crate) struct DelayQueue {
    heap: BinaryHeap<QueueEntry>,
    seq: u64,
}

struct QueueEntry {
    key: f64,
    seq: u64,
    cand: Cand,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the heap invariant even for non-finite keys
        // (NaN sorts above +inf instead of comparing equal to everything,
        // which would silently corrupt heap order).
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// The canonical CR001 pattern: `PartialOrd` delegates to the total
// `Ord` above, so NaN can never corrupt the heap invariant. crlint
// accepts exactly this shape (see crates/lint, rule CR001).
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl DelayQueue {
    pub fn new() -> DelayQueue {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, key: f64, cand: Cand) {
        debug_assert!(key.is_finite(), "non-finite queue key {key}");
        self.seq += 1;
        self.heap.push(QueueEntry {
            key,
            seq: self.seq,
            cand,
        });
    }

    pub fn pop(&mut self) -> Option<Cand> {
        self.heap.pop().map(|e| e.cand)
    }

    /// Minimum key currently in the queue.
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A Pareto entry used for inferiority pruning.
///
/// `capable` is `true` when the candidate can still receive a gate at its
/// node (`m(v) = 0`); a gate-bearing candidate must never prune a
/// still-capable one at equal `(c, d)`, or a legal insertion could be
/// lost. `extra` is a third dominated dimension used by the latch
/// extension (borrowed time); it is 0 elsewhere.
#[derive(Debug, Clone, Copy)]
struct Entry {
    cap: f64,
    delay: f64,
    extra: f64,
    capable: bool,
}

impl Entry {
    /// `self` dominates `other` (other may be pruned).
    fn dominates(&self, other: &Entry) -> bool {
        self.cap <= other.cap
            && self.delay <= other.delay
            && self.extra <= other.extra
            && (self.capable || !other.capable)
    }

    /// Strict domination: at least one coordinate strictly better, so the
    /// dominated candidate cannot be the entry itself.
    fn dominates_strictly(&self, other: &Entry) -> bool {
        self.dominates(other)
            && (self.cap < other.cap
                || self.delay < other.delay
                || self.extra < other.extra
                || (self.capable && !other.capable))
    }
}

/// Per-key Pareto fronts with O(1) lazy clearing between wave fronts.
///
/// Keys are `node.index()` for single-domain searches and
/// `node.index() * 2 + z` for GALS (separate fronts per `z`, per the
/// paper's rule that candidates with different `z` are never compared).
pub(crate) struct PruneTable {
    lists: Vec<Vec<Entry>>,
    stamps: Vec<u64>,
    epoch: u64,
}

impl PruneTable {
    pub fn new(keys: usize) -> PruneTable {
        PruneTable {
            lists: vec![Vec::new(); keys],
            stamps: vec![0; keys],
            epoch: 1,
        }
    }

    /// Starts a new wave front: all fronts are (lazily) cleared.
    pub fn advance_wave(&mut self) {
        self.epoch += 1;
    }

    fn list(&mut self, key: usize) -> &mut Vec<Entry> {
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.lists[key].clear();
        }
        &mut self.lists[key]
    }

    /// Attempts to admit a candidate with the given coordinates.
    ///
    /// Returns `false` (and leaves the front unchanged) if an existing
    /// entry dominates it; otherwise inserts it, evicts entries it
    /// dominates, and returns `true`. `evicted` is incremented by the
    /// number of entries removed.
    pub fn try_admit(
        &mut self,
        key: usize,
        cap: f64,
        delay: f64,
        extra: f64,
        capable: bool,
        evicted: &mut u64,
    ) -> bool {
        let entry = Entry {
            cap,
            delay,
            extra,
            capable,
        };
        let list = self.list(key);
        if list.iter().any(|e| e.dominates(&entry)) {
            return false;
        }
        let before = list.len();
        list.retain(|e| !entry.dominates(e));
        *evicted += (before - list.len()) as u64;
        list.push(entry);
        true
    }

    /// `true` if the candidate has become stale: some entry now strictly
    /// dominates it (it can no longer be on the Pareto front).
    pub fn is_stale(&mut self, key: usize, cap: f64, delay: f64, extra: f64, capable: bool) -> bool {
        let entry = Entry {
            cap,
            delay,
            extra,
            capable,
        };
        self.list(key).iter().any(|e| e.dominates_strictly(&entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(g: &clockroute_grid::GridGraph, x: u32, y: u32) -> NodeId {
        g.node(clockroute_geom::Point::new(x, y))
    }

    #[test]
    fn arena_reconstruct_merges_gate_steps() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(4, 1, Length::from_um(1.0));
        let mut arena = Arena::new();
        let t = arena.push(nid(&g, 3, 0), None, NO_PARENT);
        let v2 = arena.push(nid(&g, 2, 0), None, t);
        let lib = clockroute_elmore::GateLibrary::paper_library();
        let gate = lib.register();
        let v2g = arena.push(nid(&g, 2, 0), Some(gate), v2);
        let v1 = arena.push(nid(&g, 1, 0), None, v2g);
        let s = arena.push(nid(&g, 0, 0), None, v1);
        let (nodes, labels) = arena.reconstruct(s);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], nid(&g, 0, 0));
        assert_eq!(nodes[3], nid(&g, 3, 0));
        assert_eq!(labels, vec![None, None, Some(gate), None]);
        assert_eq!(arena.len(), 5);
    }

    #[test]
    fn delay_queue_orders_by_key_then_fifo() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
        let n = nid(&g, 0, 0);
        let mut q = DelayQueue::new();
        let mk = |d: f64| {
            let mut c = Cand::start(1.0, d, NO_PARENT, n);
            c.gate_here = false;
            c
        };
        q.push(5.0, mk(5.0));
        q.push(1.0, mk(1.0));
        q.push(3.0, mk(3.0));
        q.push(1.0, mk(100.0)); // same key, later seq
        assert_eq!(q.peek_key(), Some(1.0));
        assert_eq!(q.pop().unwrap().delay, 1.0);
        assert_eq!(q.pop().unwrap().delay, 100.0);
        assert_eq!(q.pop().unwrap().delay, 3.0);
        assert_eq!(q.pop().unwrap().delay, 5.0);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn arena_touched_covers_all_steps() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(8, 8, Length::from_um(1.0));
        let mut arena = Arena::new();
        assert!(arena.touched(&g).is_none());
        let a = arena.push(nid(&g, 2, 3), None, NO_PARENT);
        arena.push(nid(&g, 6, 1), None, a);
        let r = arena.touched(&g).unwrap();
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (2, 1, 6, 3));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite queue key")]
    fn nan_key_is_rejected_in_debug_builds() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
        let mut q = DelayQueue::new();
        q.push(f64::NAN, Cand::start(1.0, 0.0, NO_PARENT, nid(&g, 0, 0)));
    }

    #[test]
    fn queue_total_order_survives_non_finite_keys() {
        // Release builds skip the finite-key assert; the heap must still
        // drain in a sane order rather than corrupting silently.
        let mut heap = BinaryHeap::new();
        let g = {
            use clockroute_geom::units::Length;
            clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0))
        };
        let cand = Cand::start(1.0, 0.0, NO_PARENT, nid(&g, 0, 0));
        for (seq, key) in [(1, f64::NAN), (2, 1.0), (3, f64::INFINITY), (4, 0.5)] {
            heap.push(QueueEntry { key, seq, cand });
        }
        let keys: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|e| e.key)).collect();
        assert_eq!(keys[0], 0.5);
        assert_eq!(keys[1], 1.0);
        assert_eq!(keys[2], f64::INFINITY);
        assert!(keys[3].is_nan());
    }

    #[test]
    fn prune_basic_dominance() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // Dominated: both coords worse.
        assert!(!t.try_admit(0, 11.0, 11.0, 0.0, true, &mut ev));
        // Equal: dominated (non-strict) — duplicate suppressed.
        assert!(!t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // Incomparable: admitted.
        assert!(t.try_admit(0, 5.0, 20.0, 0.0, true, &mut ev));
        // Dominates both: admitted, evicts both.
        assert!(t.try_admit(0, 5.0, 5.0, 0.0, true, &mut ev));
        assert_eq!(ev, 2);
        assert!(!t.try_admit(0, 6.0, 6.0, 0.0, true, &mut ev));
    }

    #[test]
    fn gate_bearing_cannot_prune_capable_at_equal_coords() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        // Gate-bearing entry first.
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, false, &mut ev));
        // Capable candidate at the same coordinates must be admitted…
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // …and it evicts the gate-bearing one.
        assert_eq!(ev, 1);
        // A gate-bearing one at equal coords is now dominated.
        assert!(!t.try_admit(0, 10.0, 10.0, 0.0, false, &mut ev));
    }

    #[test]
    fn third_dimension_respected() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        assert!(t.try_admit(0, 10.0, 10.0, 5.0, true, &mut ev));
        // Worse cap/delay but less borrowing: incomparable, admitted.
        assert!(t.try_admit(0, 12.0, 12.0, 0.0, true, &mut ev));
        // Dominated in all three: rejected.
        assert!(!t.try_admit(0, 12.0, 12.0, 6.0, true, &mut ev));
    }

    #[test]
    fn wave_advance_clears_fronts() {
        let mut t = PruneTable::new(2);
        let mut ev = 0;
        assert!(t.try_admit(0, 1.0, 1.0, 0.0, true, &mut ev));
        assert!(!t.try_admit(0, 2.0, 2.0, 0.0, true, &mut ev));
        t.advance_wave();
        // Previous wave's entries no longer prune.
        assert!(t.try_admit(0, 2.0, 2.0, 0.0, true, &mut ev));
    }

    #[test]
    fn staleness_is_strict() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev);
        // The entry itself is not stale.
        assert!(!t.is_stale(0, 10.0, 10.0, 0.0, true));
        t.try_admit(0, 9.0, 9.0, 0.0, true, &mut ev);
        assert!(t.is_stale(0, 10.0, 10.0, 0.0, true));
    }
}
