//! Sharded result cache with single-flight miss coalescing.
//!
//! The single `Mutex<ResultCache>` the service started with serializes
//! every lookup, insert, and warm scan — fine for one connection, a
//! wall for many. [`ShardedCache`] partitions the canonical-fingerprint
//! keyspace across N independent LRU shards (`shard = key mod N`), each
//! behind its own lock, so requests for different keys proceed without
//! contending. The paper's analogue is partitioning cores across TAM
//! wires so concurrent tests share the ceiling, not a single bus.
//!
//! **Single-flight.** Concurrent misses on the *same* fingerprint are
//! coalesced: the first thread to claim the key becomes the leader
//! (`Lookup::Lead`) and solves; followers block on the shard's condvar
//! and are answered from the leader's inserted entry
//! (`Lookup::Coalesced`) — one solve, many answers, one snapshot
//! record. The leader's [`SolveSlot`] releases followers on `Drop`,
//! which the service performs only *after* the fsynced append — so a
//! coalesced response is never sent before the bytes it echoes are
//! durable ("answered ⟹ durable" holds on every path).
//!
//! **Lock order.** Each shard has two locks: `cache` and `pending`.
//! The only place both are held is the miss path, which acquires
//! `pending` first and then re-checks `cache` under it (closing the
//! race where a leader completes between a thread's miss and its
//! claim). Nothing acquires `pending` while holding `cache`, and no
//! path touches two shards' locks at once except the warm scan, which
//! takes them strictly one at a time — so the order is acyclic and
//! deadlock-free. Since PR 9 this is machine-checked, not just
//! documented: both locks are [`OrderedMutex`]es
//! (`LockRank::Pending < LockRank::Cache`, all shards sharing the two
//! ranks), so an inverted acquire *or* any two shards held at once
//! panics in debug/lockcheck builds — see
//! [`clockroute_core::lockcheck`] and DESIGN.md §16.
//!
//! **Capacity.** The total budget is split evenly (`cap/N`, remainder
//! to the low shards), but every shard keeps room for at least one
//! entry whenever caching is enabled — otherwise a shard with budget 0
//! could never retain the solve its own leader just produced and
//! single-flight would degrade to solve-per-request for those keys.
//! The split can therefore overshoot `cap` by at most `N - 1`.
//!
//! Recency ticks come from one clock shared by all shards (see
//! [`ResultCache::with_clock`]), so [`export`](ShardedCache::export)
//! merges per-shard rows into the same global LRU order a 1-shard
//! cache would produce — snapshot bytes are shard-count-independent.

use crate::cache::{ResultCache, Solved, WarmPrior};
use clockroute_cli::scenario::Scenario;
use clockroute_core::lockcheck::{LockRank, OrderedCondvar, OrderedMutex};
use std::collections::BTreeSet;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

#[derive(Debug)]
struct Shard {
    /// Poison is ridden through inside `OrderedMutex`: a panicking
    /// solver must not wedge every later request for the same shard.
    cache: OrderedMutex<ResultCache>,
    /// Keys with a solve in flight. Guarded separately from `cache` so
    /// followers waiting on the condvar never hold up hits on other
    /// keys in the same shard.
    pending: OrderedMutex<BTreeSet<u64>>,
    /// Signalled by a leader's [`SolveSlot`] drop.
    done: OrderedCondvar,
}

/// What a request learns about its key (see module docs).
#[derive(Debug)]
pub enum Lookup<'a> {
    /// The entry was cached; recency bumped, solve skipped.
    Hit(Solved),
    /// The entry was produced by a concurrent leader this thread waited
    /// for — same bytes as a hit, different accounting.
    Coalesced(Solved),
    /// This thread claimed the key and must solve. Dropping the slot
    /// releases any coalesced waiters, so hold it until the entry is
    /// inserted *and* durable.
    Lead(SolveSlot<'a>),
}

/// The leader's claim on one in-flight key.
#[derive(Debug)]
pub struct SolveSlot<'a> {
    shard: &'a Shard,
    key: u64,
}

impl SolveSlot<'_> {
    /// Stores the leader's solve, returning
    /// `(evictions caused, shard len after)`.
    pub fn insert(&self, base: u64, scenario: Scenario, solved: Solved) -> (u64, usize) {
        let mut cache = self.shard.cache.lock();
        let before = cache.evictions();
        cache.insert(self.key, base, scenario, solved);
        (cache.evictions() - before, cache.len())
    }
}

impl Drop for SolveSlot<'_> {
    fn drop(&mut self) {
        self.shard.pending.lock().remove(&self.key);
        self.shard.done.notify_all();
    }
}

/// N per-shard LRUs over one partitioned keyspace. All methods take
/// `&self`; shard locks are internal.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Shard>,
}

impl ShardedCache {
    /// `shard_count` shards (clamped to at least 1) splitting a total
    /// capacity of roughly `cap` entries.
    pub fn new(shard_count: usize, cap: usize) -> ShardedCache {
        let n = shard_count.max(1);
        let clock = Arc::new(AtomicU64::new(0));
        let shards = (0..n)
            .map(|i| {
                let share = cap / n + usize::from(i < cap % n);
                let share = if cap == 0 { 0 } else { share.max(1) };
                Shard {
                    cache: OrderedMutex::new(
                        LockRank::Cache,
                        "shard.cache",
                        ResultCache::with_clock(share, clock.clone()),
                    ),
                    pending: OrderedMutex::new(LockRank::Pending, "shard.pending", BTreeSet::new()),
                    done: OrderedCondvar::new(),
                }
            })
            .collect();
        ShardedCache { shards }
    }

    fn shard(&self, key: u64) -> &Shard {
        // Vec len >= 1 by construction; usize truncation of the mod is
        // exact because the mod is < shard count.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Number of shards (for stats and tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Resolves `key`: a cached answer, a coalesced answer after
    /// waiting out a concurrent leader, or leadership of the solve.
    pub fn lookup_or_claim(&self, key: u64, scenario: &Scenario) -> Lookup<'_> {
        let shard = self.shard(key);
        let mut waited = false;
        let answer = |s: Solved, waited: bool| {
            if waited {
                Lookup::Coalesced(s)
            } else {
                Lookup::Hit(s)
            }
        };
        loop {
            if let Some(s) = shard.cache.lock().lookup(key, scenario) {
                return answer(s, waited);
            }
            let mut pending = shard.pending.lock();
            if !pending.contains(&key) {
                // Re-check under `pending`: a leader inserts into the
                // cache before clearing its claim, so an entry missed
                // above may exist by now; without this a thread racing
                // the leader's completion would redundantly re-solve.
                // (Pending → Cache is the one nested acquire; the rank
                // order exists so exactly this is legal and the
                // reverse is not.)
                if let Some(s) = shard.cache.lock().lookup(key, scenario) {
                    return answer(s, waited);
                }
                pending.insert(key);
                return Lookup::Lead(SolveSlot { shard, key });
            }
            waited = true;
            while pending.contains(&key) {
                pending = shard.done.wait(pending);
            }
            drop(pending);
            // Loop: usually the leader's entry is now a (coalesced)
            // hit; if it was evicted already — tiny caps — or the
            // leader failed, this thread claims leadership itself.
        }
    }

    /// Cross-shard warm scan: the globally most recent entry sharing
    /// `scenario`'s base, if its blockage delta fits `max_dirty`.
    /// Phase one reads every shard (one lock at a time) for its best
    /// candidate; phase two re-locks only the winner's shard. The entry
    /// may have been evicted between phases — then there is simply no
    /// warm start, which is always a safe answer.
    pub fn find_warm(&self, base: u64, scenario: &Scenario, max_dirty: usize) -> Option<WarmPrior> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some((key, tick)) = shard.cache.lock().best_warm_candidate(base, scenario) {
                if best.is_none_or(|(_, _, best_tick)| tick > best_tick) {
                    best = Some((i, key, tick));
                }
            }
        }
        let (i, key, _) = best?;
        self.shards[i].cache.lock().warm_prior_for(key, scenario, max_dirty)
    }

    /// Direct insert, used by snapshot recovery (single-threaded, no
    /// coalescing needed). Routes to the owning shard, so replay lands
    /// entries exactly where live traffic would have put them.
    pub fn insert(&self, key: u64, base: u64, scenario: Scenario, solved: Solved) {
        self.shard(key).cache.lock().insert(key, base, scenario, solved);
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().len()).sum()
    }

    /// `true` if nothing is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.lock().evictions()).sum()
    }

    /// Per-shard entry counts, in shard order (for tests and stats).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.cache.lock().len()).collect()
    }

    /// Every entry across all shards in global LRU order (least
    /// recently used first) — the snapshot writer's view. Owned rows:
    /// shard locks are taken one at a time, so borrows cannot be
    /// carried out.
    pub fn export(&self) -> Vec<(u64, u64, Scenario, Solved)> {
        let mut rows: Vec<(u64, u64, u64, Scenario, Solved)> = Vec::new();
        for shard in &self.shards {
            let cache = shard.cache.lock();
            rows.extend(
                cache
                    .export_ticked()
                    .into_iter()
                    .map(|(t, k, b, s, v)| (t, k, b, s.clone(), v.clone())),
            );
        }
        rows.sort_by_key(|&(tick, ..)| tick);
        rows.into_iter()
            .map(|(_, k, b, s, v)| (k, b, s, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{base_key, scenario_key};
    use clockroute_cli::scenario::parse;
    use std::sync::mpsc;

    fn scenario(block_x: u32) -> Scenario {
        parse(&format!(
            "die 10mm 10mm\ngrid 20 20\nblock hard {block_x} 2 {} 4\nnet comb name=a src=0,0 dst=19,19\n",
            block_x + 2
        ))
        .unwrap()
    }

    fn solved(tag: &str) -> Solved {
        Solved {
            report: tag.to_owned(),
            ..Solved::default()
        }
    }

    /// Resolve to a solved answer, solving with `make` when leading.
    fn get_or_solve(cache: &ShardedCache, s: &Scenario, tag: &str) -> (Solved, &'static str) {
        match cache.lookup_or_claim(scenario_key(s), s) {
            Lookup::Hit(v) => (v, "hit"),
            Lookup::Coalesced(v) => (v, "coalesced"),
            Lookup::Lead(slot) => {
                let v = solved(tag);
                slot.insert(base_key(s), s.clone(), v.clone());
                (v, "lead")
            }
        }
    }

    #[test]
    fn keys_route_to_their_shard_and_totals_aggregate() {
        let cache = ShardedCache::new(4, 16);
        assert_eq!(cache.shard_count(), 4);
        let scenarios: Vec<Scenario> = (0..6).map(|i| scenario(2 + i)).collect();
        for (i, s) in scenarios.iter().enumerate() {
            let (_, path) = get_or_solve(&cache, s, &format!("v{i}"));
            assert_eq!(path, "lead");
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), 6);
        for s in &scenarios {
            let key = scenario_key(s);
            let lens = cache.shard_lens();
            // The entry is findable, and in exactly the mod shard.
            let (_, path) = get_or_solve(&cache, s, "never");
            assert_eq!(path, "hit");
            assert!(lens[(key % 4) as usize] > 0);
        }
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_split_keeps_every_shard_usable() {
        // cap 1 over 8 shards: the naive split gives 7 shards zero
        // capacity; the floor of 1 keeps single-flight meaningful.
        let cache = ShardedCache::new(8, 1);
        for i in 0..8 {
            let s = scenario(2 + i);
            let (_, path) = get_or_solve(&cache, &s, "x");
            assert_eq!(path, "lead");
            let (_, again) = get_or_solve(&cache, &s, "never");
            assert_eq!(again, "hit", "every shard retains its last solve");
        }
        assert!(cache.len() <= 8, "overshoot bounded by shard count");
    }

    #[test]
    fn zero_capacity_disables_all_shards() {
        let cache = ShardedCache::new(4, 0);
        let s = scenario(2);
        let (_, path) = get_or_solve(&cache, &s, "x");
        assert_eq!(path, "lead");
        assert!(cache.is_empty());
        // No entry was kept, so the next request leads again.
        let (_, again) = get_or_solve(&cache, &s, "y");
        assert_eq!(again, "lead");
    }

    #[test]
    fn export_merges_shards_in_global_lru_order() {
        for shards in [1usize, 2, 8] {
            let cache = ShardedCache::new(shards, 64);
            let scenarios: Vec<Scenario> = (0..5).map(|i| scenario(2 + i)).collect();
            for (i, s) in scenarios.iter().enumerate() {
                get_or_solve(&cache, s, &format!("v{i}"));
            }
            // Touch v1 so it becomes globally most recent.
            get_or_solve(&cache, &scenarios[1], "never");
            let order: Vec<String> = cache
                .export()
                .into_iter()
                .map(|(_, _, _, v)| v.report)
                .collect();
            assert_eq!(
                order,
                ["v0", "v2", "v3", "v4", "v1"],
                "{shards}-shard export must match the 1-shard LRU order"
            );
        }
    }

    #[test]
    fn single_flight_coalesces_a_concurrent_miss() {
        let cache = Arc::new(ShardedCache::new(2, 8));
        let s = scenario(3);
        let key = scenario_key(&s);

        // Deterministic interleaving: claim leadership on this thread,
        // then start a follower that must block until the slot drops.
        let slot = match cache.lookup_or_claim(key, &s) {
            Lookup::Lead(slot) => slot,
            other => panic!("fresh key must lead, got {other:?}"),
        };
        let (tx, rx) = mpsc::channel();
        let follower = {
            let cache = cache.clone();
            let s = s.clone();
            std::thread::spawn(move || {
                tx.send(()).unwrap(); // follower is about to block
                let outcome = cache.lookup_or_claim(key, &s);
                match outcome {
                    Lookup::Coalesced(v) => v.report,
                    other => panic!("follower must coalesce, got {other:?}"),
                }
            })
        };
        rx.recv().unwrap();
        // Give the follower time to reach the condvar; even if it has
        // not, it observes `pending` and waits — the assertion below
        // does not depend on this sleep.
        std::thread::sleep(std::time::Duration::from_millis(20));
        slot.insert(base_key(&s), s.clone(), solved("the-answer"));
        drop(slot); // release the follower only now
        assert_eq!(follower.join().unwrap(), "the-answer");

        // And the entry is a plain hit afterwards.
        let (v, path) = get_or_solve(&cache, &s, "never");
        assert_eq!((v.report.as_str(), path), ("the-answer", "hit"));
    }

    #[test]
    fn follower_reclaims_leadership_when_the_leader_fails() {
        let cache = ShardedCache::new(1, 8);
        let s = scenario(3);
        let key = scenario_key(&s);
        let slot = match cache.lookup_or_claim(key, &s) {
            Lookup::Lead(slot) => slot,
            other => panic!("fresh key must lead, got {other:?}"),
        };
        drop(slot); // leader gave up without inserting (solve error)
        let second = cache.lookup_or_claim(key, &s);
        assert!(
            matches!(second, Lookup::Lead(_)),
            "next request must lead again, got {second:?}"
        );
    }

    #[test]
    fn cross_shard_warm_scan_finds_the_most_recent_base_match() {
        let cache = ShardedCache::new(4, 16);
        let (s1, s2, s3) = (scenario(2), scenario(5), scenario(8));
        get_or_solve(&cache, &s1, "one");
        get_or_solve(&cache, &s2, "two");
        // s3 shares the base; the most recent of s1/s2 must win
        // regardless of which shards they landed in.
        let warm = cache.find_warm(base_key(&s3), &s3, 1 << 20).unwrap();
        assert!(!warm.dirty.is_empty());
        assert!(cache.find_warm(base_key(&s3), &s3, 1).is_none(), "delta cap");
    }
}
