//! CR009 fixture: computed ranks, escaping guards, named guard types.
use clockroute_core::lockcheck::{LockRank, OrderedMutex};

fn rank_for_cache() -> LockRank {
    LockRank::Cache
}

pub fn bad_computed_rank() -> OrderedMutex<u32> {
    OrderedMutex::new(rank_for_cache(), "fixture.computed", 0)
}

pub fn bad_escaping_guard(m: &OrderedMutex<u32>) -> Guard {
    return m.lock();
}

pub struct BadHolder<'a> {
    held: std::sync::MutexGuard<'a, u32>,
}

pub fn good_literal_rank() -> OrderedMutex<u32> {
    OrderedMutex::new(LockRank::Cache, "fixture.literal", 0)
}

pub fn good_lock_and_release(m: &OrderedMutex<u32>) -> u32 {
    let g = m.lock();
    *g
}
