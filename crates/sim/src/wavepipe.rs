//! The paper §I's *third* solution: **wave pipelining** — several
//! wavefronts coexist on the wire with no intermediate registers.
//!
//! The key constraint is that successive waveforms must not interfere:
//! with per-datum propagation delays anywhere in `[d_min, d_max]`
//! (process/temperature/delay variation — “effects that are even more
//! pronounced for long routes”), a wave launched `Δt` after its
//! predecessor stays separated at the receiver iff
//!
//! ```text
//! Δt ≥ (d_max − d_min) + t_margin
//! ```
//!
//! Latency is `⌈d_max / T⌉` receiver cycles; the sustainable launch rate
//! is bounded by both the constraint above and the clock itself. The
//! [`WavePipe`] analysis computes these figures, and
//! [`WavePipe::simulate`] launches a token stream with randomized
//! per-token delays to *verify* non-interference (or demonstrate
//! collisions when the rate violates the constraint).

use clockroute_geom::units::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Wave-pipelining feasibility analysis for one route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavePipe {
    d_min: Time,
    d_max: Time,
    margin: Time,
    period: Time,
}

/// Result of a wave-pipelined stream simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WavePipeReport {
    /// Tokens that arrived separated from their neighbours.
    pub delivered: usize,
    /// Pairs of consecutive waves that interfered (arrival order swap or
    /// spacing below the margin). Zero for a safe launch interval.
    pub collisions: usize,
    /// First arrival time.
    pub first_arrival: Time,
    /// Tokens per nanosecond actually sustained.
    pub throughput_tokens_per_ns: f64,
}

impl WavePipe {
    /// Creates an analysis from a route's nominal (maximum) delay, a
    /// relative delay spread (e.g. `0.1` for ±10 % → `d_min = 0.9·d_max`)
    /// and a safety margin.
    ///
    /// # Panics
    ///
    /// Panics if `d_max`/`period` are not positive and finite, or the
    /// spread is outside `[0, 1)`.
    pub fn new(d_max: Time, spread: f64, margin: Time, period: Time) -> WavePipe {
        assert!(
            d_max.ps() > 0.0 && d_max.is_finite(),
            "delay must be positive and finite"
        );
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        assert!(
            period.ps() > 0.0 && period.is_finite(),
            "period must be positive and finite"
        );
        assert!(margin.ps() >= 0.0, "margin must be non-negative");
        WavePipe {
            d_min: d_max * (1.0 - spread),
            d_max,
            margin,
            period,
        }
    }

    /// Slowest propagation.
    pub fn d_max(&self) -> Time {
        self.d_max
    }

    /// Fastest propagation.
    pub fn d_min(&self) -> Time {
        self.d_min
    }

    /// The minimum safe interval between consecutive launches:
    /// `(d_max − d_min) + margin`.
    pub fn min_launch_interval(&self) -> Time {
        self.d_max - self.d_min + self.margin
    }

    /// Latency in receiver cycles: `⌈d_max / T⌉`.
    pub fn latency_cycles(&self) -> u32 {
        (self.d_max.ps() / self.period.ps()).ceil().max(1.0) as u32
    }

    /// Analytic latency `latency_cycles · T`.
    pub fn analytic_latency(&self) -> Time {
        self.period * f64::from(self.latency_cycles())
    }

    /// Maximum sustainable throughput in tokens per nanosecond: launches
    /// are possible every `max(min_launch_interval, T)` (the clock also
    /// bounds the rate — one launch per sender cycle).
    pub fn analytic_throughput_tokens_per_ns(&self) -> f64 {
        1.0e3 / self.min_launch_interval().ps().max(self.period.ps())
    }

    /// Number of waves simultaneously in flight at the analytic rate.
    pub fn waves_in_flight(&self) -> u32 {
        (self.d_min.ps() / self.min_launch_interval().ps().max(self.period.ps())).floor() as u32
            + 1
    }

    /// Launches `tokens` waves every `interval`, each with an independent
    /// uniformly random delay in `[d_min, d_max]` (seeded), and counts
    /// interference events at the receiver.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero or `interval` is not positive.
    pub fn simulate(&self, tokens: usize, interval: Time, seed: u64) -> WavePipeReport {
        assert!(tokens > 0, "need at least one token");
        assert!(interval.ps() > 0.0, "interval must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<f64> = (0..tokens)
            .map(|i| {
                let launch = interval.ps() * i as f64;
                let delay = rng.gen_range(self.d_min.ps()..=self.d_max.ps());
                launch + delay
            })
            .collect();
        let first_arrival = Time::from_ps(arrivals[0]);
        let mut collisions = 0usize;
        for w in arrivals.windows(2) {
            // Interference: the later launch arrives before (or within
            // the margin of) its predecessor.
            if w[1] - w[0] < self.margin.ps() {
                collisions += 1;
            }
        }
        arrivals.sort_by(f64::total_cmp);
        let span_ns = (arrivals[tokens - 1] - arrivals[0]).max(1e-9) * 1.0e-3;
        WavePipeReport {
            delivered: tokens - collisions,
            collisions,
            first_arrival,
            throughput_tokens_per_ns: if tokens > 1 {
                (tokens - 1) as f64 / span_ns
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe() -> WavePipe {
        // 1370 ps route, ±10 % spread, 20 ps margin, 300 ps clock.
        WavePipe::new(
            Time::from_ps(1370.0),
            0.1,
            Time::from_ps(20.0),
            Time::from_ps(300.0),
        )
    }

    #[test]
    fn analysis_figures() {
        let w = pipe();
        assert!((w.d_min().ps() - 1233.0).abs() < 1e-9);
        assert!((w.min_launch_interval().ps() - 157.0).abs() < 1e-9);
        assert_eq!(w.latency_cycles(), 5);
        assert_eq!(w.analytic_latency(), Time::from_ps(1500.0));
        // Rate bounded by the 300 ps clock, not the 157 ps constraint.
        assert!((w.analytic_throughput_tokens_per_ns() - 1.0e3 / 300.0).abs() < 1e-9);
        assert!(w.waves_in_flight() >= 4);
    }

    #[test]
    fn safe_interval_never_collides() {
        let w = pipe();
        let interval = Time::from_ps(w.min_launch_interval().ps() + 1.0);
        for seed in 0..5 {
            let r = w.simulate(500, interval, seed);
            assert_eq!(r.collisions, 0, "seed {seed}");
            assert_eq!(r.delivered, 500);
        }
    }

    #[test]
    fn aggressive_interval_collides() {
        let w = pipe();
        // Launch faster than the spread allows: must interfere sometimes.
        let interval = Time::from_ps(60.0);
        let mut total = 0;
        for seed in 0..5 {
            total += w.simulate(500, interval, seed).collisions;
        }
        assert!(total > 0, "expected interference at 60 ps spacing");
    }

    #[test]
    fn zero_spread_allows_margin_limited_rate() {
        let w = WavePipe::new(
            Time::from_ps(1000.0),
            0.0,
            Time::from_ps(50.0),
            Time::from_ps(300.0),
        );
        assert_eq!(w.min_launch_interval(), Time::from_ps(50.0));
        let r = w.simulate(100, Time::from_ps(50.0), 1);
        assert_eq!(r.collisions, 0);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn spread_validated() {
        let _ = WavePipe::new(Time::from_ps(100.0), 1.0, Time::ZERO, Time::from_ps(10.0));
    }
}
