//! Blockage maps: which grid nodes and edges are unusable.
//!
//! Hassoun & Alpert (§II) model the routing area as a grid graph where
//!
//! * edges overlapping **wiring blockages** (e.g. datapath regions that can
//!   be routed over in other layers but not used here) are *deleted*, and
//! * nodes overlapping **physical obstacles** (IP, memories, macro blocks)
//!   are labelled *blocked* via `p(v) = 0`: a route may pass through such a
//!   node but no buffer or synchronization element may be inserted there.
//!
//! The paper additionally notes (§III) that the algorithm “can be easily
//! modified to allow *register blockages* that prevent inserting registers
//! at undesirable grid points” — e.g. clock-distribution congestion. We
//! support that with a third, independent layer.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Orientation of a grid edge leaving its lower-left endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDir {
    /// Edge from `(x, y)` to `(x+1, y)`.
    East,
    /// Edge from `(x, y)` to `(x, y+1)`.
    North,
}

/// Per-node and per-edge blockage state for a `width × height` routing grid.
///
/// Three independent layers:
///
/// * **node blockage** — `p(v) = 0` in the paper: no gate (buffer, register,
///   relay station, MCFIFO) may be inserted at the node, though wires may
///   still pass through it;
/// * **edge blockage** — the grid edge is removed entirely (wiring
///   blockage);
/// * **register blockage** — registers/synchronizers specifically may not
///   be inserted, buffers still may (paper §III extension).
///
/// ```
/// use clockroute_geom::{BlockageMap, Point, Rect};
/// let mut map = BlockageMap::new(10, 10);
/// map.block_nodes(&Rect::new(Point::new(2, 2), Point::new(4, 4)));
/// assert!(map.is_node_blocked(Point::new(3, 3)));
/// assert!(!map.is_node_blocked(Point::new(5, 5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockageMap {
    width: u32,
    height: u32,
    node_blocked: Vec<bool>,
    register_blocked: Vec<bool>,
    /// Blocked east-going edges, indexed by their west endpoint.
    east_blocked: Vec<bool>,
    /// Blocked north-going edges, indexed by their south endpoint.
    north_blocked: Vec<bool>,
}

impl BlockageMap {
    /// Creates an all-clear blockage map for a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: u32, height: u32) -> BlockageMap {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        let n = (width as usize) * (height as usize);
        BlockageMap {
            width,
            height,
            node_blocked: vec![false; n],
            register_blocked: vec![false; n],
            east_blocked: vec![false; n],
            north_blocked: vec![false; n],
        }
    }

    /// Grid width in nodes.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in nodes.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of grid nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_blocked.len()
    }

    #[inline]
    fn idx(&self, p: Point) -> usize {
        debug_assert!(p.x < self.width && p.y < self.height, "{p} out of grid");
        (p.y as usize) * (self.width as usize) + (p.x as usize)
    }

    /// `true` if no gate may be inserted at `p` (`p(v) = 0`).
    #[inline]
    pub fn is_node_blocked(&self, p: Point) -> bool {
        self.node_blocked[self.idx(p)]
    }

    /// `true` if a register/synchronizer may not be inserted at `p`.
    ///
    /// This is implied by a full node blockage and may additionally be set
    /// on otherwise-free nodes.
    #[inline]
    pub fn is_register_blocked(&self, p: Point) -> bool {
        let i = self.idx(p);
        self.node_blocked[i] || self.register_blocked[i]
    }

    /// `true` if the grid edge between adjacent points `a` and `b` has been
    /// removed by a wiring blockage.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `a` and `b` are not grid-adjacent.
    pub fn is_edge_blocked(&self, a: Point, b: Point) -> bool {
        debug_assert!(a.is_adjacent(b), "{a} and {b} are not adjacent");
        let (lo, dir) = if a.x != b.x {
            (if a.x < b.x { a } else { b }, EdgeDir::East)
        } else {
            (if a.y < b.y { a } else { b }, EdgeDir::North)
        };
        match dir {
            EdgeDir::East => self.east_blocked[self.idx(lo)],
            EdgeDir::North => self.north_blocked[self.idx(lo)],
        }
    }

    /// Marks a single node as placement-blocked.
    pub fn block_node(&mut self, p: Point) {
        let i = self.idx(p);
        self.node_blocked[i] = true;
    }

    /// Marks every node covered by `rect` as placement-blocked.
    pub fn block_nodes(&mut self, rect: &Rect) {
        for p in rect.points() {
            if p.x < self.width && p.y < self.height {
                self.block_node(p);
            }
        }
    }

    /// Marks a single node as register-blocked (buffers still allowed).
    pub fn block_register(&mut self, p: Point) {
        let i = self.idx(p);
        self.register_blocked[i] = true;
    }

    /// Marks every node covered by `rect` as register-blocked.
    pub fn block_registers(&mut self, rect: &Rect) {
        for p in rect.points() {
            if p.x < self.width && p.y < self.height {
                self.block_register(p);
            }
        }
    }

    /// Removes the grid edge between adjacent points `a` and `b`.
    pub fn block_edge(&mut self, a: Point, b: Point) {
        assert!(a.is_adjacent(b), "{a} and {b} are not adjacent");
        let (lo, dir) = if a.x != b.x {
            (if a.x < b.x { a } else { b }, EdgeDir::East)
        } else {
            (if a.y < b.y { a } else { b }, EdgeDir::North)
        };
        let i = self.idx(lo);
        match dir {
            EdgeDir::East => self.east_blocked[i] = true,
            EdgeDir::North => self.north_blocked[i] = true,
        }
    }

    /// Removes every grid edge with *both* endpoints inside `rect`
    /// (a solid wiring blockage over the region).
    pub fn block_edges(&mut self, rect: &Rect) {
        for p in rect.points() {
            if p.x >= self.width || p.y >= self.height {
                continue;
            }
            let east = Point::new(p.x + 1, p.y);
            if east.x < self.width && rect.contains(east) {
                self.block_edge(p, east);
            }
            let north = Point::new(p.x, p.y + 1);
            if north.y < self.height && rect.contains(north) {
                self.block_edge(p, north);
            }
        }
    }

    /// Number of placement-blocked nodes.
    pub fn blocked_node_count(&self) -> usize {
        self.node_blocked.iter().filter(|&&b| b).count()
    }

    /// Number of removed grid edges.
    pub fn blocked_edge_count(&self) -> usize {
        self.east_blocked.iter().filter(|&&b| b).count()
            + self.north_blocked.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimensions_rejected() {
        let _ = BlockageMap::new(0, 5);
    }

    #[test]
    fn fresh_map_is_clear() {
        let map = BlockageMap::new(4, 3);
        assert_eq!(map.node_count(), 12);
        for y in 0..3 {
            for x in 0..4 {
                assert!(!map.is_node_blocked(Point::new(x, y)));
                assert!(!map.is_register_blocked(Point::new(x, y)));
            }
        }
        assert_eq!(map.blocked_node_count(), 0);
        assert_eq!(map.blocked_edge_count(), 0);
    }

    #[test]
    fn node_blockage_rect() {
        let mut map = BlockageMap::new(10, 10);
        map.block_nodes(&Rect::new(Point::new(2, 2), Point::new(4, 5)));
        assert!(map.is_node_blocked(Point::new(2, 2)));
        assert!(map.is_node_blocked(Point::new(4, 5)));
        assert!(!map.is_node_blocked(Point::new(5, 5)));
        assert_eq!(map.blocked_node_count(), 3 * 4);
    }

    #[test]
    fn node_blockage_implies_register_blockage() {
        let mut map = BlockageMap::new(5, 5);
        map.block_node(Point::new(1, 1));
        assert!(map.is_register_blocked(Point::new(1, 1)));
    }

    #[test]
    fn register_blockage_is_independent() {
        let mut map = BlockageMap::new(5, 5);
        map.block_register(Point::new(2, 2));
        assert!(map.is_register_blocked(Point::new(2, 2)));
        assert!(!map.is_node_blocked(Point::new(2, 2)));
    }

    #[test]
    fn edge_blockage_symmetric_lookup() {
        let mut map = BlockageMap::new(5, 5);
        let a = Point::new(1, 1);
        let b = Point::new(2, 1);
        map.block_edge(a, b);
        assert!(map.is_edge_blocked(a, b));
        assert!(map.is_edge_blocked(b, a));
        // Vertical edge, created in reversed order.
        let c = Point::new(3, 3);
        let d = Point::new(3, 2);
        map.block_edge(c, d);
        assert!(map.is_edge_blocked(d, c));
        assert_eq!(map.blocked_edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn edge_blockage_rejects_non_adjacent() {
        let mut map = BlockageMap::new(5, 5);
        map.block_edge(Point::new(0, 0), Point::new(2, 0));
    }

    #[test]
    fn solid_region_edge_blockage() {
        let mut map = BlockageMap::new(6, 6);
        let rect = Rect::new(Point::new(1, 1), Point::new(3, 2));
        map.block_edges(&rect);
        // Interior edges are gone…
        assert!(map.is_edge_blocked(Point::new(1, 1), Point::new(2, 1)));
        assert!(map.is_edge_blocked(Point::new(2, 1), Point::new(2, 2)));
        // …but edges leaving the region survive.
        assert!(!map.is_edge_blocked(Point::new(1, 1), Point::new(0, 1)));
        assert!(!map.is_edge_blocked(Point::new(3, 2), Point::new(4, 2)));
        // 3×2 region: horizontal edges 2×2=4, vertical edges 3×1=3.
        assert_eq!(map.blocked_edge_count(), 7);
    }

    #[test]
    fn rects_partially_off_grid_are_clipped() {
        let mut map = BlockageMap::new(4, 4);
        map.block_nodes(&Rect::new(Point::new(2, 2), Point::new(9, 9)));
        assert_eq!(map.blocked_node_count(), 4);
        map.block_registers(&Rect::new(Point::new(3, 0), Point::new(9, 0)));
        assert!(map.is_register_blocked(Point::new(3, 0)));
    }
}
