//! The routing service: request dispatch, cache orchestration, and the
//! stdio / TCP front-ends.
//!
//! Threads are created in exactly two modules of this crate — here and
//! [`crate::pool`] (crlint CR004 enforces that); everything
//! request-scoped funnels through [`Service::handle_line`], which is
//! plain sequential code so the stdio and TCP front-ends — and the
//! tests — exercise exactly the same path. Concurrency composes in
//! layers (DESIGN.md §14): the bounded worker pool caps connection
//! threads, [`Admission`] caps concurrent solves, each admitted solve
//! runs the planner with [`ServiceConfig::jobs`] workers under the
//! server-global `SearchBudget`, and the sharded single-flight cache
//! ([`crate::shard::ShardedCache`]) makes duplicate concurrent
//! requests cost one solve.
//!
//! The response contract (asserted by the crate's property tests): for
//! a given scenario, the `route` response is byte-identical whether it
//! was computed cold, answered from the exact-match cache, or
//! warm-started from a near-miss entry — and identical to what a
//! freshly spawned `crplan --quiet` prints for the same file.

use crate::admission::{Admission, RequestTimer};
use crate::cache::{Solved, WarmPrior};
use crate::frame::{self, Frame, FrameReader};
use crate::keys::{base_key, scenario_key};
use crate::persist::{self, LogSlot, SnapshotLog};
use crate::pool;
use crate::protocol::{self, Op, Request};
use crate::shard::{Lookup, ShardedCache};
use clockroute_cli::{report, scenario};
use clockroute_core::{lockcheck, MetricsRecorder, Telemetry};
use clockroute_elmore::GateLibrary;
use clockroute_grid::GridGraph;
use clockroute_plan::{Planner, SharedTelemetry, TracedPlan};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Tunables for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per solve (plan output is identical for any
    /// value).
    pub jobs: usize,
    /// Result cache capacity in scenarios (0 disables caching).
    pub cache_cap: usize,
    /// Per-net search deadline in milliseconds (`None` = unlimited).
    /// Server-global so that the budget — which shapes degraded
    /// results — is part of the cache key's implicit context.
    pub budget_ms: Option<u64>,
    /// Largest accepted scenario, in nets.
    pub max_nets: usize,
    /// Concurrent solve limit; excess requests get `busy`.
    pub max_inflight: usize,
    /// Whether near-miss warm-starting is enabled.
    pub warm: bool,
    /// Largest blockage delta (in grid points) eligible for
    /// warm-starting; larger deltas solve cold.
    pub warm_max_dirty: usize,
    /// Largest accepted request line in bytes; longer lines get one
    /// `malformed` response and are discarded unbuffered.
    pub max_line: usize,
    /// Result-cache shard count (0 = auto: available parallelism).
    /// Responses are byte-identical for every value; sharding only
    /// changes which lock a key contends on.
    pub shards: usize,
    /// State directory for crash-consistent cache snapshots (`None`
    /// disables persistence).
    pub state: Option<PathBuf>,
    /// Shutdown-poll granularity: TCP reads time out this often so
    /// idle connections notice a drain within one interval.
    pub poll_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 1,
            cache_cap: 64,
            budget_ms: None,
            max_nets: 512,
            max_inflight: 4,
            warm: true,
            warm_max_dirty: 4096,
            max_line: 1 << 20,
            shards: 0,
            state: None,
            poll_ms: 50,
        }
    }
}

/// How a `route` request was answered — reported in the response's
/// `cache` field and mirrored by the `service.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePath {
    Hit,
    Coalesced,
    Warm,
    Cold,
}

impl CachePath {
    fn label(self) -> &'static str {
        match self {
            CachePath::Hit => "hit",
            CachePath::Coalesced => "coalesced",
            CachePath::Warm => "warm",
            CachePath::Cold => "cold",
        }
    }
}

/// A long-running routing service. Shared-state layout: the result
/// cache sharded across per-key locks with single-flight coalescing
/// (locks held only for lookups and inserts, never across a solve),
/// admission as lock-free atomics, telemetry in a shared recorder.
/// `&Service` is `Sync`, so one instance serves any number of
/// connection threads.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: ShardedCache,
    admission: Admission,
    metrics: Arc<MetricsRecorder>,
    shutdown: AtomicBool,
    snapshot_log: LogSlot,
}

/// Set by the process signal handlers (SIGINT/SIGTERM); every service
/// in the process treats it as a shutdown request. An ordinary atomic,
/// not `static mut`, so the handler is data-race free.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGINT or SIGTERM has been delivered (only ever after
/// [`install_signal_handlers`] ran).
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::Acquire)
}

/// Routes SIGINT and SIGTERM to a flag ([`signalled`]) instead of the
/// default kill disposition, turning both into graceful drains. Uses
/// raw `signal(2)` so the workspace stays dependency-free; the handler
/// body is a single atomic store, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is only given a handler that performs one atomic
    // store; installing it cannot fail in a way that leaves the process
    // worse off than the default disposition.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Non-unix fallback: no signals to install; `shutdown` requests are
/// the only drain trigger.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

impl Service {
    /// A fresh service. With [`ServiceConfig::state`] set, the cache is
    /// rebuilt from the snapshot log in that directory: every record is
    /// checksum- and structure-verified like a cache hit, corrupt or
    /// torn records are dropped (counted in `service.persist.dropped`),
    /// and the surviving set is compacted back to disk before serving
    /// starts.
    pub fn new(config: ServiceConfig) -> Service {
        let admission = Admission::new(config.max_inflight, config.max_nets, config.budget_ms);
        let metrics = Arc::new(MetricsRecorder::new());
        // Lock-order violations panic the offending thread; routing
        // them through the aggregate recorder first means a postmortem
        // metrics dump shows `lockcheck.violations` alongside whatever
        // else the request was doing. Global last-install-wins: one
        // process runs one service outside of tests.
        lockcheck::install_sink(Some(metrics.clone()));
        let shards = if config.shards == 0 {
            thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.shards
        };
        let cache = ShardedCache::new(shards, config.cache_cap);
        let snapshot_log = match &config.state {
            Some(dir) => Self::recover(dir, &cache, &metrics),
            None => None,
        };
        Service {
            cache,
            admission,
            metrics,
            shutdown: AtomicBool::new(false),
            snapshot_log: LogSlot::new(snapshot_log),
            config,
        }
    }

    /// How many cache shards this instance runs (resolved from
    /// [`ServiceConfig::shards`], where 0 means auto).
    pub fn shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    /// Replays the snapshot log into `cache`, compacts the survivors,
    /// and reopens the log for appending. Any persistence failure
    /// degrades to running without persistence (counted, never fatal):
    /// a service that promises to stay up must not die over its cache.
    fn recover(
        dir: &Path,
        cache: &ShardedCache,
        metrics: &MetricsRecorder,
    ) -> Option<SnapshotLog> {
        match persist::load(dir) {
            Ok((entries, stats)) => {
                metrics.counter("service.persist.recovered", stats.recovered as u64);
                metrics.counter("service.persist.dropped", stats.dropped as u64);
                for e in entries {
                    // Replay in LRU order: insert order reproduces both
                    // contents and eviction order, a smaller cap keeps
                    // the most recently used survivors, and the sharded
                    // insert routes each key to the shard live traffic
                    // would use. Duplicate-key records collapse
                    // last-wins: a later insert replaces the slot, so
                    // neither `len` nor the eviction count ever counts
                    // one fingerprint twice.
                    cache.insert(e.key, e.base, e.scenario, e.solved);
                }
                let payloads: Vec<Vec<u8>> = cache
                    .export()
                    .into_iter()
                    .map(|(key, base, scenario, solved)| {
                        persist::encode_entry(key, base, &scenario, &solved)
                    })
                    .collect();
                if persist::rewrite(dir, &payloads).is_err() {
                    metrics.counter("service.persist.errors", 1);
                }
                match SnapshotLog::open(dir) {
                    Ok(log) => Some(log),
                    Err(_) => {
                        metrics.counter("service.persist.errors", 1);
                        None
                    }
                }
            }
            Err(_) => {
                metrics.counter("service.persist.errors", 1);
                None
            }
        }
    }

    /// The aggregated telemetry recorder (service counters plus every
    /// solve's planner counters, replayed shard by shard).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.metrics
    }

    /// `true` once a `shutdown` request has been accepted or a handled
    /// signal (SIGINT/SIGTERM) arrived.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || signalled()
    }

    /// Compacts the in-memory cache to the state directory (temp file +
    /// atomic rename), replacing the append log. A no-op without a
    /// configured state directory. Called on graceful shutdown; safe to
    /// call at any time.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the rewrite; the previous snapshot
    /// file is untouched when that happens.
    pub fn snapshot(&self) -> io::Result<()> {
        let Some(dir) = &self.config.state else {
            return Ok(());
        };
        let payloads: Vec<Vec<u8>> = self
            .cache
            .export()
            .into_iter()
            .map(|(key, base, scenario, solved)| persist::encode_entry(key, base, &scenario, &solved))
            .collect();
        persist::rewrite(dir, &payloads)?;
        // The old handle points at the renamed-over inode; reopen so
        // later appends land in the new file.
        self.snapshot_log.replace(SnapshotLog::open(dir)?);
        Ok(())
    }

    /// Handles one request line and returns the one-line JSON response.
    pub fn handle_line(&self, line: &str) -> String {
        self.metrics.counter("service.requests", 1);
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.counter("service.malformed", 1);
                return protocol::malformed(&e);
            }
        };
        let Request { id, op } = request;
        let id = id.as_deref();
        match op {
            Op::Ping => protocol::pong(id),
            Op::Stats => {
                // Last-value, so eviction and compaction shrink are
                // visible; the high-water mark keeps its own gauge.
                let len = self.cache.len() as u64;
                self.metrics.gauge_set("service.cache.len", len);
                self.metrics.gauge_max("service.cache.len.max", len);
                protocol::stats(id, &self.metrics.counters(), &self.metrics.gauges())
            }
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                protocol::bye(id)
            }
            Op::Route { scenario } => self.route(id, &scenario),
        }
    }

    fn route(&self, id: Option<&str>, text: &str) -> String {
        let timer = RequestTimer::start();
        let parsed = match scenario::parse(text) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.counter("service.errors", 1);
                return protocol::error(id, &format!("scenario: {e}"));
            }
        };
        let permit = match self.admission.try_admit(parsed.nets.len()) {
            Ok(p) => p,
            Err(rejection) => {
                self.metrics.counter("service.rejects", 1);
                return protocol::busy(id, &rejection.reason(), rejection.retry_after_ms());
            }
        };

        let key = scenario_key(&parsed);
        let base = base_key(&parsed);
        let (solved, path) = match self.cache.lookup_or_claim(key, &parsed) {
            Lookup::Hit(solved) => (solved, CachePath::Hit),
            // A concurrent leader solved this key while we waited; its
            // entry was inserted and persisted before the slot dropped,
            // so echoing it keeps "answered ⟹ durable".
            Lookup::Coalesced(solved) => (solved, CachePath::Coalesced),
            Lookup::Lead(slot) => {
                let prior = if self.config.warm {
                    self.cache
                        .find_warm(base, &parsed, self.config.warm_max_dirty)
                } else {
                    None
                };
                let path = if prior.is_some() {
                    CachePath::Warm
                } else {
                    CachePath::Cold
                };
                let traced = match self.solve(&parsed, prior) {
                    Ok(traced) => traced,
                    Err(message) => {
                        // `slot` drops here, so a coalesced waiter
                        // retries as the new leader instead of echoing
                        // a failure.
                        self.metrics.counter("service.errors", 1);
                        return protocol::error(id, &message);
                    }
                };
                let solved = self.render(traced);
                // Encode before the insert: the append payload is a
                // pure function of the entry, and the shard lock must
                // stay short.
                let record = self
                    .persists()
                    .then(|| persist::encode_entry(key, base, &parsed, &solved));
                let (evicted, _) = slot.insert(base, parsed, solved.clone());
                if evicted > 0 {
                    self.metrics.counter("service.evictions", evicted);
                }
                let len = self.cache.len() as u64;
                self.metrics.gauge_set("service.cache.len", len);
                self.metrics.gauge_max("service.cache.len.max", len);
                if let Some(payload) = record {
                    self.append_record(&payload);
                    // The admission permit is still held here: inflight
                    // accounting must cover the fsync window, or a
                    // burst could stack unbounded threads inside
                    // persistence while the gate reads 0.
                    self.metrics.gauge_max(
                        "service.persist.inflight",
                        self.admission.inflight() as u64,
                    );
                }
                // Entry inserted and durable: dropping the slot now
                // releases every coalesced waiter.
                drop(slot);
                (solved, path)
            }
        };

        match path {
            CachePath::Hit => self.metrics.counter("service.hits", 1),
            CachePath::Coalesced => self.metrics.counter("service.coalesced", 1),
            CachePath::Warm => {
                self.metrics.counter("service.misses", 1);
                self.metrics.counter("service.warm_reuse", 1);
            }
            CachePath::Cold => self.metrics.counter("service.misses", 1),
        }
        self.metrics
            .span_ns("service.request.ns", timer.elapsed_ns());
        // Held from admission through solve, insert, and the fsynced
        // append — the whole durability window (DESIGN.md §14).
        drop(permit);
        protocol::route_ok(
            id,
            path.label(),
            solved.routed,
            solved.failed,
            solved.degraded,
            &solved.report,
        )
    }

    /// Runs the planner (cold or warm-started) under `catch_unwind`, so
    /// a panicking solve (e.g. an armed failpoint) costs one request,
    /// not the service.
    fn solve(
        &self,
        parsed: &scenario::Scenario,
        prior: Option<WarmPrior>,
    ) -> Result<TracedPlan, String> {
        let shard = Arc::new(MetricsRecorder::new());
        let shard_for_solve = shard.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (gw, gh) = parsed.grid;
            let graph = GridGraph::from_floorplan(&parsed.floorplan, gw, gh);
            let planner = Planner::new(graph, parsed.tech, GateLibrary::paper_library())
                .reserve_routes(parsed.reserve)
                .budget(self.admission.budget())
                .jobs(self.config.jobs)
                .telemetry(SharedTelemetry::new(shard_for_solve));
            match prior {
                Some(w) => planner.plan_warm(&parsed.nets, &w.traced, &w.dirty),
                None => planner.plan_traced(&parsed.nets),
            }
        }));
        shard.replay_into(&*self.metrics);
        outcome.map_err(|panic| {
            let what = panic
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            format!("internal: solve panicked: {what}")
        })
    }

    /// `true` when a snapshot log is live (persistence configured and
    /// healthy).
    fn persists(&self) -> bool {
        self.snapshot_log.is_live()
    }

    /// Appends one encoded entry to the snapshot log. Failures are
    /// counted (`service.persist.errors`) and otherwise ignored — a
    /// full disk degrades durability, never availability; the log
    /// itself rolled back the torn tail.
    fn append_record(&self, payload: &[u8]) {
        if self.snapshot_log.append(payload).is_err() {
            self.metrics.counter("service.persist.errors", 1);
        }
    }

    fn render(&self, traced: TracedPlan) -> Solved {
        let plan = traced.plan();
        Solved {
            report: report::plan_report(plan),
            routed: plan.routed().count(),
            failed: plan.failed().count(),
            degraded: plan.degraded().count(),
            traced,
        }
    }

    /// Serves one line-oriented connection (stdio or a TCP stream)
    /// until EOF or shutdown, through the bounded [`FrameReader`] —
    /// the only sanctioned way to read an untrusted stream in this
    /// crate (crlint CR007). Blank lines are ignored; every request
    /// line gets exactly one response line, flushed immediately.
    /// Oversized lines get one `malformed` response and are discarded
    /// without buffering. A timed-out read (see
    /// [`ServiceConfig::poll_ms`]) just re-checks the shutdown flag,
    /// which is how idle connections notice a drain.
    ///
    /// # Errors
    ///
    /// Propagates read/write errors on the underlying streams (never a
    /// parse or protocol problem — those are answered in-band).
    pub fn serve<R: Read, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        let mut frames = FrameReader::new(reader, self.config.max_line);
        loop {
            match frames.next_frame()? {
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    frame::write_line(&mut writer, &self.handle_line(&line))?;
                    if self.is_shut_down() {
                        return Ok(());
                    }
                }
                Frame::Oversized { limit } => {
                    self.metrics.counter("service.malformed", 1);
                    let message = format!("request line exceeds {limit} bytes");
                    frame::write_line(&mut writer, &protocol::malformed(&message))?;
                }
                Frame::Idle => {
                    if self.is_shut_down() {
                        return Ok(());
                    }
                }
                Frame::Eof { partial } => {
                    // A half-written final line (no newline before the
                    // peer died) still gets its one response; then the
                    // connection closes cleanly.
                    if let Some(tail) = partial {
                        if !tail.trim().is_empty() {
                            frame::write_line(&mut writer, &self.handle_line(&tail))?;
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Accept loop: a bounded worker pool (never one thread per
    /// connection) drains accepted streams from a bounded queue, so
    /// thread count and queued memory are functions of configuration,
    /// not offered load. The pool is sized against
    /// [`ServiceConfig::max_inflight`] — every solve slot can stay busy
    /// while two spare workers keep control traffic and `busy`
    /// rejections flowing; connections beyond that wait first in the
    /// queue, then in the OS accept backlog. Non-blocking accept so a
    /// `shutdown` request on any connection stops the listener
    /// promptly; connections read with a [`ServiceConfig::poll_ms`]
    /// timeout so idle ones observe the drain too. Returns once
    /// shutdown is observed and all pooled connections finish.
    ///
    /// # Errors
    ///
    /// Propagates fatal `accept` errors (per-connection I/O errors only
    /// end that connection).
    pub fn serve_listener(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let workers = self.config.max_inflight.saturating_add(2);
        pool::run(
            workers,
            workers,
            |stream: TcpStream| {
                // Best-effort: a connection without a timeout still
                // serves, it just cannot notice a drain until its next
                // complete frame.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(
                    self.config.poll_ms.max(1),
                )));
                if let Ok(write_half) = stream.try_clone() {
                    // Connection errors end the connection, never the
                    // service.
                    let _ = self.serve(stream, write_half);
                }
            },
            |queue| loop {
                if self.is_shut_down() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        self.metrics
                            .gauge_max("service.pool.backlog", queue.depth() as u64 + 1);
                        if !queue.push(stream) {
                            return Ok(());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_core::telemetry::validate_json;

    const SCENARIO: &str =
        "die 10mm 10mm\\ngrid 20 20\\nblock hard 8 8 11 11\\nnet comb name=a src=0,0 dst=19,19\\nnet reg name=b src=0,10 dst=19,10 period=2000\\n";

    fn route_line(id: &str, scenario: &str) -> String {
        format!("{{\"id\":\"{id}\",\"op\":\"route\",\"scenario\":\"{scenario}\"}}")
    }

    #[test]
    fn cold_then_hit_same_bytes() {
        let service = Service::new(ServiceConfig::default());
        let cold = service.handle_line(&route_line("c", SCENARIO));
        let hit = service.handle_line(&route_line("c", SCENARIO));
        assert!(cold.contains("\"cache\":\"cold\""), "{cold}");
        assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
        assert_eq!(
            cold.replace("\"cache\":\"cold\"", ""),
            hit.replace("\"cache\":\"hit\"", ""),
            "identical apart from the cache label"
        );
        assert_eq!(service.metrics().counter_value("service.hits"), 1);
        assert_eq!(service.metrics().counter_value("service.misses"), 1);
    }

    #[test]
    fn whitespace_variant_is_a_cache_hit() {
        let service = Service::new(ServiceConfig::default());
        let a = service.handle_line(&route_line("a", SCENARIO));
        let noisy = SCENARIO.replace("\\n", "   # note\\r\\n");
        let b = service.handle_line(&route_line("a", &noisy));
        assert!(a.contains("\"cache\":\"cold\""));
        assert!(b.contains("\"cache\":\"hit\""), "{b}");
    }

    #[test]
    fn malformed_and_bad_scenarios_get_error_responses() {
        let service = Service::new(ServiceConfig::default());
        let r = service.handle_line("{oops");
        assert!(r.contains("\"status\":\"malformed\""), "{r}");
        validate_json(&r).unwrap();
        let r = service.handle_line(&route_line("x", "die 1mm 1mm\\nnope\\n"));
        assert!(r.contains("\"status\":\"error\""), "{r}");
        assert!(r.contains("scenario: line 2"), "{r}");
        assert_eq!(service.metrics().counter_value("service.malformed"), 1);
        assert_eq!(service.metrics().counter_value("service.errors"), 1);
    }

    #[test]
    fn net_cap_rejects_with_busy() {
        let config = ServiceConfig {
            max_nets: 1,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        let r = service.handle_line(&route_line("big", SCENARIO));
        assert!(r.contains("\"status\":\"busy\""), "{r}");
        assert!(r.contains("2 nets, limit 1"), "{r}");
        assert_eq!(service.metrics().counter_value("service.rejects"), 1);
    }

    #[test]
    fn control_requests_work() {
        let service = Service::new(ServiceConfig::default());
        assert!(service.handle_line("{\"id\":\"p\",\"op\":\"ping\"}").contains("\"pong\":true"));
        let stats = service.handle_line("{\"op\":\"stats\"}");
        assert!(stats.contains("service.requests"), "{stats}");
        validate_json(&stats).unwrap();
        assert!(!service.is_shut_down());
        let bye = service.handle_line("{\"op\":\"shutdown\"}");
        assert!(bye.contains("\"bye\":true"));
        assert!(service.is_shut_down());
    }

    #[test]
    fn oversized_and_half_written_lines_never_kill_the_loop() {
        let config = ServiceConfig {
            max_line: 64,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        let long = "x".repeat(200);
        // Oversized line, a good request, then a final request whose
        // newline never arrived (peer died mid-write).
        let input = format!("{long}\n{{\"op\":\"ping\"}}\n{{\"op\":\"ping\"}}");
        let mut out = Vec::new();
        service.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"status\":\"malformed\""), "{text}");
        assert!(lines[0].contains("exceeds 64 bytes"), "{text}");
        assert!(lines[1].contains("pong"), "{text}");
        assert!(lines[2].contains("pong"), "half-written tail answered: {text}");
    }

    #[test]
    fn state_dir_round_trips_the_cache_across_restarts() {
        let dir = std::env::temp_dir().join(format!(
            "clockroute-server-restart-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            state: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let first = Service::new(config.clone());
        let cold = first.handle_line(&route_line("r", SCENARIO));
        assert!(cold.contains("\"cache\":\"cold\""), "{cold}");
        // No snapshot() call: the per-insert append alone must carry
        // the entry across the "crash".
        drop(first);
        let second = Service::new(config);
        assert_eq!(
            second.metrics().counter_value("service.persist.recovered"),
            1
        );
        assert_eq!(second.metrics().counter_value("service.persist.dropped"), 0);
        let hit = second.handle_line(&route_line("r", SCENARIO));
        assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
        assert_eq!(
            cold.replace("\"cache\":\"cold\"", ""),
            hit.replace("\"cache\":\"hit\"", ""),
            "recovered entry answers byte-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "clockroute-server-snapshot-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            state: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let service = Service::new(config.clone());
        service.handle_line(&route_line("r", SCENARIO));
        service.snapshot().unwrap();
        // Appends after a snapshot land in the new log generation.
        let other = SCENARIO.replace("8 8 11 11", "3 3 6 6");
        service.handle_line(&route_line("r2", &other));
        drop(service);
        let reborn = Service::new(config);
        assert_eq!(
            reborn.metrics().counter_value("service.persist.recovered"),
            2
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_answers_each_line_and_stops_on_shutdown() {
        let service = Service::new(ServiceConfig::default());
        let input = "{\"op\":\"ping\"}\n\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n";
        let mut out = Vec::new();
        service.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "post-shutdown line unanswered: {text}");
        assert!(lines[0].contains("pong"));
        assert!(lines[1].contains("bye"));
    }
}
