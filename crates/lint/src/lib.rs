//! `crlint` — the DRC for the source code.
//!
//! `crates/core/src/drc.rs` checks that a *routed plan* obeys the
//! physical design rules; this crate checks that the *source tree*
//! obeys the correctness invariants PRs 1–3 established by hand:
//!
//! | Rule  | Invariant | Introduced by |
//! |-------|-----------|---------------|
//! | CR000 | `crlint-allow` suppressions must name a known rule and a reason | this PR |
//! | CR001 | ordering keys are totally ordered (no NaN-unsound `partial_cmp`) | PR 2 heap fix |
//! | CR002 | no `unwrap`/`expect` panics in the algorithmic core | PR 1 ladder |
//! | CR003 | wall-clock reads confined to budget/telemetry seams | PR 2 promptness fix |
//! | CR004 | threads confined to the planner; no `static mut` | PR 2 Send/Sync audit |
//! | CR005 | search queue loops are budget-cancellable | PR 2 promptness fix |
//! | CR006 | report/serialization modules use ordered collections | PR 3 `--jobs` byte-identity |
//! | CR007 | service reads untrusted streams only through the bounded frame reader | PR 6 crash-safety |
//! | CR008 | no raw `std::sync` locks in threaded crates — ranked `lockcheck` wrappers only | PR 9 lock discipline |
//! | CR009 | lock ranks are literal; guards stay lexical (no storing/returning) | PR 9 lock discipline |
//! | CR010 | no condvar wait while another named guard is live | PR 9 lock discipline |
//!
//! Dependency-free by design (it gates the build that would build its
//! dependencies). The binary is `crlint`; the library entry points are
//! [`lint_source`] for one file and [`run_workspace`] for the tree.
//!
//! Suppression syntax (the reason is mandatory — CR000 fires without
//! one): a line comment `// crlint-allow: CR003 span start, duration
//! only reaches telemetry` suppresses that rule on the same line and
//! the next line.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;
pub mod scan;

/// Diagnostic severity. Every current rule reports `Error`; the field
/// exists so future advisory rules don't need a schema change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic: rule, location, human message.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub severity: Severity,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}: {}",
            self.path, self.line, self.rule, self.severity, self.message
        )
    }
}

/// A parsed `crlint-allow` directive.
struct Allow {
    rule: String,
    line: u32,
    reason_ok: bool,
    known_rule: bool,
}

/// Extracts `crlint-allow: CRxxx reason…` directives from comments.
/// Only line comments are honoured — a directive buried in a block
/// comment spanning many lines would have ambiguous scope.
fn parse_allows(ctx: &scan::FileCtx) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &ctx.comments {
        // Plain `//` comments only: block comments have ambiguous line
        // scope, and doc comments (`///`, `//!`) are documentation —
        // they may *mention* the syntax without meaning it.
        if c.text.starts_with("/*") || c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("crlint-allow:") else {
            continue;
        };
        let rest = c.text[at + "crlint-allow:".len()..].trim_start();
        let rule: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
        let reason = rest[rule.len()..].trim();
        allows.push(Allow {
            known_rule: rules::RULE_IDS.contains(&rule.as_str()),
            rule,
            line: c.line,
            reason_ok: !reason.is_empty(),
        });
    }
    allows
}

/// Lints one file's source text. `rel` is the workspace-relative path;
/// rules use it to decide scope (which crate, which module list), so
/// fixture tests can impersonate any location.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let ctx = scan::FileCtx::new(rel, src);
    let mut findings = Vec::new();
    rules::check_file(&ctx, &mut findings);

    let allows = parse_allows(&ctx);
    // CR000: malformed suppressions are themselves findings, and they
    // suppress nothing.
    for a in &allows {
        if !a.known_rule {
            findings.push(Finding {
                rule: "CR000".to_string(),
                severity: Severity::Error,
                path: rel.to_string(),
                line: a.line,
                message: format!(
                    "`crlint-allow` names unknown rule `{}`; known rules are {}",
                    a.rule,
                    rules::RULE_IDS.join(", ")
                ),
            });
        } else if !a.reason_ok {
            findings.push(Finding {
                rule: "CR000".to_string(),
                severity: Severity::Error,
                path: rel.to_string(),
                line: a.line,
                message: format!(
                    "`crlint-allow: {}` carries no reason; suppressions must \
                     say why the invariant holds here",
                    a.rule
                ),
            });
        }
    }
    // A well-formed allow covers its own line (trailing comment) and
    // the following line (comment-above style).
    findings.retain(|f| {
        f.rule == "CR000"
            || !allows.iter().any(|a| {
                a.known_rule
                    && a.reason_ok
                    && a.rule == f.rule
                    && (f.line == a.line || f.line == a.line + 1)
            })
    });
    sort_findings(&mut findings);
    findings
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
}

/// Walks the workspace rooted at `root` and lints every first-party
/// `.rs` file. Vendored stubs (`vendor/`), build output (`target/`) and
/// lint fixtures (`fixtures/`) are excluded; everything else — sources,
/// integration tests, benches, examples, this crate itself — is
/// scanned (test scope relaxes some rules per file, see
/// [`scan::FileCtx::in_test`]).
///
/// # Errors
///
/// Returns a message on I/O failure (unreadable file or directory).
pub fn run_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {rel}: {e}"))?;
        findings.extend(lint_source(rel, &src));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// Verifies every path hardcoded in the rule allowlists
/// ([`rules::allowlists`]) still exists under `root`, returning the
/// dead entries as `"CRxxx: path"` strings (sorted, deduplicated).
/// Entries ending in `/` must be directories; the rest must be files.
///
/// Allowlists rot silently: when `crates/service/src/frame.rs` moves,
/// CR007's exemption stops matching and CR007 starts firing on a file
/// that no longer exists while the *new* location goes unchecked — or
/// worse, a scope list shrinks and a whole rule silently stops
/// applying. The binary fails the run (exit 2) when this returns any
/// entries.
pub fn check_allowlists(root: &Path) -> Vec<String> {
    let mut dead = Vec::new();
    for (rule, list) in rules::allowlists() {
        for entry in list {
            let path = root.join(entry);
            let alive = if entry.ends_with('/') {
                path.is_dir()
            } else {
                path.is_file()
            };
            if !alive {
                dead.push(format!("{rule}: {entry}"));
            }
        }
    }
    dead.sort();
    dead.dedup();
    dead
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders findings as one deterministic JSON object (sorted by path,
/// line, rule; stable key order). Validated in the test suite by the
/// same dependency-free `validate_json` checker the e2e tests use for
/// `--metrics` output.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"path\":{},\"line\":{},\"message\":{},\"explain\":{}}}",
            json_str(&f.rule),
            json_str(&f.severity.to_string()),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(rules::explain_line(&f.rule).unwrap_or(""))
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    s.push_str(&format!(
        "],\"counts\":{{\"error\":{},\"warning\":{}}}}}",
        errors,
        findings.len() - errors
    ));
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locates the workspace root: walks up from `start` until a directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_suppresses_same_and_next_line() {
        let src = "\
fn f(q: &Q) {
    // crlint-allow: CR002 value checked non-empty two lines up
    q.get().unwrap();
    q.get().unwrap(); // not covered: two lines below the allow
}
";
        let out = lint_source("crates/core/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "CR002");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn suppression_without_reason_is_cr000_and_suppresses_nothing() {
        let src = "\
fn f(q: &Q) {
    // crlint-allow: CR002
    q.get().unwrap();
}
";
        let out = lint_source("crates/core/src/x.rs", src);
        let rules: Vec<&str> = out.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(rules, ["CR000", "CR002"], "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unknown_rule_in_suppression_is_cr000() {
        let out = lint_source(
            "crates/core/src/x.rs",
            "// crlint-allow: CR999 no such rule\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "CR000");
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let f = Finding {
            rule: "CR003".to_string(),
            severity: Severity::Error,
            path: "a\"b.rs".to_string(),
            line: 7,
            message: "line\nbreak".to_string(),
        };
        let one = to_json(&[f.clone()]);
        assert_eq!(one, to_json(&[f]));
        assert!(one.contains("a\\\"b.rs"));
        assert!(one.contains("line\\nbreak"));
        assert!(to_json(&[]).contains("\"findings\":[]"));
    }
}
