//! Technology parameters: per-length wire RC for the chosen width/layer.

use clockroute_geom::units::{CapPerLength, Capacitance, Length, ResPerLength, Resistance, Time};
use serde::{Deserialize, Serialize};

/// Interconnect technology parameters.
///
/// The paper assumes a *fixed wire width and layer assignment*, so wire
/// electrical behaviour reduces to a uniform resistance and capacitance per
/// unit length (§II). A grid edge of length `L` contributes resistance
/// `r·L` and capacitance `c·L`, connected in the π configuration (half the
/// capacitance at each end).
///
/// ```
/// use clockroute_elmore::Technology;
/// use clockroute_geom::units::Length;
///
/// let tech = Technology::paper_070nm();
/// let (r, c) = tech.wire(Length::from_mm(1.0));
/// assert!((r.ohms() - 1390.0).abs() < 1e-9);
/// assert!((c.ff() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    unit_res: ResPerLength,
    unit_cap: CapPerLength,
}

impl Technology {
    /// Creates a technology from per-length wire parameters.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(unit_res: ResPerLength, unit_cap: CapPerLength) -> Technology {
        assert!(
            unit_res.ohms_per_um() > 0.0 && unit_res.ohms_per_um().is_finite(),
            "unit resistance must be positive and finite"
        );
        assert!(
            unit_cap.ff_per_um() > 0.0 && unit_cap.ff_per_um().is_finite(),
            "unit capacitance must be positive and finite"
        );
        Technology { unit_res, unit_cap }
    }

    /// The 0.07 µm global-wire parameter set used throughout the paper's
    /// experiments (triple-wide wires; estimates after Cong & Pan).
    ///
    /// The paper does not print the raw numbers, so this set is
    /// *calibrated* to reproduce the paper's observable anchors (see
    /// `DESIGN.md` §3 and the tests in [`crate::calib`]):
    ///
    /// * optimal buffer separation ≈ 2.37 mm (19 edges @ 0.125 mm pitch);
    /// * minimum buffered delay across 40 mm ≈ 2.74 ns;
    /// * minimum feasible clock period 49 ps at 0.125 mm pitch, with the
    ///   0.25 mm grid feasible at 53 ps but not 49 ps, and the 0.5 mm grid
    ///   infeasible at both (Table II crossovers);
    /// * zero-buffer rows of Table I (T = 84/67/62/53/49 ps) reproduced to
    ///   within ~1 ps.
    pub fn paper_070nm() -> Technology {
        Technology::new(
            ResPerLength::from_ohms_per_um(1.39),
            CapPerLength::from_ff_per_um(0.0100),
        )
    }

    /// Wire resistance per unit length.
    #[inline]
    pub fn unit_res(&self) -> ResPerLength {
        self.unit_res
    }

    /// Wire capacitance per unit length.
    #[inline]
    pub fn unit_cap(&self) -> CapPerLength {
        self.unit_cap
    }

    /// Total resistance and capacitance of a wire of length `len`.
    #[inline]
    pub fn wire(&self, len: Length) -> (Resistance, Capacitance) {
        (self.unit_res * len, self.unit_cap * len)
    }

    /// Elmore delay contribution of traversing a wire of length `len` that
    /// drives a downstream load `c_load`, per the π-model:
    /// `R_wire · (c_load + C_wire / 2)`.
    ///
    /// This is the quantity the search algorithms add per grid edge
    /// (Fig. 1 step 6 / Fig. 5 step 5).
    #[inline]
    pub fn wire_delay(&self, len: Length, c_load: Capacitance) -> Time {
        let (r, c) = self.wire(len);
        r * (c_load + c * 0.5)
    }

    /// The distributed `rc/2` delay of an unloaded wire of length `len`
    /// (useful for quick lower bounds).
    #[inline]
    pub fn intrinsic_wire_delay(&self, len: Length) -> Time {
        let (r, c) = self.wire(len);
        r * c * 0.5
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::paper_070nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resistance() {
        let _ = Technology::new(
            ResPerLength::from_ohms_per_um(0.0),
            CapPerLength::from_ff_per_um(0.01),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_capacitance() {
        let _ = Technology::new(
            ResPerLength::from_ohms_per_um(1.0),
            CapPerLength::from_ff_per_um(-0.01),
        );
    }

    #[test]
    fn wire_scales_linearly() {
        let tech = Technology::paper_070nm();
        let (r1, c1) = tech.wire(Length::from_um(100.0));
        let (r2, c2) = tech.wire(Length::from_um(200.0));
        assert!((r2.ohms() - 2.0 * r1.ohms()).abs() < 1e-9);
        assert!((c2.ff() - 2.0 * c1.ff()).abs() < 1e-9);
    }

    #[test]
    fn wire_delay_pi_model() {
        let tech = Technology::paper_070nm();
        let len = Length::from_mm(1.0);
        let load = Capacitance::from_ff(23.4);
        // Hand-computed: R = 1390 Ω, C = 10.0 fF;
        // d = 1390 × (23.4 + 5.0) fF = 1390 × 28.4 Ω·fF = 39.476 ps.
        let d = tech.wire_delay(len, load);
        assert!((d.ps() - 39.476).abs() < 1e-9, "{d}");
    }

    #[test]
    fn wire_delay_superlinear_in_length() {
        // Doubling the wire more than doubles its delay (quadratic term).
        let tech = Technology::paper_070nm();
        let load = Capacitance::from_ff(10.0);
        let d1 = tech.wire_delay(Length::from_mm(1.0), load);
        let d2 = tech.wire_delay(Length::from_mm(2.0), load);
        assert!(d2 > d1 * 2.0);
    }

    #[test]
    fn intrinsic_wire_delay_quadratic() {
        let tech = Technology::paper_070nm();
        let d1 = tech.intrinsic_wire_delay(Length::from_mm(1.0));
        let d2 = tech.intrinsic_wire_delay(Length::from_mm(2.0));
        assert!((d2.ps() - 4.0 * d1.ps()).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper_technology() {
        assert_eq!(Technology::default(), Technology::paper_070nm());
    }
}
