//! `clockroute-service` — a long-running routing service around the
//! deterministic planner.
//!
//! The `crserve` binary answers line-oriented JSON requests (stdio or
//! TCP): each `route` request carries a `.cr` scenario, and the
//! response embeds exactly the per-net report a cold `crplan --quiet`
//! run would print. Three request paths produce that report:
//!
//! * **hit** — the scenario's canonical hash ([`keys`]) matches a
//!   cached solve byte-for-byte; no planning happens.
//! * **warm** — same die/grid/tech/nets as a cached solve but a small
//!   blockage delta; only nets whose search footprints intersect the
//!   delta are re-routed ([`clockroute_plan::Planner::plan_warm`]).
//! * **cold** — a full solve under the service's admission budget.
//! * **coalesced** — a concurrent request for a scenario already being
//!   solved; single-flight ([`shard`]) blocks it on the leader's solve
//!   and answers it from the leader's entry once durable.
//!
//! All four are byte-identical by construction and by test, for every
//! `--shards` value. The cache is sharded across per-key locks
//! ([`shard::ShardedCache`]); the TCP front-end runs a bounded worker
//! pool ([`pool`]) instead of a thread per connection. Admission
//! control ([`admission`]) bounds concurrent solves and scenario size,
//! answering `busy` (with a deterministic `retry_after_ms` hint)
//! instead of queueing unboundedly; a panicking solve (fault injection
//! included) costs one request, never the process.
//!
//! The service is also **crash-safe**: with a state directory
//! configured, every insert is appended to a checksummed snapshot log
//! ([`persist`]) and replayed on restart — each record re-verified
//! structurally like a cache hit, torn or corrupt records dropped.
//! Untrusted streams are read only through the bounded [`frame`]
//! reader (crlint CR007), and SIGINT/SIGTERM drain gracefully
//! ([`server::install_signal_handlers`]). Clients pace themselves with
//! the deterministic [`retry`] backoff policy.
//!
//! Every lock in the crate is a ranked
//! [`clockroute_core::lockcheck::OrderedMutex`]
//! (`Pool < Pending < Cache < Persist < Telemetry`), so the documented
//! lock order — pending before cache, never two shards, waits hold
//! exactly the waited lock — is asserted at runtime in debug/lockcheck
//! builds and statically by crlint CR008–CR010.
//!
//! See DESIGN.md §12 for the protocol grammar and the warm-start
//! soundness argument, §13 for the persistence format and the shutdown
//! state machine, §14 for the sharding, single-flight, and lock-order
//! story, and §16 for the rank lattice and what the lockcheck gates
//! prove.

pub mod admission;
pub mod cache;
pub mod frame;
pub mod keys;
pub mod persist;
pub mod pool;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod shard;

pub use admission::{Admission, Rejection};
pub use cache::{ResultCache, Solved};
pub use frame::{Frame, FrameReader};
pub use keys::{base_key, block_delta, scenario_key};
pub use retry::RetryPolicy;
pub use server::{install_signal_handlers, Service, ServiceConfig};
pub use shard::{Lookup, ShardedCache};
