//! Offline stub of `rand`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. This stub provides the small surface the
//! workspace uses — `StdRng::seed_from_u64` plus `Rng::gen_range` over
//! half-open and inclusive integer/float ranges — backed by SplitMix64.
//! All workspace call sites seed explicitly, so determinism is
//! preserved (though the sequences differ from the real `rand`).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. `T` is free, as in the
    /// real crate, so integer literals infer from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics on an empty range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for the real
    /// `StdRng`. Good statistical quality for test-data generation;
    /// **not** cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(3u32..17);
            assert_eq!(x, b.gen_range(3u32..17));
            assert!((3..17).contains(&x));
            let f = a.gen_range(1.5f64..=2.5);
            assert_eq!(f, b.gen_range(1.5f64..=2.5));
            assert!((1.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_integer_bounds_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
