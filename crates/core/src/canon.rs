//! Canonical structure hashing for scenario fingerprints.
//!
//! The service layer keys its result cache on a hash of the *parsed*
//! scenario, not the file bytes, so two `.cr` files that differ only in
//! comments, whitespace, line endings, or blockage declaration order
//! map to the same cache entry. The contract, spelled out in DESIGN.md
//! §12:
//!
//! * **Insensitive** to anything the parser normalizes away: comments,
//!   blank lines, CRLF vs LF, token spacing — callers hash the parsed
//!   structures, never the raw text.
//! * **Insensitive** to blockage declaration order (a floorplan is a
//!   *set* of placed blocks; rasterization is commutative), via
//!   [`combine_unordered`].
//! * **Sensitive** to net declaration order. Net order is semantic
//!   under sequential resource reservation — swapping two nets can
//!   change both routes — so nets are hashed in declaration order.
//!
//! The hasher is a dependency-free FNV-1a 64 with a splitmix64
//! finalizer for the unordered combiner. It is a *fingerprint*, not a
//! cryptographic MAC: collisions are astronomically unlikely for
//! benign inputs but possible in principle, so the cache always
//! verifies structural equality before serving a hit.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher with canonical encodings for the
/// primitive types a scenario is built from.
///
/// Multi-byte integers are fed little-endian; strings are
/// length-prefixed (so `("ab", "c")` and `("a", "bc")` differ); floats
/// go through [`CanonHasher::write_f64`]'s canonical bit pattern.
#[derive(Debug, Clone, Copy)]
pub struct CanonHasher {
    state: u64,
}

impl Default for CanonHasher {
    fn default() -> CanonHasher {
        CanonHasher::new()
    }
}

impl CanonHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> CanonHasher {
        CanonHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by canonical bit pattern: `-0.0` is folded into
    /// `+0.0` (they compare equal, so they must hash equal) and every
    /// NaN is folded into one canonical NaN. Scenario quantities come
    /// from parsed decimal literals, so distinct values keep distinct
    /// bits.
    pub fn write_f64(&mut self, v: f64) {
        let bits = if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0u64
        } else {
            v.to_bits()
        };
        self.write_u64(bits);
    }

    /// Feeds a string, length-prefixed so concatenation boundaries
    /// cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// splitmix64 finalizer: a cheap bijective mixer with full avalanche,
/// so [`combine_unordered`]'s commutative sum still depends on every
/// bit of every element hash. Public because it is also the workspace's
/// deterministic jitter source (seeded retry backoff in the service
/// crate) — one audited mixer instead of several ad-hoc ones.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines element hashes into an order-insensitive digest: each
/// element is avalanche-mixed, then summed (commutative, associative).
/// The element count is folded in so `{h}` and `{h, h, h}` differ.
pub fn combine_unordered<I: IntoIterator<Item = u64>>(hashes: I) -> u64 {
    let mut sum = 0u64;
    let mut count = 0u64;
    for h in hashes {
        sum = sum.wrapping_add(mix64(h));
        count += 1;
    }
    let mut out = CanonHasher::new();
    out.write_u64(sum);
    out.write_u64(count);
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl FnOnce(&mut CanonHasher)) -> u64 {
        let mut h = CanonHasher::new();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Standard FNV-1a 64 vectors: "" and "a".
        assert_eq!(hash_of(|_| ()), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            hash_of(|h| h.write_bytes(b"a")),
            0xaf63_dc4c_8601_ec8c
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let whole = hash_of(|h| h.write_bytes(b"hello world"));
        let split = hash_of(|h| {
            h.write_bytes(b"hello ");
            h.write_bytes(b"world");
        });
        assert_eq!(whole, split);
    }

    #[test]
    fn length_prefix_separates_strings() {
        let ab_c = hash_of(|h| {
            h.write_str("ab");
            h.write_str("c");
        });
        let a_bc = hash_of(|h| {
            h.write_str("a");
            h.write_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn f64_is_canonical() {
        assert_eq!(hash_of(|h| h.write_f64(0.0)), hash_of(|h| h.write_f64(-0.0)));
        assert_eq!(
            hash_of(|h| h.write_f64(f64::NAN)),
            hash_of(|h| h.write_f64(-f64::NAN))
        );
        assert_ne!(hash_of(|h| h.write_f64(1.0)), hash_of(|h| h.write_f64(2.0)));
    }

    #[test]
    fn integers_disambiguate_width() {
        assert_ne!(
            hash_of(|h| h.write_u32(7)),
            hash_of(|h| h.write_u64(7))
        );
        assert_ne!(hash_of(|h| h.write_u32(1)), hash_of(|h| h.write_u32(256)));
    }

    #[test]
    fn unordered_combine_is_order_insensitive() {
        let a = combine_unordered([1u64, 2, 3]);
        let b = combine_unordered([3u64, 1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, combine_unordered([1u64, 2]));
        // Multiplicity matters.
        assert_ne!(combine_unordered([5u64]), combine_unordered([5u64, 5]));
        // Empty set is distinct from the raw offset basis.
        assert_ne!(combine_unordered([]), CanonHasher::new().finish());
    }

    #[test]
    fn unordered_combine_avalanches() {
        // Without mixing, {1, 4} and {2, 3} would collide (equal sums).
        assert_ne!(combine_unordered([1u64, 4]), combine_unordered([2u64, 3]));
    }
}
