//! Switch-level gate models and the insertable-element library.
//!
//! The paper's set of insertable elements is `I = B ∪ {r}` for the
//! single-clock problem and `I = B ∪ {r, f}` for the GALS problem, where
//! `B` is a library of non-inverting buffers, `r` a register (or relay
//! station — the paper treats them as delay-identical, §IV-B) and `f` the
//! MCFIFO. Every element `g` is characterised by its driver resistance
//! `R(g)`, intrinsic delay `K(g)` and input capacitance `C(g)`; sequential
//! elements additionally have a setup time `Setup(g)`.

use clockroute_geom::units::{Capacitance, Resistance, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a gate plays on a routed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// A non-inverting combinational repeater.
    Buffer,
    /// An edge-triggered register used as a synchronizer (also models a
    /// relay station, which has the same delay properties — paper §IV-B).
    Register,
    /// A level-sensitive transparent latch (extension, paper ref.\ \[9\]).
    Latch,
    /// The mixed-clock FIFO element of Chelcea & Nowick.
    McFifo,
}

impl GateKind {
    /// `true` for elements that are clocked (break combinational stages).
    #[inline]
    pub fn is_sequential(self) -> bool {
        !matches!(self, GateKind::Buffer)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buffer => "buffer",
            GateKind::Register => "register",
            GateKind::Latch => "latch",
            GateKind::McFifo => "mcfifo",
        };
        f.write_str(s)
    }
}

/// A switch-level gate model.
///
/// `Gate` is a small `Copy` value; human-readable names live in the
/// [`GateLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    kind: GateKind,
    driver_res: Resistance,
    input_cap: Capacitance,
    intrinsic: Time,
    setup: Time,
}

impl Gate {
    /// Creates a gate model.
    ///
    /// # Panics
    ///
    /// Panics if resistance/capacitance are not strictly positive, if the
    /// intrinsic delay or setup time is negative, or if a combinational
    /// gate is given a non-zero setup time.
    pub fn new(
        kind: GateKind,
        driver_res: Resistance,
        input_cap: Capacitance,
        intrinsic: Time,
        setup: Time,
    ) -> Gate {
        assert!(driver_res.ohms() > 0.0, "driver resistance must be positive");
        assert!(input_cap.ff() > 0.0, "input capacitance must be positive");
        assert!(intrinsic.ps() >= 0.0, "intrinsic delay must be non-negative");
        assert!(setup.ps() >= 0.0, "setup time must be non-negative");
        assert!(
            kind.is_sequential() || setup == Time::ZERO,
            "combinational gates have no setup time"
        );
        Gate {
            kind,
            driver_res,
            input_cap,
            intrinsic,
            setup,
        }
    }

    /// The gate's role.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Driver (output) resistance `R(g)`.
    #[inline]
    pub fn driver_res(&self) -> Resistance {
        self.driver_res
    }

    /// Input capacitance `C(g)`.
    #[inline]
    pub fn input_cap(&self) -> Capacitance {
        self.input_cap
    }

    /// Intrinsic delay `K(g)`.
    #[inline]
    pub fn intrinsic(&self) -> Time {
        self.intrinsic
    }

    /// Setup time `Setup(g)` (zero for combinational gates).
    #[inline]
    pub fn setup(&self) -> Time {
        self.setup
    }

    /// Switch-level gate delay when driving a load `c_load`:
    /// `R(g) · c_load + K(g)`.
    #[inline]
    pub fn delay(&self, c_load: Capacitance) -> Time {
        self.driver_res * c_load + self.intrinsic
    }
}

/// Identifier of a gate within a [`GateLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GateId(u16);

impl GateId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The library of insertable elements available to the search.
///
/// Holds the buffer library `B` plus the distinguished register, latch and
/// MCFIFO models.
///
/// ```
/// use clockroute_elmore::{GateLibrary, GateKind};
/// let lib = GateLibrary::paper_library();
/// assert_eq!(lib.buffers().count(), 1);
/// assert_eq!(lib.gate(lib.register()).kind(), GateKind::Register);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateLibrary {
    gates: Vec<Gate>,
    names: Vec<String>,
    buffers: Vec<GateId>,
    register: GateId,
    latch: GateId,
    mcfifo: GateId,
}

/// Builder for [`GateLibrary`].
#[derive(Debug, Clone, Default)]
pub struct GateLibraryBuilder {
    gates: Vec<Gate>,
    names: Vec<String>,
    buffers: Vec<GateId>,
    register: Option<GateId>,
    latch: Option<GateId>,
    mcfifo: Option<GateId>,
}

impl GateLibraryBuilder {
    /// Creates an empty builder.
    pub fn new() -> GateLibraryBuilder {
        GateLibraryBuilder::default()
    }

    fn push(&mut self, name: &str, gate: Gate) -> GateId {
        // crlint-allow: CR002 builder API contract: libraries are tiny, >u16::MAX gates is caller error
        let id = GateId(u16::try_from(self.gates.len()).expect("too many gates"));
        self.gates.push(gate);
        self.names.push(name.to_owned());
        id
    }

    /// Adds a buffer to the library `B`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is not a [`GateKind::Buffer`].
    pub fn buffer(mut self, name: &str, gate: Gate) -> Self {
        assert_eq!(gate.kind(), GateKind::Buffer, "expected a buffer model");
        let id = self.push(name, gate);
        self.buffers.push(id);
        self
    }

    /// Sets the register (and relay-station) model.
    pub fn register(mut self, name: &str, gate: Gate) -> Self {
        assert_eq!(gate.kind(), GateKind::Register, "expected a register model");
        let id = self.push(name, gate);
        self.register = Some(id);
        self
    }

    /// Sets the transparent-latch model.
    pub fn latch(mut self, name: &str, gate: Gate) -> Self {
        assert_eq!(gate.kind(), GateKind::Latch, "expected a latch model");
        let id = self.push(name, gate);
        self.latch = Some(id);
        self
    }

    /// Sets the MCFIFO model.
    pub fn mcfifo(mut self, name: &str, gate: Gate) -> Self {
        assert_eq!(gate.kind(), GateKind::McFifo, "expected an MCFIFO model");
        let id = self.push(name, gate);
        self.mcfifo = Some(id);
        self
    }

    /// Finishes the library.
    ///
    /// # Panics
    ///
    /// Panics if the buffer library is empty or if no register model was
    /// provided. The latch and MCFIFO models default to register-delay
    /// clones when unset (the paper assumes identical delay
    /// characteristics for register and MCFIFO).
    pub fn build(mut self) -> GateLibrary {
        assert!(!self.buffers.is_empty(), "buffer library may not be empty");
        // crlint-allow: CR002 documented builder contract: build() panics without a register model
        let register = self.register.expect("a register model is required");
        let reg_gate = self.gates[register.index()];
        let latch = self.latch.unwrap_or_else(|| {
            let g = Gate::new(
                GateKind::Latch,
                reg_gate.driver_res(),
                reg_gate.input_cap(),
                reg_gate.intrinsic(),
                reg_gate.setup(),
            );
            // crlint-allow: CR002 builder API contract: libraries are tiny, >u16::MAX gates is caller error
            let id = GateId(u16::try_from(self.gates.len()).expect("too many gates"));
            self.gates.push(g);
            self.names.push("latch(default)".to_owned());
            id
        });
        let mcfifo = self.mcfifo.unwrap_or_else(|| {
            let g = Gate::new(
                GateKind::McFifo,
                reg_gate.driver_res(),
                reg_gate.input_cap(),
                reg_gate.intrinsic(),
                reg_gate.setup(),
            );
            // crlint-allow: CR002 builder API contract: libraries are tiny, >u16::MAX gates is caller error
            let id = GateId(u16::try_from(self.gates.len()).expect("too many gates"));
            self.gates.push(g);
            self.names.push("mcfifo(default)".to_owned());
            id
        });
        GateLibrary {
            gates: self.gates,
            names: self.names,
            buffers: self.buffers,
            register,
            latch,
            mcfifo,
        }
    }
}

impl GateLibrary {
    /// The library used by the paper's experiments: a single buffer of
    /// 100× minimum gate width, with register and MCFIFO delay
    /// characteristics identical to the buffer (§V), plus a 2 ps setup
    /// time for sequential elements.
    ///
    /// Parameter provenance is documented on
    /// [`Technology::paper_070nm`](crate::Technology::paper_070nm).
    pub fn paper_library() -> GateLibrary {
        let r = Resistance::from_ohms(180.0);
        let c = Capacitance::from_ff(23.4);
        let k = Time::from_ps(36.4);
        let setup = Time::from_ps(2.0);
        GateLibraryBuilder::new()
            .buffer("buf100x", Gate::new(GateKind::Buffer, r, c, k, Time::ZERO))
            .register("reg100x", Gate::new(GateKind::Register, r, c, k, setup))
            .latch("lat100x", Gate::new(GateKind::Latch, r, c, k, setup))
            .mcfifo("mcfifo", Gate::new(GateKind::McFifo, r, c, k, setup))
            .build()
    }

    /// Starts building a custom library.
    pub fn builder() -> GateLibraryBuilder {
        GateLibraryBuilder::new()
    }

    /// Looks up a gate model.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The gate's human-readable name.
    pub fn name(&self, id: GateId) -> &str {
        &self.names[id.index()]
    }

    /// The id for a raw gate index, if it belongs to this library.
    /// The checked inverse of [`GateId::index`], for decoders that
    /// reconstruct labels from untrusted bytes (e.g. the service's
    /// cache snapshots) and must not panic on a bad index.
    pub fn gate_id(&self, index: usize) -> Option<GateId> {
        (index < self.gates.len()).then_some(GateId(index as u16))
    }

    /// Iterates over the buffer library `B`.
    pub fn buffers(&self) -> impl Iterator<Item = GateId> + '_ {
        self.buffers.iter().copied()
    }

    /// The register model `r` (also used for relay stations).
    #[inline]
    pub fn register(&self) -> GateId {
        self.register
    }

    /// The transparent-latch model.
    #[inline]
    pub fn latch(&self) -> GateId {
        self.latch
    }

    /// The MCFIFO model `f`.
    #[inline]
    pub fn mcfifo(&self) -> GateId {
        self.mcfifo
    }

    /// Number of gate models in the library.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the library holds no gates (never true for built
    /// libraries, which require at least a buffer and a register).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// `min R(B ∪ {r})` — the smallest driver resistance over the buffer
    /// library and the register. Used by the admissible feasibility bound
    /// in RBP step 5 (`d' ≤ T_φ − K(r) − min R · c'`).
    pub fn min_driver_res(&self) -> Resistance {
        let mut m = self.gates[self.register.index()].driver_res();
        for &b in &self.buffers {
            m = m.min(self.gates[b.index()].driver_res());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(r: f64, c: f64, k: f64) -> Gate {
        Gate::new(
            GateKind::Buffer,
            Resistance::from_ohms(r),
            Capacitance::from_ff(c),
            Time::from_ps(k),
            Time::ZERO,
        )
    }

    #[test]
    fn sequential_classification() {
        assert!(!GateKind::Buffer.is_sequential());
        assert!(GateKind::Register.is_sequential());
        assert!(GateKind::Latch.is_sequential());
        assert!(GateKind::McFifo.is_sequential());
    }

    #[test]
    fn gate_delay_formula() {
        let g = buf(180.0, 23.4, 36.4);
        let d = g.delay(Capacitance::from_ff(100.0));
        assert!((d.ps() - (18.0 + 36.4)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no setup")]
    fn buffer_with_setup_rejected() {
        let _ = Gate::new(
            GateKind::Buffer,
            Resistance::from_ohms(1.0),
            Capacitance::from_ff(1.0),
            Time::ZERO,
            Time::from_ps(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let _ = buf(0.0, 1.0, 0.0);
    }

    #[test]
    fn paper_library_contents() {
        let lib = GateLibrary::paper_library();
        assert_eq!(lib.len(), 4);
        assert!(!lib.is_empty());
        assert_eq!(lib.buffers().count(), 1);
        let b = lib.buffers().next().unwrap();
        let reg = lib.gate(lib.register());
        let bufg = lib.gate(b);
        // Register and MCFIFO share the buffer's delay characteristics.
        assert_eq!(reg.driver_res(), bufg.driver_res());
        assert_eq!(reg.input_cap(), bufg.input_cap());
        assert_eq!(reg.intrinsic(), bufg.intrinsic());
        assert_eq!(lib.gate(lib.mcfifo()).driver_res(), bufg.driver_res());
        assert_eq!(reg.setup(), Time::from_ps(2.0));
        assert_eq!(lib.name(b), "buf100x");
    }

    #[test]
    fn min_driver_res_over_buffers_and_register() {
        let lib = GateLibrary::builder()
            .buffer("weak", buf(500.0, 5.0, 10.0))
            .buffer("strong", buf(90.0, 40.0, 30.0))
            .register(
                "reg",
                Gate::new(
                    GateKind::Register,
                    Resistance::from_ohms(180.0),
                    Capacitance::from_ff(23.4),
                    Time::from_ps(36.4),
                    Time::from_ps(2.0),
                ),
            )
            .build();
        assert_eq!(lib.min_driver_res(), Resistance::from_ohms(90.0));
        // Defaults for latch and MCFIFO were cloned from the register.
        assert_eq!(lib.gate(lib.mcfifo()).kind(), GateKind::McFifo);
        assert_eq!(
            lib.gate(lib.latch()).driver_res(),
            Resistance::from_ohms(180.0)
        );
        assert_eq!(lib.len(), 5);
    }

    #[test]
    #[should_panic(expected = "buffer library may not be empty")]
    fn empty_buffer_library_rejected() {
        let _ = GateLibrary::builder()
            .register(
                "reg",
                Gate::new(
                    GateKind::Register,
                    Resistance::from_ohms(180.0),
                    Capacitance::from_ff(23.4),
                    Time::from_ps(36.4),
                    Time::from_ps(2.0),
                ),
            )
            .build();
    }

    #[test]
    #[should_panic(expected = "register model is required")]
    fn missing_register_rejected() {
        let _ = GateLibrary::builder().buffer("b", buf(1.0, 1.0, 0.0)).build();
    }

    #[test]
    #[should_panic(expected = "expected a buffer")]
    fn kind_mismatch_rejected() {
        let reg = Gate::new(
            GateKind::Register,
            Resistance::from_ohms(1.0),
            Capacitance::from_ff(1.0),
            Time::ZERO,
            Time::ZERO,
        );
        let _ = GateLibrary::builder().buffer("b", reg);
    }
}
