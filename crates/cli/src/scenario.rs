//! The `.cr` scenario file format: a small, line-oriented description of
//! a die, its blockages, and the global nets to plan.
//!
//! ```text
//! # comments start with '#'
//! die 25mm 25mm            # physical die size (mm or um suffix)
//! grid 200 200             # routing grid resolution
//! tech paper               # or: tech r=1.39 c=0.0100  (Ω/µm, fF/µm)
//!
//! # block <kind> <x0> <y0> <x1> <y1>   (grid coords, inclusive)
//! block hard 40 40 80 90
//! block obstacle 120 10 150 60
//! block wiring 20 120 60 150
//! block regkeepout 100 100 130 130
//!
//! # net <kind> name=<id> src=<x>,<y> dst=<x>,<y> [period=<ps>] [ts=<ps> tt=<ps>]
//! net comb name=probe src=19,19 dst=179,179
//! net reg  name=dbus  src=19,30 dst=179,160 period=343
//! net gals name=xdom  src=30,19 dst=160,179 ts=300 tt=400
//!
//! reserve off              # optional: disable resource reservation
//!
//! # optional channel capacities for `crplan --flow` (default: unbounded)
//! capacity default 2                # every edge carries at most 2 nets
//! capacity edge 4,7 5,7 1           # one adjacent edge
//! capacity rect 10 0 12 19 1        # every edge inside the rect
//! ```

use clockroute_elmore::Technology;
use clockroute_geom::units::{CapPerLength, Length, ResPerLength, Time};
use clockroute_geom::{BlockKind, Floorplan, Point, Rect};
use clockroute_grid::EdgeCapacities;
use clockroute_plan::NetSpec;
use std::error::Error;
use std::fmt;

/// A parsed scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Die outline + blocks.
    pub floorplan: Floorplan,
    /// Grid resolution `(width, height)`.
    pub grid: (u32, u32),
    /// Technology parameters.
    pub tech: Technology,
    /// Nets to plan, in order.
    pub nets: Vec<NetSpec>,
    /// Whether routed nets reserve their resources.
    pub reserve: bool,
    /// Channel capacities for `--flow` mode. Empty (every edge
    /// unbounded) unless the scenario declares `capacity` directives.
    pub capacities: EdgeCapacities,
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ParseScenarioError {
    ParseScenarioError {
        line,
        message: message.into(),
    }
}

fn parse_length(tok: &str, line: usize) -> Result<Length, ParseScenarioError> {
    if let Some(v) = tok.strip_suffix("mm") {
        v.parse::<f64>()
            .map(Length::from_mm)
            .map_err(|_| err(line, format!("bad length `{tok}`")))
    } else if let Some(v) = tok.strip_suffix("um") {
        v.parse::<f64>()
            .map(Length::from_um)
            .map_err(|_| err(line, format!("bad length `{tok}`")))
    } else {
        Err(err(line, format!("length `{tok}` needs a mm/um suffix")))
    }
}

fn parse_point(tok: &str, line: usize) -> Result<Point, ParseScenarioError> {
    let (x, y) = tok
        .split_once(',')
        .ok_or_else(|| err(line, format!("bad point `{tok}` (expected x,y)")))?;
    let x = x
        .parse()
        .map_err(|_| err(line, format!("bad x coordinate `{x}`")))?;
    let y = y
        .parse()
        .map_err(|_| err(line, format!("bad y coordinate `{y}`")))?;
    Ok(Point::new(x, y))
}

fn kv<'a>(tokens: &'a [&str], key: &str, line: usize) -> Result<&'a str, ParseScenarioError> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| err(line, format!("missing `{key}=...`")))
}

fn parse_cap(tok: &str, line: usize) -> Result<u32, ParseScenarioError> {
    tok.parse::<u32>()
        .map_err(|_| err(line, format!("bad capacity `{tok}` (expected a non-negative integer)")))
}

/// One `capacity` directive, held until the grid bounds are known.
#[derive(Debug, Clone, Copy)]
enum CapDirective {
    Default(u32),
    Edge(Point, Point, u32),
    Rect(u32, u32, u32, u32, u32),
}

/// Parses a scenario from text.
///
/// # Errors
///
/// Returns the first [`ParseScenarioError`] encountered, with its line
/// number. A scenario must declare `die` and `grid` and at least one
/// `net`.
pub fn parse(text: &str) -> Result<Scenario, ParseScenarioError> {
    let mut die: Option<(Length, Length)> = None;
    let mut grid: Option<(u32, u32)> = None;
    let mut tech = Technology::paper_070nm();
    let mut blocks: Vec<(Rect, BlockKind, usize)> = Vec::new();
    let mut nets: Vec<(NetSpec, usize)> = Vec::new();
    let mut reserve = true;
    let mut cap_directives: Vec<(CapDirective, usize)> = Vec::new();

    for (i, raw) in text.split('\n').enumerate() {
        let line_no = i + 1;
        // CRLF files: splitting on '\n' leaves a trailing '\r' on every
        // line, which must not reach the tokens (canonical hashing makes
        // a `\r`-polluted net name a silent cache miss). One explicit
        // strip, then ordinary whitespace trimming handles trailing
        // spaces/tabs.
        let raw = raw.strip_suffix('\r').unwrap_or(raw);
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "die" => {
                if tokens.len() != 3 {
                    return Err(err(line_no, "usage: die <width> <height>"));
                }
                let w = parse_length(tokens[1], line_no)?;
                let h = parse_length(tokens[2], line_no)?;
                if w.mm() <= 0.0 || h.mm() <= 0.0 {
                    return Err(err(line_no, "die must have positive area"));
                }
                die = Some((w, h));
            }
            "grid" => {
                if tokens.len() != 3 {
                    return Err(err(line_no, "usage: grid <w> <h>"));
                }
                let w = tokens[1]
                    .parse()
                    .map_err(|_| err(line_no, "bad grid width"))?;
                let h = tokens[2]
                    .parse()
                    .map_err(|_| err(line_no, "bad grid height"))?;
                if w == 0 || h == 0 {
                    return Err(err(line_no, "grid dimensions must be non-zero"));
                }
                grid = Some((w, h));
            }
            "tech" => {
                if tokens.len() == 2 && tokens[1] == "paper" {
                    tech = Technology::paper_070nm();
                } else {
                    let r: f64 = kv(&tokens, "r", line_no)?
                        .parse()
                        .map_err(|_| err(line_no, "bad r value"))?;
                    let c: f64 = kv(&tokens, "c", line_no)?
                        .parse()
                        .map_err(|_| err(line_no, "bad c value"))?;
                    if r <= 0.0 || c <= 0.0 {
                        return Err(err(line_no, "tech parameters must be positive"));
                    }
                    tech = Technology::new(
                        ResPerLength::from_ohms_per_um(r),
                        CapPerLength::from_ff_per_um(c),
                    );
                }
            }
            "block" => {
                if tokens.len() != 6 {
                    return Err(err(line_no, "usage: block <kind> <x0> <y0> <x1> <y1>"));
                }
                let kind = match tokens[1] {
                    "hard" => BlockKind::Hard,
                    "obstacle" => BlockKind::Obstacle,
                    "wiring" => BlockKind::WiringOnly,
                    "regkeepout" => BlockKind::RegisterKeepout,
                    other => return Err(err(line_no, format!("unknown block kind `{other}`"))),
                };
                let coords: Result<Vec<u32>, _> =
                    tokens[2..6].iter().map(|t| t.parse::<u32>()).collect();
                let coords =
                    coords.map_err(|_| err(line_no, "block coordinates must be integers"))?;
                blocks.push((
                    Rect::new(
                        Point::new(coords[0], coords[1]),
                        Point::new(coords[2], coords[3]),
                    ),
                    kind,
                    line_no,
                ));
            }
            "net" => {
                if tokens.len() < 2 {
                    return Err(err(line_no, "usage: net <comb|reg|gals> ..."));
                }
                let name = kv(&tokens, "name", line_no)?.to_owned();
                if let Some((_, first)) = nets.iter().find(|(n, _)| n.name == name) {
                    return Err(err(
                        line_no,
                        format!("duplicate net name `{name}` (first declared on line {first})"),
                    ));
                }
                let src = parse_point(kv(&tokens, "src", line_no)?, line_no)?;
                let dst = parse_point(kv(&tokens, "dst", line_no)?, line_no)?;
                let net = match tokens[1] {
                    "comb" => NetSpec::combinational(&name, src, dst),
                    "reg" => {
                        let period: f64 = kv(&tokens, "period", line_no)?
                            .parse()
                            .map_err(|_| err(line_no, "bad period"))?;
                        NetSpec::registered(&name, src, dst, Time::from_ps(period))
                    }
                    "gals" => {
                        let ts: f64 = kv(&tokens, "ts", line_no)?
                            .parse()
                            .map_err(|_| err(line_no, "bad ts"))?;
                        let tt: f64 = kv(&tokens, "tt", line_no)?
                            .parse()
                            .map_err(|_| err(line_no, "bad tt"))?;
                        NetSpec::gals(&name, src, dst, Time::from_ps(ts), Time::from_ps(tt))
                    }
                    other => return Err(err(line_no, format!("unknown net kind `{other}`"))),
                };
                nets.push((net, line_no));
            }
            "reserve" => {
                reserve = match tokens.get(1).copied() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err(err(line_no, "usage: reserve on|off")),
                };
            }
            "capacity" => {
                let directive = match tokens.get(1).copied() {
                    Some("default") => {
                        if tokens.len() != 3 {
                            return Err(err(line_no, "usage: capacity default <n>"));
                        }
                        CapDirective::Default(parse_cap(tokens[2], line_no)?)
                    }
                    Some("edge") => {
                        if tokens.len() != 5 {
                            return Err(err(line_no, "usage: capacity edge <x1,y1> <x2,y2> <n>"));
                        }
                        let a = parse_point(tokens[2], line_no)?;
                        let b = parse_point(tokens[3], line_no)?;
                        if !a.is_adjacent(b) {
                            return Err(err(
                                line_no,
                                format!("capacity edge {a} {b}: endpoints are not adjacent"),
                            ));
                        }
                        CapDirective::Edge(a, b, parse_cap(tokens[4], line_no)?)
                    }
                    Some("rect") => {
                        if tokens.len() != 7 {
                            return Err(err(
                                line_no,
                                "usage: capacity rect <x0> <y0> <x1> <y1> <n>",
                            ));
                        }
                        let coords: Result<Vec<u32>, _> =
                            tokens[2..6].iter().map(|t| t.parse::<u32>()).collect();
                        let c = coords.map_err(|_| {
                            err(line_no, "capacity rect coordinates must be integers")
                        })?;
                        if c[0] > c[2] || c[1] > c[3] {
                            return Err(err(line_no, "capacity rect is inverted (x0>x1 or y0>y1)"));
                        }
                        CapDirective::Rect(c[0], c[1], c[2], c[3], parse_cap(tokens[6], line_no)?)
                    }
                    _ => {
                        return Err(err(
                            line_no,
                            "usage: capacity default <n> | capacity edge <x1,y1> <x2,y2> <n> | \
                             capacity rect <x0> <y0> <x1> <y1> <n>",
                        ))
                    }
                };
                cap_directives.push((directive, line_no));
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    let (dw, dh) = die.ok_or_else(|| err(0, "missing `die` directive"))?;
    let (gw, gh) = grid.ok_or_else(|| err(0, "missing `grid` directive"))?;
    if nets.is_empty() {
        return Err(err(0, "scenario declares no nets"));
    }
    let mut floorplan = Floorplan::new(dw, dh);
    for (rect, kind, line) in blocks {
        if rect.hi().x >= gw || rect.hi().y >= gh {
            return Err(err(line, format!("block {rect} exceeds the {gw}×{gh} grid")));
        }
        floorplan.add_block(rect, kind);
    }
    for (net, line) in &nets {
        for (what, p) in [("src", net.source), ("dst", net.sink)] {
            if p.x >= gw || p.y >= gh {
                return Err(err(
                    *line,
                    format!("net `{}` {what} {p} is off-grid", net.name),
                ));
            }
        }
    }
    // Capacities are validated against the (now known) grid bounds at
    // their declaration lines; within one kind, later directives win.
    let mut capacities = EdgeCapacities::new();
    for (directive, line) in &cap_directives {
        match *directive {
            CapDirective::Default(c) => capacities.set_default(c),
            CapDirective::Edge(a, b, c) => {
                for p in [a, b] {
                    if p.x >= gw || p.y >= gh {
                        return Err(err(*line, format!("capacity edge point {p} is off-grid")));
                    }
                }
                capacities.set_edge(a, b, c);
            }
            CapDirective::Rect(x0, y0, x1, y1, c) => {
                if x1 >= gw || y1 >= gh {
                    return Err(err(
                        *line,
                        format!("capacity rect exceeds the {gw}×{gh} grid"),
                    ));
                }
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        let p = Point::new(x, y);
                        if x + 1 <= x1 {
                            capacities.set_edge(p, Point::new(x + 1, y), c);
                        }
                        if y + 1 <= y1 {
                            capacities.set_edge(p, Point::new(x, y + 1), c);
                        }
                    }
                }
            }
        }
    }
    Ok(Scenario {
        floorplan,
        grid: (gw, gh),
        tech,
        nets: nets.into_iter().map(|(n, _)| n).collect(),
        reserve,
        capacities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_plan::NetKind;

    const GOOD: &str = "\
# demo scenario
die 25mm 25mm
grid 100 100
tech paper

block hard 40 40 60 60        # cpu macro
block regkeepout 10 70 30 90

net comb name=a src=5,5 dst=95,95
net reg  name=b src=5,50 dst=95,50 period=343
net gals name=c src=50,5 dst=50,95 ts=300 tt=400
";

    #[test]
    fn parses_complete_scenario() {
        let s = parse(GOOD).unwrap();
        assert_eq!(s.grid, (100, 100));
        assert_eq!(s.floorplan.blocks().len(), 2);
        assert_eq!(s.nets.len(), 3);
        assert!(s.reserve);
        assert!(matches!(s.nets[0].kind, NetKind::Combinational));
        assert!(matches!(s.nets[1].kind, NetKind::Registered { .. }));
        assert!(matches!(s.nets[2].kind, NetKind::Gals { .. }));
        assert_eq!(s.nets[1].source, Point::new(5, 50));
    }

    #[test]
    fn custom_tech_and_reserve_off() {
        let text = "die 10mm 10mm\ngrid 20 20\ntech r=2.0 c=0.02\nreserve off\nnet comb name=x src=0,0 dst=19,19\n";
        let s = parse(text).unwrap();
        assert!(!s.reserve);
        assert!((s.tech.unit_res().ohms_per_um() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn um_lengths_accepted() {
        let text = "die 5000um 5000um\ngrid 10 10\nnet comb name=x src=0,0 dst=9,9\n";
        let s = parse(text).unwrap();
        assert!((s.floorplan.die_width().mm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "die 25mm 25mm\ngrid 10 10\nblok hard 0 0 1 1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("blok"));
        assert!(e.to_string().starts_with("line 3:"));
    }

    #[test]
    fn missing_required_fields() {
        assert!(parse("grid 10 10\nnet comb name=x src=0,0 dst=9,9\n")
            .unwrap_err()
            .message
            .contains("die"));
        assert!(parse("die 1mm 1mm\nnet comb name=x src=0,0 dst=0,1\n")
            .unwrap_err()
            .message
            .contains("grid"));
        assert!(parse("die 1mm 1mm\ngrid 4 4\n")
            .unwrap_err()
            .message
            .contains("no nets"));
    }

    #[test]
    fn rejects_off_grid_references() {
        let e = parse("die 1mm 1mm\ngrid 4 4\nblock hard 0 0 9 9\nnet comb name=x src=0,0 dst=3,3\n")
            .unwrap_err();
        assert!(e.message.contains("exceeds"));
        let e = parse("die 1mm 1mm\ngrid 4 4\nnet comb name=x src=0,0 dst=9,9\n").unwrap_err();
        assert!(e.message.contains("off-grid"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse("die 25 25\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\n")
            .unwrap_err()
            .message
            .contains("suffix"));
        assert!(parse("die 1mm 1mm\ngrid 4 4\nnet reg name=x src=0,0 dst=3,3\n")
            .unwrap_err()
            .message
            .contains("period"));
        assert!(
            parse("die 1mm 1mm\ngrid 4 4\nnet comb name=x src=zero dst=3,3\n")
                .unwrap_err()
                .message
                .contains("point")
        );
        assert!(parse("die 1mm 1mm\ngrid 4 4\ntech r=-1 c=0.1\nnet comb name=x src=0,0 dst=3,3\n")
            .unwrap_err()
            .message
            .contains("positive"));
    }

    #[test]
    fn rejects_duplicate_net_names() {
        let text = "die 1mm 1mm\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\nnet comb name=x src=1,0 dst=3,2\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("duplicate net name `x`"), "{e}");
        assert!(e.message.contains("line 3"), "{e}");
    }

    #[test]
    fn rejects_zero_grid_at_its_line() {
        let e = parse("die 1mm 1mm\ngrid 0 0\nnet comb name=x src=0,0 dst=0,0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("non-zero"), "{e}");
        let e = parse("die 1mm 1mm\ngrid 4 0\nnet comb name=x src=0,0 dst=3,0\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_zero_area_die_at_its_line() {
        let e = parse("grid 4 4\ndie 0mm 10mm\nnet comb name=x src=0,0 dst=3,3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("positive area"), "{e}");
    }

    #[test]
    fn late_validations_carry_line_numbers() {
        let e = parse("die 1mm 1mm\ngrid 4 4\nblock hard 0 0 9 9\nnet comb name=x src=0,0 dst=3,3\n")
            .unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse("die 1mm 1mm\ngrid 4 4\nnet comb name=x src=0,0 dst=9,9\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn accepts_crlf_line_endings() {
        let lf = "die 1mm 1mm\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\n";
        let crlf = lf.replace('\n', "\r\n");
        let a = parse(lf).unwrap();
        let b = parse(&crlf).unwrap();
        assert_eq!(a.nets[0].name, "x");
        assert_eq!(b.nets[0].name, "x", "no \\r may leak into tokens");
        assert_eq!(a.grid, b.grid);
        assert_eq!(a.nets, b.nets);
        // Error line numbers are preserved under CRLF.
        let bad = "die 1mm 1mm\r\ngrid 4 4\r\nblok hard 0 0 1 1\r\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn accepts_trailing_whitespace() {
        let text = "die 1mm 1mm  \t\ngrid 4 4   \nnet comb name=x src=0,0 dst=3,3\t\t\nreserve off  \n";
        let s = parse(text).unwrap();
        assert_eq!(s.nets.len(), 1);
        assert_eq!(s.nets[0].name, "x");
        assert!(!s.reserve);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# hi\ndie 1mm 1mm # trailing\n\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\n";
        assert!(parse(text).is_ok());
    }

    const CAP_BASE: &str = "die 1mm 1mm\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\n";

    #[test]
    fn scenarios_without_capacities_are_unconstrained() {
        let s = parse(CAP_BASE).unwrap();
        assert!(s.capacities.is_unconstrained());
    }

    #[test]
    fn parses_capacity_directives() {
        let text = format!(
            "{CAP_BASE}capacity default 2\ncapacity edge 0,0 1,0 5\ncapacity rect 1 1 2 2 1\n"
        );
        let s = parse(&text).unwrap();
        assert!(!s.capacities.is_unconstrained());
        assert_eq!(s.capacities.default_cap(), Some(2));
        assert_eq!(s.capacities.cap(Point::new(0, 0), Point::new(1, 0)), Some(5));
        // Rect covers the 4 interior edges of the 2×2 square.
        assert_eq!(s.capacities.cap(Point::new(1, 1), Point::new(2, 1)), Some(1));
        assert_eq!(s.capacities.cap(Point::new(2, 1), Point::new(2, 2)), Some(1));
        // Edges outside any directive fall back to the default.
        assert_eq!(s.capacities.cap(Point::new(2, 3), Point::new(3, 3)), Some(2));
        assert_eq!(s.capacities.override_count(), 5);
    }

    #[test]
    fn capacity_errors_carry_line_numbers() {
        for (suffix, needle) in [
            ("capacity default many\n", "bad capacity"),
            ("capacity default\n", "usage: capacity default"),
            ("capacity edge 0,0 2,0 1\n", "not adjacent"),
            ("capacity edge 0,0 9,0\n", "usage: capacity edge"),
            ("capacity rect 2 2 1 1 1\n", "inverted"),
            ("capacity rect 0 0 9 9 1\n", "exceeds"),
            ("capacity bogus 1\n", "usage: capacity"),
        ] {
            let e = parse(&format!("{CAP_BASE}{suffix}")).unwrap_err();
            assert_eq!(e.line, 4, "{suffix}: {e}");
            assert!(e.message.contains(needle), "{suffix}: {e}");
        }
        // Off-grid edge endpoints are caught at post-validation with the
        // declaring line, even when the grid is declared later.
        let e = parse("die 1mm 1mm\ncapacity edge 5,0 6,0 1\ngrid 4 4\nnet comb name=x src=0,0 dst=3,3\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("off-grid"), "{e}");
    }

    #[test]
    fn later_capacity_directives_win() {
        let text = format!("{CAP_BASE}capacity default 3\ncapacity default 1\ncapacity edge 0,0 1,0 9\ncapacity edge 1,0 0,0 4\n");
        let s = parse(&text).unwrap();
        assert_eq!(s.capacities.default_cap(), Some(1));
        assert_eq!(s.capacities.cap(Point::new(0, 0), Point::new(1, 0)), Some(4));
    }
}
