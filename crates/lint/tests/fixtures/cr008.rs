//! CR008 fixture: raw `std::sync` primitives in a threaded crate.
use std::sync::{Condvar, Mutex, RwLock};
use clockroute_core::lockcheck::{LockRank, OrderedMutex};

pub fn bad() {
    let m = Mutex::new(0u32);
    let r = RwLock::new(0u32);
    let c = Condvar::new();
    drop((m, r, c));
}

// A ranked lock is the sanctioned construction.
pub fn good() -> OrderedMutex<u32> {
    OrderedMutex::new(LockRank::Cache, "fixture.good", 0)
}

// An explicitly justified exception stays quiet.
pub fn suppressed() {
    // crlint-allow: CR008 fixture demonstrates the suppression path
    let m = Mutex::new(0u32);
    drop(m);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scope_may_use_raw_locks() {
        let m = Mutex::new(1u32);
        drop(m);
    }
}
