//! Per-edge channel capacities — the capacitated grid model behind the
//! flow-mode (multicommodity) batch router.
//!
//! A capacity is the number of nets a grid edge's routing channel can
//! carry. The map is *sparse with a default*: every edge is unbounded
//! (`None`) unless a scenario declares a finite default and/or explicit
//! per-edge overrides, so scenarios that never mention capacities are
//! byte-for-byte unchanged. Keys are canonical undirected pairs and the
//! store is a `BTreeMap`, so iteration order — and everything hashed or
//! reported from it — is deterministic.

use crate::GridGraph;
use clockroute_geom::Point;
use std::collections::BTreeMap;

/// Canonical undirected key of a grid edge: `(ax, ay, bx, by)` with the
/// endpoints ordered by `(y, x)` so `(a, b)` and `(b, a)` collide.
pub type EdgeKey = (u32, u32, u32, u32);

/// The canonical [`EdgeKey`] of the undirected edge `{a, b}`.
pub fn edge_key(a: Point, b: Point) -> EdgeKey {
    if (a.y, a.x) <= (b.y, b.x) {
        (a.x, a.y, b.x, b.y)
    } else {
        (b.x, b.y, a.x, a.y)
    }
}

/// Channel capacities for the edges of a [`GridGraph`].
///
/// `cap(a, b)` returns `None` for an unbounded edge; a scenario with no
/// finite entries at all ([`EdgeCapacities::is_unconstrained`]) makes
/// flow mode delegate to the sequential planner unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeCapacities {
    default_cap: Option<u32>,
    overrides: BTreeMap<EdgeKey, u32>,
}

impl EdgeCapacities {
    /// An empty map: every edge unbounded.
    pub fn new() -> EdgeCapacities {
        EdgeCapacities::default()
    }

    /// Sets the capacity every edge gets unless overridden.
    pub fn set_default(&mut self, cap: u32) {
        self.default_cap = Some(cap);
    }

    /// Sets the capacity of the undirected edge `{a, b}`, replacing any
    /// earlier override for the same edge.
    pub fn set_edge(&mut self, a: Point, b: Point, cap: u32) {
        self.overrides.insert(edge_key(a, b), cap);
    }

    /// The default capacity, if one was declared.
    pub fn default_cap(&self) -> Option<u32> {
        self.default_cap
    }

    /// The capacity of edge `{a, b}`: the override if present, else the
    /// default, else `None` (unbounded).
    pub fn cap(&self, a: Point, b: Point) -> Option<u32> {
        self.overrides
            .get(&edge_key(a, b))
            .copied()
            .or(self.default_cap)
    }

    /// `true` when no edge anywhere has a finite capacity — the
    /// structural fast path that keeps flow mode byte-identical to the
    /// sequential planner on every pre-existing scenario.
    pub fn is_unconstrained(&self) -> bool {
        self.default_cap.is_none() && self.overrides.is_empty()
    }

    /// Explicit per-edge overrides, ascending by canonical key.
    pub fn overrides(&self) -> impl Iterator<Item = (EdgeKey, u32)> + '_ {
        self.overrides.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of explicit overrides.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Every *usable* edge of `graph` that carries a finite capacity,
    /// ascending by canonical key. With a finite default this is every
    /// unblocked edge; without one it is the declared overrides that
    /// still exist on the grid.
    pub fn capacitated_edges(&self, graph: &GridGraph) -> Vec<(Point, Point, u32)> {
        let mut out = Vec::new();
        for y in 0..graph.height() {
            for x in 0..graph.width() {
                let p = Point::new(x, y);
                for q in [Point::new(x + 1, y), Point::new(x, y + 1)] {
                    if q.x >= graph.width() || q.y >= graph.height() {
                        continue;
                    }
                    if graph.blockage().is_edge_blocked(p, q) {
                        continue;
                    }
                    if let Some(c) = self.cap(p, q) {
                        out.push((p, q, c));
                    }
                }
            }
        }
        out.sort_by_key(|&(p, q, _)| edge_key(p, q));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;

    #[test]
    fn empty_map_is_unconstrained_and_unbounded() {
        let caps = EdgeCapacities::new();
        assert!(caps.is_unconstrained());
        assert_eq!(caps.cap(Point::new(0, 0), Point::new(1, 0)), None);
        let g = GridGraph::open(4, 4, Length::from_um(125.0));
        assert!(caps.capacitated_edges(&g).is_empty());
    }

    #[test]
    fn edge_key_is_direction_independent() {
        let a = Point::new(3, 1);
        let b = Point::new(3, 2);
        assert_eq!(edge_key(a, b), edge_key(b, a));
        let mut caps = EdgeCapacities::new();
        caps.set_edge(b, a, 2);
        assert_eq!(caps.cap(a, b), Some(2));
        assert!(!caps.is_unconstrained());
    }

    #[test]
    fn override_beats_default() {
        let mut caps = EdgeCapacities::new();
        caps.set_default(3);
        caps.set_edge(Point::new(0, 0), Point::new(1, 0), 7);
        assert_eq!(caps.cap(Point::new(0, 0), Point::new(1, 0)), Some(7));
        assert_eq!(caps.cap(Point::new(0, 1), Point::new(1, 1)), Some(3));
        // Later override replaces the earlier one.
        caps.set_edge(Point::new(1, 0), Point::new(0, 0), 1);
        assert_eq!(caps.cap(Point::new(0, 0), Point::new(1, 0)), Some(1));
        assert_eq!(caps.override_count(), 1);
    }

    #[test]
    fn capacitated_edges_cover_the_grid_under_a_default() {
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let g = GridGraph::open(3, 2, Length::from_um(125.0));
        // 2·(3−1) horizontal + 3·(2−1) vertical = 7 edges.
        let edges = caps.capacitated_edges(&g);
        assert_eq!(edges.len(), 7);
        assert!(edges.iter().all(|&(_, _, c)| c == 1));
        // Sorted ascending by canonical key.
        let keys: Vec<_> = edges.iter().map(|&(p, q, _)| edge_key(p, q)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn capacitated_edges_skip_blocked_edges() {
        let mut caps = EdgeCapacities::new();
        caps.set_default(2);
        let mut g = GridGraph::open(3, 2, Length::from_um(125.0));
        g.blockage_mut()
            .block_edge(Point::new(0, 0), Point::new(1, 0));
        assert_eq!(caps.capacitated_edges(&g).len(), 6);
    }
}
