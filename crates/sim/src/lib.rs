//! Protocol-level discrete-event simulation of synthesized routes.
//!
//! The routing algorithms in `clockroute-core` *claim* latencies —
//! `T_φ·(p+1)` for a registered path, `T_s·(Reg_s+1) + T_t·(Reg_t+1)` for
//! a two-domain MCFIFO path. This crate builds the actual hardware
//! protocol out of cycle-level models and measures those latencies (and
//! throughputs, and back-pressure behaviour) by simulation:
//!
//! * [`RegisterPipeline`] — the single-clock registered route of §III;
//! * [`RelayChain`] — Carloni-style relay stations (main + auxiliary
//!   register, one-cycle `Stop` propagation, Fig. 8);
//! * [`McFifo`] — the Chelcea–Nowick mixed-clock FIFO (put/get interfaces
//!   on unrelated clocks, `full`/`empty` flags, Fig. 7);
//! * [`GalsLink`] — the full composition of Fig. 9: source-domain relay
//!   chain → MCFIFO → sink-domain relay chain.
//!
//! The integration tests in the workspace root drive these simulators
//! with the registers/relays placed by RBP and GALS and assert that the
//! simulated first-token latency matches the analytic formulas.
//!
//! # Example
//!
//! ```
//! use clockroute_sim::{RegisterPipeline, StallPattern};
//! use clockroute_geom::units::Time;
//!
//! // 3 registers at a 300 ps clock: first token arrives after 4 cycles.
//! let report = RegisterPipeline::new(3, Time::from_ps(300.0))
//!     .simulate(100, StallPattern::None);
//! assert_eq!(report.first_arrival, Time::from_ps(1200.0));
//! // 100 tokens in 103 cycles: pipeline fill is the only overhead.
//! assert!(report.throughput_tokens_per_cycle > 0.97);
//! ```

pub mod gals_link;
pub mod mcfifo;
pub mod multicycle;
pub mod pipeline;
pub mod relay;
pub mod wavepipe;

pub use gals_link::{GalsLink, GalsLinkReport};
pub use mcfifo::McFifo;
pub use multicycle::{MultiCycleChannel, MultiCycleReport};
pub use pipeline::{PipelineReport, RegisterPipeline, StallPattern};
pub use relay::{RelayChain, RelayChainReport};
pub use wavepipe::{WavePipe, WavePipeReport};
