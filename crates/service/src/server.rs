//! The routing service: request dispatch, cache orchestration, and the
//! stdio / TCP front-ends.
//!
//! This is the **only** module in the crate that spawns threads (crlint
//! CR004 enforces that); everything request-scoped funnels through
//! [`Service::handle_line`], which is plain sequential code so the
//! stdio and TCP front-ends — and the tests — exercise exactly the same
//! path.
//!
//! The response contract (asserted by the crate's property tests): for
//! a given scenario, the `route` response is byte-identical whether it
//! was computed cold, answered from the exact-match cache, or
//! warm-started from a near-miss entry — and identical to what a
//! freshly spawned `crplan --quiet` prints for the same file.

use crate::admission::{Admission, RequestTimer};
use crate::cache::{ResultCache, Solved, WarmPrior};
use crate::keys::{base_key, scenario_key};
use crate::protocol::{self, Op, Request};
use clockroute_cli::{report, scenario};
use clockroute_core::{MetricsRecorder, Telemetry};
use clockroute_elmore::GateLibrary;
use clockroute_grid::GridGraph;
use clockroute_plan::{Planner, SharedTelemetry, TracedPlan};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// Tunables for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per solve (plan output is identical for any
    /// value).
    pub jobs: usize,
    /// Result cache capacity in scenarios (0 disables caching).
    pub cache_cap: usize,
    /// Per-net search deadline in milliseconds (`None` = unlimited).
    /// Server-global so that the budget — which shapes degraded
    /// results — is part of the cache key's implicit context.
    pub budget_ms: Option<u64>,
    /// Largest accepted scenario, in nets.
    pub max_nets: usize,
    /// Concurrent solve limit; excess requests get `busy`.
    pub max_inflight: usize,
    /// Whether near-miss warm-starting is enabled.
    pub warm: bool,
    /// Largest blockage delta (in grid points) eligible for
    /// warm-starting; larger deltas solve cold.
    pub warm_max_dirty: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: 1,
            cache_cap: 64,
            budget_ms: None,
            max_nets: 512,
            max_inflight: 4,
            warm: true,
            warm_max_dirty: 4096,
        }
    }
}

/// How a `route` request was answered — reported in the response's
/// `cache` field and mirrored by the `service.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePath {
    Hit,
    Warm,
    Cold,
}

impl CachePath {
    fn label(self) -> &'static str {
        match self {
            CachePath::Hit => "hit",
            CachePath::Warm => "warm",
            CachePath::Cold => "cold",
        }
    }
}

/// A long-running routing service. Shared-state layout: the cache
/// behind one mutex (held only for lookups and inserts, never across a
/// solve), admission as lock-free atomics, telemetry in a shared
/// recorder. `&Service` is `Sync`, so one instance serves any number
/// of connection threads.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    admission: Admission,
    metrics: Arc<MetricsRecorder>,
    shutdown: AtomicBool,
}

impl Service {
    /// A fresh service with an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        let admission = Admission::new(config.max_inflight, config.max_nets, config.budget_ms);
        Service {
            cache: Mutex::new(ResultCache::new(config.cache_cap)),
            admission,
            metrics: Arc::new(MetricsRecorder::new()),
            shutdown: AtomicBool::new(false),
            config,
        }
    }

    /// The aggregated telemetry recorder (service counters plus every
    /// solve's planner counters, replayed shard by shard).
    pub fn metrics(&self) -> &MetricsRecorder {
        &self.metrics
    }

    /// `true` once a `shutdown` request has been accepted.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn cache(&self) -> MutexGuard<'_, ResultCache> {
        // A solve panic can never poison this mutex (solves run outside
        // the critical section, under catch_unwind), but recover anyway
        // rather than add an unwrap to a crate that promises to stay up.
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Handles one request line and returns the one-line JSON response.
    pub fn handle_line(&self, line: &str) -> String {
        self.metrics.counter("service.requests", 1);
        let request = match protocol::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.counter("service.malformed", 1);
                return protocol::malformed(&e);
            }
        };
        let Request { id, op } = request;
        let id = id.as_deref();
        match op {
            Op::Ping => protocol::pong(id),
            Op::Stats => {
                self.metrics
                    .gauge_max("service.cache.len", self.cache().len() as u64);
                protocol::stats(id, &self.metrics.counters(), &self.metrics.gauges())
            }
            Op::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                protocol::bye(id)
            }
            Op::Route { scenario } => self.route(id, &scenario),
        }
    }

    fn route(&self, id: Option<&str>, text: &str) -> String {
        let timer = RequestTimer::start();
        let parsed = match scenario::parse(text) {
            Ok(s) => s,
            Err(e) => {
                self.metrics.counter("service.errors", 1);
                return protocol::error(id, &format!("scenario: {e}"));
            }
        };
        let permit = match self.admission.try_admit(parsed.nets.len()) {
            Ok(p) => p,
            Err(rejection) => {
                self.metrics.counter("service.rejects", 1);
                return protocol::busy(id, &rejection.reason());
            }
        };

        let key = scenario_key(&parsed);
        let base = base_key(&parsed);
        let (solved, path) = {
            let mut cache = self.cache();
            match cache.lookup(key, &parsed) {
                Some(solved) => (Some(solved), CachePath::Hit),
                None => {
                    let prior = if self.config.warm {
                        cache.find_warm(base, &parsed, self.config.warm_max_dirty)
                    } else {
                        None
                    };
                    let path = if prior.is_some() {
                        CachePath::Warm
                    } else {
                        CachePath::Cold
                    };
                    drop(cache); // never hold the lock across a solve
                    match self.solve(&parsed, prior) {
                        Ok(traced) => (Some(self.render(traced)), path),
                        Err(message) => {
                            self.metrics.counter("service.errors", 1);
                            return protocol::error(id, &message);
                        }
                    }
                }
            }
        };
        drop(permit);
        // `solved` is always `Some` here; written this way so the error
        // return above can live inside the match.
        let Some(solved) = solved else {
            return protocol::error(id, "internal: no result");
        };

        match path {
            CachePath::Hit => self.metrics.counter("service.hits", 1),
            CachePath::Warm => {
                self.metrics.counter("service.misses", 1);
                self.metrics.counter("service.warm_reuse", 1);
            }
            CachePath::Cold => self.metrics.counter("service.misses", 1),
        }
        if path != CachePath::Hit {
            let mut cache = self.cache();
            let before = cache.evictions();
            cache.insert(key, base, parsed, solved.clone());
            let evicted = cache.evictions() - before;
            let len = cache.len() as u64;
            drop(cache);
            if evicted > 0 {
                self.metrics.counter("service.evictions", evicted);
            }
            self.metrics.gauge_max("service.cache.len", len);
        }
        self.metrics
            .span_ns("service.request.ns", timer.elapsed_ns());
        protocol::route_ok(
            id,
            path.label(),
            solved.routed,
            solved.failed,
            solved.degraded,
            &solved.report,
        )
    }

    /// Runs the planner (cold or warm-started) under `catch_unwind`, so
    /// a panicking solve (e.g. an armed failpoint) costs one request,
    /// not the service.
    fn solve(
        &self,
        parsed: &scenario::Scenario,
        prior: Option<WarmPrior>,
    ) -> Result<TracedPlan, String> {
        let shard = Arc::new(MetricsRecorder::new());
        let shard_for_solve = shard.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (gw, gh) = parsed.grid;
            let graph = GridGraph::from_floorplan(&parsed.floorplan, gw, gh);
            let planner = Planner::new(graph, parsed.tech, GateLibrary::paper_library())
                .reserve_routes(parsed.reserve)
                .budget(self.admission.budget())
                .jobs(self.config.jobs)
                .telemetry(SharedTelemetry::new(shard_for_solve));
            match prior {
                Some(w) => planner.plan_warm(&parsed.nets, &w.traced, &w.dirty),
                None => planner.plan_traced(&parsed.nets),
            }
        }));
        shard.replay_into(&*self.metrics);
        outcome.map_err(|panic| {
            let what = panic
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            format!("internal: solve panicked: {what}")
        })
    }

    fn render(&self, traced: TracedPlan) -> Solved {
        let plan = traced.plan();
        Solved {
            report: report::plan_report(plan),
            routed: plan.routed().count(),
            failed: plan.failed().count(),
            degraded: plan.degraded().count(),
            traced,
        }
    }

    /// Serves one line-oriented connection (stdio or a TCP stream)
    /// until EOF or shutdown. Blank lines are ignored; every request
    /// line gets exactly one response line, flushed immediately.
    ///
    /// # Errors
    ///
    /// Propagates read/write errors on the underlying streams.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if self.is_shut_down() {
                break;
            }
        }
        Ok(())
    }

    /// Accept loop: one thread per connection, non-blocking accept so a
    /// `shutdown` request on any connection stops the listener promptly.
    /// Returns once shutdown is observed and all connections finish.
    ///
    /// # Errors
    ///
    /// Propagates fatal `accept` errors (per-connection I/O errors only
    /// end that connection).
    pub fn serve_listener(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        thread::scope(|scope| {
            loop {
                if self.is_shut_down() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        scope.spawn(move || {
                            if let Ok(write_half) = stream.try_clone() {
                                // Connection errors end the connection,
                                // never the service.
                                let _ = self.serve(BufReader::new(stream), write_half);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_core::telemetry::validate_json;

    const SCENARIO: &str =
        "die 10mm 10mm\\ngrid 20 20\\nblock hard 8 8 11 11\\nnet comb name=a src=0,0 dst=19,19\\nnet reg name=b src=0,10 dst=19,10 period=2000\\n";

    fn route_line(id: &str, scenario: &str) -> String {
        format!("{{\"id\":\"{id}\",\"op\":\"route\",\"scenario\":\"{scenario}\"}}")
    }

    #[test]
    fn cold_then_hit_same_bytes() {
        let service = Service::new(ServiceConfig::default());
        let cold = service.handle_line(&route_line("c", SCENARIO));
        let hit = service.handle_line(&route_line("c", SCENARIO));
        assert!(cold.contains("\"cache\":\"cold\""), "{cold}");
        assert!(hit.contains("\"cache\":\"hit\""), "{hit}");
        assert_eq!(
            cold.replace("\"cache\":\"cold\"", ""),
            hit.replace("\"cache\":\"hit\"", ""),
            "identical apart from the cache label"
        );
        assert_eq!(service.metrics().counter_value("service.hits"), 1);
        assert_eq!(service.metrics().counter_value("service.misses"), 1);
    }

    #[test]
    fn whitespace_variant_is_a_cache_hit() {
        let service = Service::new(ServiceConfig::default());
        let a = service.handle_line(&route_line("a", SCENARIO));
        let noisy = SCENARIO.replace("\\n", "   # note\\r\\n");
        let b = service.handle_line(&route_line("a", &noisy));
        assert!(a.contains("\"cache\":\"cold\""));
        assert!(b.contains("\"cache\":\"hit\""), "{b}");
    }

    #[test]
    fn malformed_and_bad_scenarios_get_error_responses() {
        let service = Service::new(ServiceConfig::default());
        let r = service.handle_line("{oops");
        assert!(r.contains("\"status\":\"malformed\""), "{r}");
        validate_json(&r).unwrap();
        let r = service.handle_line(&route_line("x", "die 1mm 1mm\\nnope\\n"));
        assert!(r.contains("\"status\":\"error\""), "{r}");
        assert!(r.contains("scenario: line 2"), "{r}");
        assert_eq!(service.metrics().counter_value("service.malformed"), 1);
        assert_eq!(service.metrics().counter_value("service.errors"), 1);
    }

    #[test]
    fn net_cap_rejects_with_busy() {
        let config = ServiceConfig {
            max_nets: 1,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        let r = service.handle_line(&route_line("big", SCENARIO));
        assert!(r.contains("\"status\":\"busy\""), "{r}");
        assert!(r.contains("2 nets, limit 1"), "{r}");
        assert_eq!(service.metrics().counter_value("service.rejects"), 1);
    }

    #[test]
    fn control_requests_work() {
        let service = Service::new(ServiceConfig::default());
        assert!(service.handle_line("{\"id\":\"p\",\"op\":\"ping\"}").contains("\"pong\":true"));
        let stats = service.handle_line("{\"op\":\"stats\"}");
        assert!(stats.contains("service.requests"), "{stats}");
        validate_json(&stats).unwrap();
        assert!(!service.is_shut_down());
        let bye = service.handle_line("{\"op\":\"shutdown\"}");
        assert!(bye.contains("\"bye\":true"));
        assert!(service.is_shut_down());
    }

    #[test]
    fn serve_answers_each_line_and_stops_on_shutdown() {
        let service = Service::new(ServiceConfig::default());
        let input = "{\"op\":\"ping\"}\n\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n";
        let mut out = Vec::new();
        service.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "post-shutdown line unanswered: {text}");
        assert!(lines[0].contains("pong"));
        assert!(lines[1].contains("bye"));
    }
}
