// Fixture: CR003 — wall-clock reads outside the budget/telemetry seams.
use std::time::{Instant, SystemTime};

fn race_the_clock() -> bool {
    // BAD (line 6): Instant::now() in deterministic code.
    let t0 = Instant::now();
    // BAD (line 8): SystemTime::now() too.
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos() > 0
}

#[test]
fn timing_a_test_is_fine() {
    // GOOD: test code may read clocks.
    let t0 = Instant::now();
    assert!(t0.elapsed().as_nanos() < u128::MAX);
}
