//! `crplan` — command-line interconnect planner.
//!
//! ```text
//! usage: crplan <scenario.cr> [--render] [--quiet] [--budget-ms <n>] [--strict] [--jobs <n>]
//! ```
//!
//! Reads a scenario file (see [`clockroute_cli::scenario`] for the
//! format), plans every net with the optimal fast-path / RBP / GALS
//! searches, and prints a per-net report plus aggregate statistics.
//! `--render` additionally draws each routed net as ASCII art.
//!
//! `--budget-ms <n>` caps each per-net search attempt at `n` milliseconds
//! of wall clock; nets that blow the budget fall down the degradation
//! ladder (coarsened grid, then an unbuffered wire) instead of hanging
//! the run. Degraded nets are flagged in the report and counted in the
//! summary.
//!
//! `--jobs <n>` sets the number of routing worker threads (default: the
//! machine's available parallelism). The plan — and therefore the entire
//! report — is bit-identical for every job count; parallelism only
//! changes wall-clock time.
//!
//! Exit codes: `0` all nets routed (degraded nets allowed unless
//! `--strict`), `1` any net failed — or, under `--strict`, was degraded —
//! `2` usage or scenario errors.

use clockroute_cli::scenario;
use clockroute_core::{failpoint, SearchBudget};
use clockroute_elmore::GateLibrary;
use clockroute_grid::{render_grid, GridGraph, RenderOptions};
use clockroute_plan::Planner;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: crplan <scenario.cr> [--render] [--quiet] [--budget-ms <n>] [--strict] [--jobs <n>]";

struct Options {
    path: String,
    render: bool,
    quiet: bool,
    strict: bool,
    budget: SearchBudget,
    jobs: usize,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut render = false;
    let mut quiet = false;
    let mut strict = false;
    let mut budget = SearchBudget::unlimited();
    let mut jobs = default_jobs();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--render" => render = true,
            "--quiet" => quiet = true,
            "--strict" => strict = true,
            "--budget-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "--budget-ms needs an integer millisecond count")?;
                budget = budget.with_deadline(Duration::from_millis(ms));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer")?;
                if jobs == 0 {
                    return Err("--jobs needs a positive integer".to_owned());
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err("more than one scenario file given".to_owned());
                }
            }
        }
    }
    Ok(Options {
        path: path.ok_or("missing scenario file")?,
        render,
        quiet,
        strict,
        budget,
        jobs,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = failpoint::arm_from_env() {
        eprintln!("error: bad CLOCKROUTE_FAILPOINTS: {e}");
        return ExitCode::from(2);
    }

    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let scenario = match scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };

    let (gw, gh) = scenario.grid;
    let graph = GridGraph::from_floorplan(&scenario.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    if !opts.quiet {
        let (px, py) = scenario.floorplan.pitch(gw, gh);
        println!(
            "# die {:.1}×{:.1} mm, grid {gw}×{gh} (pitch {:.3}×{:.3} mm), {} blocks, {} nets",
            scenario.floorplan.die_width().mm(),
            scenario.floorplan.die_height().mm(),
            px.mm(),
            py.mm(),
            scenario.floorplan.blocks().len(),
            scenario.nets.len()
        );
    }

    let planner = Planner::new(graph.clone(), scenario.tech, lib.clone())
        .reserve_routes(scenario.reserve)
        .budget(opts.budget)
        .jobs(opts.jobs);
    let plan = planner.plan(&scenario.nets);

    for result in plan.results() {
        println!("{result}");
        if opts.render {
            if let Some(path) = &result.path {
                let mut labels = vec![(path.source(), 'S'), (path.sink(), 'T')];
                for (pt, gate) in path.gates() {
                    if pt != path.source() && pt != path.sink() {
                        let c = match lib.gate(gate).kind() {
                            clockroute_elmore::GateKind::Buffer => 'B',
                            clockroute_elmore::GateKind::McFifo => 'F',
                            _ => 'R',
                        };
                        labels.push((pt, c));
                    }
                }
                println!(
                    "{}",
                    render_grid(
                        &graph,
                        Some(&path.grid_path()),
                        &labels,
                        &RenderOptions::default()
                    )
                );
            }
        }
    }

    let failed = plan.failed().count();
    let degraded = plan.degraded().count();
    if !opts.quiet {
        println!(
            "# routed {}/{} nets ({} degraded), {:.1} mm total wire, {} synchronizers, max depth {} cycles",
            plan.routed().count(),
            plan.results().len(),
            degraded,
            plan.total_wirelength().mm(),
            plan.total_synchronizers(),
            plan.max_cycles().unwrap_or(0)
        );
    }
    if failed > 0 || (opts.strict && degraded > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
