//! Deterministic fault injection for resilience testing.
//!
//! A *failpoint* is a named site in the search code (e.g. `rbp::pop`)
//! that can be armed to misbehave on a precise hit count: force a budget
//! exhaustion, a panic, or a `NoFeasibleRoute`, at exactly the N-th time
//! the site is reached. This lets tests drive every rung of the planner's
//! degradation ladder without relying on timing or workload size.
//!
//! The registry is **thread-local**, so armed points never leak across
//! concurrently running tests. Code that fans work out to worker threads
//! (the parallel batch planner) inherits failpoints explicitly: it
//! snapshots the spawning thread's registry with [`capture`] and each
//! worker [`install`]s the snapshot before every unit of work, so
//! `CLOCKROUTE_FAILPOINTS` armed in a binary still fires deterministically
//! inside workers. Because the snapshot is re-installed per unit of work,
//! hit counts restart with each unit — `@N` means "the N-th hit *within
//! one net*" under the parallel planner, versus a global count on the
//! sequential path. Arming is either programmatic ([`arm`]) or
//! environment-driven ([`arm_from_env`]) for end-to-end tests that
//! exercise the `crplan` binary:
//!
//! ```text
//! CLOCKROUTE_FAILPOINTS="rbp::pop=budget@100,plan::net=panic@2+"
//! ```
//!
//! `@N` fires exactly once, on the N-th hit; `@N+` fires on the N-th hit
//! and every hit after it (sticky). Actions: `panic`, `budget`,
//! `noroute`, `ioerr`, `short`.
//!
//! The I/O actions (`ioerr`, `short`) exist for the service layer's
//! fault sites (`serve::read`, `serve::write`, `serve::persist`,
//! `serve::fsync`): `ioerr` makes the site behave as if the underlying
//! syscall returned an `io::Error`, `short` as if it transferred fewer
//! bytes than asked (a torn read or write). Search sites ignore them.
//!
//! When nothing is armed the per-hit cost is a thread-local boolean load,
//! so production callers pay essentially nothing.

use std::cell::RefCell;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site (exercises panic isolation).
    Panic,
    /// Behave as if the search budget were exhausted at this pop.
    BudgetExhausted,
    /// Behave as if the search proved infeasibility.
    NoRoute,
    /// At an I/O site: behave as if the operation failed with an
    /// `io::Error` (injected, deterministic).
    IoError,
    /// At an I/O site: transfer fewer bytes than requested — a short
    /// read (torn frame) or a short write (torn record).
    ShortIo,
}

#[derive(Debug, Clone)]
struct Armed {
    site: String,
    action: FailAction,
    /// 1-based hit count on which the action fires.
    at: u64,
    /// Fire on every hit ≥ `at` instead of only the `at`-th.
    sticky: bool,
    hits: u64,
}

thread_local! {
    static REGISTRY: RefCell<Vec<Armed>> = const { RefCell::new(Vec::new()) };
}

/// Arms `site` to perform `action` on its `at`-th hit (1-based), exactly
/// once. Several points may be armed at the same site.
pub fn arm(site: &str, action: FailAction, at: u64) {
    arm_with(site, action, at, false);
}

/// Arms `site` to perform `action` on every hit from the `at`-th onwards.
pub fn arm_sticky(site: &str, action: FailAction, at: u64) {
    arm_with(site, action, at, true);
}

fn arm_with(site: &str, action: FailAction, at: u64, sticky: bool) {
    REGISTRY.with(|r| {
        r.borrow_mut().push(Armed {
            site: site.to_owned(),
            action,
            at: at.max(1),
            sticky,
            hits: 0,
        });
    });
}

/// Disarms every failpoint on this thread.
pub fn disarm_all() {
    REGISTRY.with(|r| r.borrow_mut().clear());
}

/// A snapshot of one thread's armed failpoints, for handing to workers.
///
/// Obtained with [`capture`] on the arming thread; a worker [`install`]s
/// it to make the same failpoints (including their current hit counts)
/// active on its own thread. The set is immutable and cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct ArmedSet {
    armed: Vec<Armed>,
}

impl ArmedSet {
    /// `true` when nothing is armed (install still clears the registry).
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }
}

/// Snapshots the calling thread's registry, hit counts included.
pub fn capture() -> ArmedSet {
    REGISTRY.with(|r| ArmedSet {
        armed: r.borrow().clone(),
    })
}

/// Replaces the calling thread's registry with a snapshot.
///
/// Workers call this before each unit of work so hit counting restarts
/// from the snapshot's state every time, independent of how work was
/// distributed across threads.
pub fn install(set: &ArmedSet) {
    REGISTRY.with(|r| {
        *r.borrow_mut() = set.armed.clone();
    });
}

/// Records a hit at `site` and returns the action to perform, if any.
///
/// Search code calls this at instrumented sites; library users never
/// need to.
pub fn hit(site: &str) -> Option<FailAction> {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        if reg.is_empty() {
            return None;
        }
        let mut fired = None;
        for armed in reg.iter_mut().filter(|a| a.site == site) {
            armed.hits += 1;
            let fires = if armed.sticky {
                armed.hits >= armed.at
            } else {
                armed.hits == armed.at
            };
            if fires && fired.is_none() {
                fired = Some(armed.action);
            }
        }
        fired
    })
}

/// Parses one `site=action@N[+]` clause.
fn parse_clause(clause: &str) -> Result<(String, FailAction, u64, bool), String> {
    let (site, rest) = clause
        .split_once('=')
        .ok_or_else(|| format!("bad failpoint clause `{clause}` (expected site=action@N)"))?;
    let (action, count) = rest
        .split_once('@')
        .ok_or_else(|| format!("failpoint `{clause}` is missing `@N`"))?;
    let action = match action {
        "panic" => FailAction::Panic,
        "budget" => FailAction::BudgetExhausted,
        "noroute" => FailAction::NoRoute,
        "ioerr" => FailAction::IoError,
        "short" => FailAction::ShortIo,
        other => return Err(format!("unknown failpoint action `{other}`")),
    };
    let (count, sticky) = match count.strip_suffix('+') {
        Some(c) => (c, true),
        None => (count, false),
    };
    let at: u64 = count
        .parse()
        .map_err(|_| format!("bad failpoint count `{count}`"))?;
    Ok((site.trim().to_owned(), action, at, sticky))
}

/// Arms failpoints from a comma-separated spec string (the format of the
/// `CLOCKROUTE_FAILPOINTS` environment variable).
///
/// # Errors
///
/// Returns a description of the first malformed clause; earlier valid
/// clauses stay armed.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
        let (site, action, at, sticky) = parse_clause(clause.trim())?;
        arm_with(&site, action, at, sticky);
    }
    Ok(())
}

/// Arms failpoints from `CLOCKROUTE_FAILPOINTS`, if set. Intended for
/// binaries; does nothing when the variable is absent.
///
/// # Errors
///
/// Propagates [`arm_from_spec`] errors.
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var("CLOCKROUTE_FAILPOINTS") {
        Ok(spec) => arm_from_spec(&spec),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_on_nth_hit() {
        disarm_all();
        arm("test::a", FailAction::NoRoute, 3);
        assert_eq!(hit("test::a"), None);
        assert_eq!(hit("test::a"), None);
        assert_eq!(hit("test::a"), Some(FailAction::NoRoute));
        assert_eq!(hit("test::a"), None); // one-shot
        disarm_all();
    }

    #[test]
    fn sticky_fires_from_nth_hit_onwards() {
        disarm_all();
        arm_sticky("test::b", FailAction::Panic, 2);
        assert_eq!(hit("test::b"), None);
        assert_eq!(hit("test::b"), Some(FailAction::Panic));
        assert_eq!(hit("test::b"), Some(FailAction::Panic));
        disarm_all();
    }

    #[test]
    fn sites_are_independent() {
        disarm_all();
        arm("test::c", FailAction::BudgetExhausted, 1);
        assert_eq!(hit("test::other"), None);
        assert_eq!(hit("test::c"), Some(FailAction::BudgetExhausted));
        disarm_all();
    }

    #[test]
    fn unarmed_is_silent() {
        disarm_all();
        assert_eq!(hit("test::anything"), None);
    }

    #[test]
    fn capture_and_install_carry_failpoints_across_threads() {
        disarm_all();
        arm("test::xthread", FailAction::NoRoute, 2);
        assert_eq!(hit("test::xthread"), None); // consume hit 1
        let snapshot = capture();
        let fired = std::thread::spawn(move || {
            // Fresh thread: nothing armed until the snapshot is installed.
            assert_eq!(hit("test::xthread"), None);
            install(&snapshot);
            // Hit count was captured at 1, so the next hit is the 2nd.
            let first = hit("test::xthread");
            // Re-install resets to the captured count; fires again.
            install(&snapshot);
            let second = hit("test::xthread");
            (first, second)
        })
        .join()
        .unwrap();
        assert_eq!(fired, (Some(FailAction::NoRoute), Some(FailAction::NoRoute)));
        disarm_all();
    }

    #[test]
    fn install_replaces_existing_registry() {
        disarm_all();
        let empty = capture();
        assert!(empty.is_empty());
        arm("test::replaced", FailAction::Panic, 1);
        install(&empty);
        assert_eq!(hit("test::replaced"), None);
        disarm_all();
    }

    #[test]
    fn spec_parsing_round_trip() {
        disarm_all();
        arm_from_spec("test::d=budget@2, test::e=panic@1+").unwrap();
        assert_eq!(hit("test::d"), None);
        assert_eq!(hit("test::d"), Some(FailAction::BudgetExhausted));
        assert_eq!(hit("test::e"), Some(FailAction::Panic));
        assert_eq!(hit("test::e"), Some(FailAction::Panic));
        disarm_all();
    }

    #[test]
    fn spec_errors_are_descriptive() {
        assert!(arm_from_spec("nonsense").unwrap_err().contains("clause"));
        assert!(arm_from_spec("a=panic").unwrap_err().contains("@N"));
        assert!(arm_from_spec("a=explode@1").unwrap_err().contains("action"));
        assert!(arm_from_spec("a=panic@zero").unwrap_err().contains("count"));
        disarm_all();
    }

    #[test]
    fn io_actions_parse_and_fire() {
        disarm_all();
        arm_from_spec("serve::read=short@1,serve::persist=ioerr@2").unwrap();
        assert_eq!(hit("serve::read"), Some(FailAction::ShortIo));
        assert_eq!(hit("serve::persist"), None);
        assert_eq!(hit("serve::persist"), Some(FailAction::IoError));
        disarm_all();
    }

    #[test]
    fn empty_spec_is_ok() {
        assert!(arm_from_spec("").is_ok());
        assert!(arm_from_spec(" , ").is_ok());
    }
}
