//! End-to-end and property tests for the routing service.
//!
//! The property tests pin the crate's central contract: a `route`
//! response carries the same bytes whether it was solved cold, answered
//! from the exact-match cache, warm-started from a near-miss entry, or
//! squeezed through a one-entry cache that evicts on every insert. The
//! binary tests drive the real `crserve` process over stdio and TCP and
//! check it survives malformed requests, admission rejections and armed
//! failpoints without dying.

use clockroute_cli::{report, scenario};
use clockroute_core::telemetry::{validate_json, validate_jsonl};
use clockroute_core::SearchBudget;
use clockroute_elmore::GateLibrary;
use clockroute_grid::GridGraph;
use clockroute_plan::Planner;
use clockroute_service::protocol::{self, JsonValue};
use clockroute_service::{Service, ServiceConfig};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// A 16×16 scenario whose only variable is the position of one 3×3
/// hard block; terminals sit on x=0 / x=15 columns the block (x ∈
/// 1..=13) never reaches, so every variant is solvable.
fn scenario_text(bx: u32, by: u32) -> String {
    format!(
        "die 8mm 8mm\ngrid 16 16\nblock hard {bx} {by} {} {}\n\
         net comb name=a src=0,0 dst=15,15\nnet reg name=b src=0,8 dst=15,8 period=2000\n",
        bx + 2,
        by + 2
    )
}

fn route_line(id: &str, scenario_text: &str) -> String {
    format!(
        "{{\"id\":{},\"op\":\"route\",\"scenario\":{}}}",
        clockroute_core::telemetry::json_string(id),
        clockroute_core::telemetry::json_string(scenario_text),
    )
}

/// Replaces the cache label so hit/warm/cold/coalesced responses can
/// be compared for byte-identity of everything else.
fn normalize(response: &str) -> String {
    response
        .replace("\"cache\":\"hit\"", "\"cache\":\"cold\"")
        .replace("\"cache\":\"warm\"", "\"cache\":\"cold\"")
        .replace("\"cache\":\"coalesced\"", "\"cache\":\"cold\"")
}

/// The response a fresh service (empty cache) gives — the cold
/// reference every other path must reproduce.
fn cold_reference(text: &str) -> String {
    let service = Service::new(ServiceConfig::default());
    service.handle_line(&route_line("x", text))
}

/// What `crplan --quiet` prints for this scenario, computed through the
/// same library renderer the CLI uses (the CLI e2e suite pins that
/// equivalence against the real binary).
fn library_report(text: &str) -> String {
    let s = scenario::parse(text).expect("test scenario parses");
    let (gw, gh) = s.grid;
    let graph = GridGraph::from_floorplan(&s.floorplan, gw, gh);
    let plan = Planner::new(graph, s.tech, GateLibrary::paper_library())
        .reserve_routes(s.reserve)
        .budget(SearchBudget::unlimited())
        .jobs(1)
        .plan(&s.nets);
    report::plan_report(&plan)
}

fn report_field(response: &str) -> String {
    match protocol::parse_flat(response)
        .expect("route response is flat JSON")
        .remove("report")
    {
        Some(JsonValue::Str(s)) => s,
        other => panic!("no report field in {response}: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Satellite (c), part 1: cache-hit and warm-start responses are
    /// byte-identical to a cold solve of the same scenario — for every
    /// shard count (sharding must only move locks, never bytes).
    #[test]
    fn hit_and_warm_responses_match_cold(bx in 1u32..13, by in 1u32..13, dx in 1u32..13) {
        // Force a real block move (the vendored proptest has no
        // prop_assume); dx stays inside 1..=13 so the block fits.
        let dx = if dx == bx { bx % 12 + 1 } else { dx };
        let a = scenario_text(bx, by);
        let b = scenario_text(dx, by); // same base, moved block
        for shards in [1usize, 2, 8] {
            let service = Service::new(ServiceConfig { shards, ..ServiceConfig::default() });

            let cold_a = service.handle_line(&route_line("x", &a));
            prop_assert!(cold_a.contains("\"cache\":\"cold\""), "{}", cold_a);

            // Exact repeat, plus a comment/CRLF-noised variant: both hits.
            let hit = service.handle_line(&route_line("x", &a));
            prop_assert!(hit.contains("\"cache\":\"hit\""), "{}", hit);
            prop_assert_eq!(normalize(&cold_a), normalize(&hit));
            let noisy = a.replace('\n', "  # c\r\n");
            let noisy_hit = service.handle_line(&route_line("x", &noisy));
            prop_assert!(noisy_hit.contains("\"cache\":\"hit\""), "{}", noisy_hit);
            prop_assert_eq!(normalize(&cold_a), normalize(&noisy_hit));

            // Near miss: warm-started (the cross-shard scan must find
            // A's entry whichever shard holds it), yet byte-identical
            // to B's cold solve.
            let warm = service.handle_line(&route_line("x", &b));
            prop_assert!(warm.contains("\"cache\":\"warm\""), "shards {}: {}", shards, warm);
            prop_assert_eq!(normalize(&warm), normalize(&cold_reference(&b)));
            prop_assert_eq!(service.metrics().counter_value("service.warm_reuse"), 1);

            // And the embedded report is exactly the library report —
            // i.e. `crplan --quiet` bytes.
            prop_assert_eq!(report_field(&warm), library_report(&b));
            prop_assert_eq!(report_field(&hit), library_report(&a));
        }
    }

    /// Satellite (c), part 2: a one-entry cache that evicts on every
    /// insert never changes any response — under any shard count.
    #[test]
    fn eviction_under_tiny_capacity_never_changes_responses(
        xs in proptest::collection::vec(1u32..13, 3..6),
    ) {
        for shards in [1usize, 2, 8] {
            let service = Service::new(ServiceConfig {
                cache_cap: 1,
                shards,
                ..ServiceConfig::default()
            });
            // Each position twice, interleaved, so almost every request
            // evicts the previous entry (and may warm-start from it: all
            // variants share a base).
            let mut sequence: Vec<u32> = xs.clone();
            sequence.extend(&xs);
            for &bx in &sequence {
                let text = scenario_text(bx, 7);
                let got = service.handle_line(&route_line("x", &text));
                prop_assert_eq!(
                    normalize(&got),
                    normalize(&cold_reference(&text)),
                    "shards {}, divergence at block x={}",
                    shards,
                    bx
                );
            }
            // With several shards the cap-1 budget spreads out (each
            // shard keeps at least one entry), so eviction pressure is
            // only guaranteed in the single-shard layout.
            if shards == 1
                && xs.iter().collect::<std::collections::BTreeSet<_>>().len() > 1
            {
                prop_assert!(
                    service.metrics().counter_value("service.evictions") > 0,
                    "capacity 1 with {} distinct scenarios must evict",
                    xs.len()
                );
            }
        }
    }
}

#[test]
fn stats_counters_track_the_three_paths() {
    let service = Service::new(ServiceConfig::default());
    let a = scenario_text(3, 3);
    let b = scenario_text(9, 3);
    service.handle_line(&route_line("1", &a)); // cold
    service.handle_line(&route_line("2", &a)); // hit
    service.handle_line(&route_line("3", &b)); // warm
    let m = service.metrics();
    assert_eq!(m.counter_value("service.requests"), 3);
    assert_eq!(m.counter_value("service.hits"), 1);
    assert_eq!(m.counter_value("service.misses"), 2);
    assert_eq!(m.counter_value("service.warm_reuse"), 1);
    assert_eq!(m.counter_value("service.coalesced"), 0, "serial traffic never coalesces");
    assert_eq!(m.counter_value("service.rejects"), 0);
    assert_eq!(m.gauge_value("service.cache.len"), 2);
    assert_eq!(m.gauge_value("service.cache.len.max"), 2);
    // Planner counters were replayed into the same recorder.
    assert!(
        m.counter_value("plan.nets.routed") > 0,
        "planner shards replayed"
    );
}

#[test]
fn cache_len_gauge_shrinks_after_eviction() {
    // Satellite regression: `service.cache.len` used to be reported
    // via gauge_max, so it could never reflect eviction shrink. Fill a
    // 2-entry single-shard cache, then insert a third scenario: the
    // last-value gauge must read 2 (two survivors), not climb to 3,
    // while the high-water mark keeps the pre-eviction peak.
    let service = Service::new(ServiceConfig {
        cache_cap: 2,
        shards: 1,
        ..ServiceConfig::default()
    });
    for (i, bx) in [3u32, 6, 9].iter().enumerate() {
        service.handle_line(&route_line(&format!("r{i}"), &scenario_text(*bx, 3)));
    }
    let m = service.metrics();
    assert_eq!(m.counter_value("service.evictions"), 1);
    assert_eq!(m.gauge_value("service.cache.len"), 2, "last value, not max");
    assert_eq!(m.gauge_value("service.cache.len.max"), 2);
    // The stats op re-reads the live length the same way.
    let stats = service.handle_line("{\"id\":\"s\",\"op\":\"stats\"}");
    assert!(stats.contains("\"service.cache.len\":2"), "{stats}");
}

#[test]
fn recovery_replay_lands_entries_in_the_right_shards() {
    // Entries persisted under one shard layout must recover correctly
    // under any other: the shard is derived from the fingerprint at
    // insert time, so replay re-routes each record wherever the new
    // layout wants it.
    let dir = std::env::temp_dir().join(format!(
        "crserve-shard-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let texts: Vec<String> = [2u32, 5, 8, 11].iter().map(|&bx| scenario_text(bx, 6)).collect();
    let mut colds = Vec::new();
    {
        let service = Service::new(ServiceConfig {
            shards: 4,
            state: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        for (i, t) in texts.iter().enumerate() {
            colds.push(service.handle_line(&route_line(&format!("c{i}"), t)));
        }
        // No snapshot() call: the append log alone carries the state.
    }
    for shards in [1usize, 2, 8] {
        let reborn = Service::new(ServiceConfig {
            shards,
            state: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        assert_eq!(
            reborn.metrics().counter_value("service.persist.recovered"),
            texts.len() as u64,
            "shards {shards}"
        );
        for (i, t) in texts.iter().enumerate() {
            let got = reborn.handle_line(&route_line(&format!("c{i}"), t));
            assert!(
                got.contains("\"cache\":\"hit\""),
                "shards {shards}: recovered entry must hit: {got}"
            );
            assert_eq!(
                normalize(&got),
                normalize(&colds[i]),
                "shards {shards}: recovered bytes diverged"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Binary tests: the real `crserve` process.
// ---------------------------------------------------------------------

fn crserve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_crserve"))
}

/// Runs a whole stdio session (input written upfront, stdin closed) and
/// returns (stdout, exit success).
fn run_session(args: &[&str], envs: &[(&str, &str)], input: &str) -> (String, bool) {
    let mut child = crserve()
        .args(args)
        .arg("--quiet")
        .envs(envs.iter().copied())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crserve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write session");
    let out = child.wait_with_output().expect("wait for crserve");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

#[test]
fn crserve_stdio_session_hits_every_path_and_exits_cleanly() {
    let good = scenario_text(4, 4);
    let session = [
        "{\"id\":\"p\",\"op\":\"ping\"}".to_owned(),
        route_line("r1", &good),
        route_line("r1", &good), // same id so the responses byte-compare
        "{oops".to_owned(),
        route_line("r3", "die 1mm 1mm\nnope\n"),
        route_line("r4", &good), // over the net cap below -> busy
        "{\"id\":\"s\",\"op\":\"stats\"}".to_owned(),
        "{\"id\":\"q\",\"op\":\"shutdown\"}".to_owned(),
    ]
    .join("\n");
    let (stdout, ok) = run_session(&["--max-nets", "2"], &[], &session);
    assert!(ok, "exit 0 after shutdown");
    validate_jsonl(&stdout).expect("every response line is valid JSON");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "one response per request: {stdout}");
    assert!(lines[0].contains("\"pong\":true"));
    assert!(lines[1].contains("\"cache\":\"cold\""));
    assert!(lines[2].contains("\"cache\":\"hit\""));
    assert_eq!(normalize(lines[1]), normalize(lines[2]));
    assert!(lines[3].contains("\"status\":\"malformed\""));
    assert!(lines[4].contains("\"status\":\"error\""));
    assert!(lines[4].contains("scenario: line 2"));
    assert!(lines[5].contains("\"cache\":\"hit\""), "r4 repeats r1: {}", lines[5]);
    assert!(lines[6].contains("\"service.hits\":2"), "{}", lines[6]);
    assert!(lines[6].contains("\"service.malformed\":1"), "{}", lines[6]);
    assert!(lines[7].contains("\"bye\":true"));
}

#[test]
fn crserve_net_cap_answers_busy_not_death() {
    let big = scenario_text(4, 4); // 2 nets, cap 1 below
    let session = [route_line("r", &big), "{\"op\":\"shutdown\"}".to_owned()].join("\n");
    let (stdout, ok) = run_session(&["--max-nets", "1"], &[], &session);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].contains("\"status\":\"busy\""), "{}", lines[0]);
    assert!(lines[0].contains("2 nets, limit 1"), "{}", lines[0]);
    assert!(lines[1].contains("\"bye\":true"));
}

#[test]
fn crserve_report_bytes_equal_crplan_quiet_output() {
    let text = scenario_text(6, 2);
    let moved = scenario_text(11, 2);
    let session = [
        route_line("cold", &text),
        route_line("hit", &text),
        route_line("warm", &moved),
        "{\"op\":\"shutdown\"}".to_owned(),
    ]
    .join("\n");
    let (stdout, ok) = run_session(&[], &[], &session);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].contains("\"cache\":\"cold\""));
    assert!(lines[1].contains("\"cache\":\"hit\""));
    assert!(lines[2].contains("\"cache\":\"warm\""));
    // The embedded reports are the library renderer's bytes — the same
    // renderer `crplan --quiet` prints from (pinned by the CLI e2e
    // suite), so all three cache paths match the CLI byte-for-byte.
    assert_eq!(report_field(lines[0]), library_report(&text));
    assert_eq!(report_field(lines[1]), library_report(&text));
    assert_eq!(report_field(lines[2]), library_report(&moved));
}

#[test]
fn crserve_survives_armed_failpoint_and_keeps_serving() {
    let text = scenario_text(4, 4);
    let session = [
        route_line("f", &text),
        "{\"id\":\"p\",\"op\":\"ping\"}".to_owned(),
        route_line("g", &scenario_text(9, 9)),
        "{\"op\":\"shutdown\"}".to_owned(),
    ]
    .join("\n");
    // The failpoint panics the first routing attempt of each net; the
    // planner converts it into a failed/degraded net, the service stays
    // up and keeps answering.
    let (stdout, ok) = run_session(
        &[],
        &[("CLOCKROUTE_FAILPOINTS", "plan::net=panic@1")],
        &session,
    );
    assert!(ok, "armed failpoint must not kill the service");
    validate_jsonl(&stdout).expect("all responses valid under failpoints");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    assert!(
        lines[0].contains("\"status\":\"ok\"") || lines[0].contains("\"status\":\"error\""),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"pong\":true"), "still alive: {}", lines[1]);
    assert!(lines[2].contains("\"status\":\"ok\""), "{}", lines[2]);
    assert!(lines[3].contains("\"bye\":true"));
}

#[test]
fn crserve_pins_malformed_input_behaviour() {
    // Satellite pins: each malformed shape yields exactly one error
    // response or a clean close — never a dead loop, never a crash.
    // 1. Oversized line: one `malformed` response, then service resumes.
    let over = "x".repeat(4096);
    let session = format!("{over}\n{{\"op\":\"ping\"}}\n{{\"op\":\"shutdown\"}}\n");
    let (stdout, ok) = run_session(&["--max-line", "256"], &[], &session);
    assert!(ok, "oversized line must not kill the service");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("\"status\":\"malformed\""), "{}", lines[0]);
    assert!(lines[0].contains("exceeds 256 bytes"), "{}", lines[0]);
    assert!(lines[1].contains("\"pong\":true"), "{}", lines[1]);
    assert!(lines[2].contains("\"bye\":true"), "{}", lines[2]);

    // 2. Half-written final line (EOF before the newline): answered,
    // then clean exit.
    let (stdout, ok) = run_session(&[], &[], "{\"op\":\"ping\"}\n{\"op\":\"ping\"}");
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "half-written tail answered: {stdout}");
    assert!(lines[1].contains("\"pong\":true"), "{}", lines[1]);

    // 3. EOF mid-escape (the line dies inside a `\` sequence): one
    // malformed response, clean close.
    let (stdout, ok) = run_session(&[], &[], "{\"id\":\"x\\");
    assert!(ok, "EOF mid-escape is a clean close");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{stdout}");
    assert!(lines[0].contains("\"status\":\"malformed\""), "{}", lines[0]);
    validate_jsonl(&stdout).expect("error response is valid JSON");
}

#[test]
fn crserve_state_dir_recovers_across_restarts() {
    let dir = std::env::temp_dir().join(format!("crserve-e2e-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let state = dir.to_str().expect("utf-8 temp path").to_owned();
    let text = scenario_text(5, 10);

    // First life: solve cold, exit cleanly on EOF (snapshot on exit).
    let session = route_line("s", &text) + "\n";
    let (stdout, ok) = run_session(&["--state", &state], &[], &session);
    assert!(ok);
    let first = stdout.lines().next().expect("one response").to_owned();
    assert!(first.contains("\"cache\":\"cold\""), "{first}");
    assert!(dir.join("cache.snap").exists(), "snapshot written on exit");

    // Second life: the same request is a verified recovered hit, and
    // the response bytes are identical apart from the label.
    let (stdout, ok) = run_session(&["--state", &state], &[], &session);
    assert!(ok);
    let second = stdout.lines().next().expect("one response").to_owned();
    assert!(second.contains("\"cache\":\"hit\""), "recovered: {second}");
    assert_eq!(normalize(&first), normalize(&second));

    // A corrupted snapshot degrades to a cold solve, never an error.
    let snap = dir.join("cache.snap");
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("corrupt snapshot");
    let (stdout, ok) = run_session(&["--state", &state], &[], &session);
    assert!(ok, "corrupt snapshot must not kill the service");
    let third = stdout.lines().next().expect("one response").to_owned();
    assert!(third.contains("\"cache\":\"cold\""), "dropped, re-solved: {third}");
    assert_eq!(normalize(&first), normalize(&third));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_rejections_never_hint_a_retry() {
    let session = [
        route_line("r", &scenario_text(4, 4)),
        "{\"op\":\"shutdown\"}".to_owned(),
    ]
    .join("\n");
    let (stdout, ok) = run_session(&["--max-nets", "1"], &[], &session);
    assert!(ok);
    assert!(stdout.contains("\"status\":\"busy\""), "{stdout}");
    assert!(
        !stdout.contains("retry_after_ms"),
        "permanent rejection must not hint: {stdout}"
    );
}

#[test]
fn busy_responses_hint_and_the_retry_policy_converges() {
    use clockroute_service::RetryPolicy;
    use std::sync::Arc;
    use std::time::Duration;
    // One in-flight slot; a background solve holds it while the
    // foreground retries under the client policy. Whether contention
    // is actually observed is timing-dependent — the assertions are
    // that every busy carries a hint and the retry loop converges.
    let service = Arc::new(Service::new(ServiceConfig {
        max_inflight: 1,
        ..ServiceConfig::default()
    }));
    let big = "die 24mm 24mm\ngrid 48 48\nblock hard 10 10 20 20\n\
               net comb name=a src=0,0 dst=47,47\nnet comb name=b src=0,47 dst=47,0\n\
               net reg name=c src=0,24 dst=47,24 period=4000\n"
        .to_owned();
    // Either side can lose the race for the single slot, so both walk
    // the client policy until admitted.
    fn retry_until_ok(service: &Service, line: &str) -> String {
        let policy = RetryPolicy {
            base_ms: 2,
            cap_ms: 40,
            max_attempts: 200,
            seed: 7,
        };
        let mut attempt = 0u32;
        loop {
            let got = service.handle_line(line);
            if !got.contains("\"status\":\"busy\"") {
                return got;
            }
            assert!(got.contains("\"retry_after_ms\":"), "busy without hint: {got}");
            let delay = policy
                .backoff_ms(attempt, Some(1))
                .expect("retry budget exhausted while the server stayed busy");
            attempt += 1;
            std::thread::sleep(Duration::from_millis(delay));
        }
    }
    let bg = {
        let service = Arc::clone(&service);
        let big = big.clone();
        std::thread::spawn(move || retry_until_ok(&service, &route_line("bg", &big)))
    };
    let converged = retry_until_ok(&service, &route_line("fg", &scenario_text(4, 4)));
    assert!(converged.contains("\"status\":\"ok\""), "{converged}");
    let bg = bg.join().expect("background solve");
    assert!(bg.contains("\"status\":\"ok\""), "{bg}");
}

#[test]
fn crserve_rejects_unknown_flags_with_exit_two() {
    let status = crserve()
        .arg("--frobnicate")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn crserve");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn crserve_unwritable_metrics_path_exits_two() {
    let status = crserve()
        .args(["--metrics", "/nonexistent-dir/metrics.json"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn crserve");
    assert_eq!(status.code(), Some(2), "preflight fails before serving");
}

#[test]
fn crserve_tcp_serves_concurrent_connections() {
    use std::net::TcpStream;
    let mut child = crserve()
        .args(["--tcp", "127.0.0.1:0", "--quiet"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn crserve --tcp");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_owned();

    let ask = |line: &str| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        writeln!(stream, "{line}").expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        response.trim_end().to_owned()
    };

    let pong = ask("{\"id\":\"t1\",\"op\":\"ping\"}");
    assert!(pong.contains("\"pong\":true"), "{pong}");
    let routed = ask(&route_line("t2", &scenario_text(5, 5)));
    assert!(routed.contains("\"cache\":\"cold\""), "{routed}");
    validate_json(&routed).expect("valid route response over TCP");
    let bye = ask("{\"id\":\"t3\",\"op\":\"shutdown\"}");
    assert!(bye.contains("\"bye\":true"), "{bye}");

    let status = child.wait().expect("crserve exits after shutdown");
    assert!(status.success(), "clean TCP shutdown");
}
