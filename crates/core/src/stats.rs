//! Search-effort statistics.
//!
//! The paper reports, for every experiment, the number of configurations
//! examined (candidates popped off `Q`) and the maximum queue size — both
//! machine-independent proxies for the `O(nNk² log Nk)` complexity claim.
//! [`SearchStats`] captures the same counters (plus a few more) so the
//! benchmark harness can regenerate the `Configs` / `MaxQSize` columns of
//! Table I.

use clockroute_geom::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Axis-aligned bounding box of the grid nodes a search examined.
///
/// Every blockage or site lookup a search performs happens at, or one
/// grid step away from, a node it allocated an arena step for (neighbour
/// enumeration reads edge state incident to the popped node; gate-site
/// checks read the popped node itself). The box therefore over-approximates
/// the search's entire read set once dilated by one step — which is what
/// [`contains_within`](TouchedRegion::contains_within) implements. The
/// batch planner uses this to prove that a route reservation committed
/// elsewhere on the grid could not have changed a speculative search's
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TouchedRegion {
    /// Smallest x coordinate examined.
    pub min_x: u32,
    /// Smallest y coordinate examined.
    pub min_y: u32,
    /// Largest x coordinate examined.
    pub max_x: u32,
    /// Largest y coordinate examined.
    pub max_y: u32,
}

impl TouchedRegion {
    /// The degenerate region covering a single point.
    pub fn of_point(p: Point) -> TouchedRegion {
        TouchedRegion {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// Grows the region to cover `p`.
    pub fn include(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// `true` if `p` lies inside the region dilated by `margin` steps.
    pub fn contains_within(&self, p: Point, margin: u32) -> bool {
        p.x >= self.min_x.saturating_sub(margin)
            && p.x <= self.max_x.saturating_add(margin)
            && p.y >= self.min_y.saturating_sub(margin)
            && p.y <= self.max_y.saturating_add(margin)
    }
}

/// Counters accumulated during a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Candidates popped off the main queue `Q` — the paper's “Configs”.
    pub configs: u64,
    /// Largest size reached by `Q` — the paper's “MaxQSize”.
    pub max_queue: usize,
    /// Candidates pushed onto `Q` (after surviving the prune check).
    pub pushed: u64,
    /// Candidates rejected or displaced by inferiority pruning.
    pub pruned: u64,
    /// Candidates rejected by the clock-period feasibility bounds.
    pub bound_rejected: u64,
    /// Number of wave-front advances (register/FIFO generations).
    pub waves: u32,
    /// Candidates skipped as stale when popped (already dominated).
    pub stale_skipped: u64,
    /// Candidates carried across a wave-front advance (register/FIFO
    /// generations promoted out of `Q*` or the spill list).
    pub promoted: u64,
    /// Arena steps (partial-route records) allocated by the search.
    pub arena_steps: u64,
    /// Budget-meter charges (pops + expansion steps) — the cooperative
    /// preemption points the search passed through.
    pub budget_charges: u64,
    /// Candidates discarded by admissible goal pruning (arena engine
    /// only; never removes a candidate the optimum needs).
    #[serde(default)]
    pub goal_pruned: u64,
    /// Pairwise entry comparisons spent in dominance checks (binary
    /// searches counted at their actual probe cost).
    #[serde(default)]
    pub front_comparisons: u64,
    /// Bounding box of the nodes the search examined, when tracked.
    /// `None` for searches that read unbounded grid state (coarsened
    /// retries, the unbuffered fallback).
    pub touched: Option<TouchedRegion>,
}

impl SearchStats {
    /// Creates zeroed statistics.
    pub fn new() -> SearchStats {
        SearchStats::default()
    }

    /// Arena memory in bytes: steps × the fixed per-step record size.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_steps * crate::engine::step_size_bytes() as u64
    }

    /// Records a push and keeps the running queue-size maximum.
    #[inline]
    pub(crate) fn record_push(&mut self, queue_len: usize) {
        self.pushed += 1;
        if queue_len > self.max_queue {
            self.max_queue = queue_len;
        }
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "configs={} maxQ={} pushed={} pruned={} bound-rejected={} waves={} promoted={} arena={} charges={} goal-pruned={} front-cmps={}",
            self.configs,
            self.max_queue,
            self.pushed,
            self.pruned,
            self.bound_rejected,
            self.waves,
            self.promoted,
            self.arena_steps,
            self.budget_charges,
            self.goal_pruned,
            self.front_comparisons
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_push_tracks_max() {
        let mut s = SearchStats::new();
        s.record_push(3);
        s.record_push(7);
        s.record_push(5);
        assert_eq!(s.pushed, 3);
        assert_eq!(s.max_queue, 7);
    }

    #[test]
    fn touched_region_grows_and_dilates() {
        let mut r = TouchedRegion::of_point(Point::new(3, 4));
        r.include(Point::new(1, 6));
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (1, 4, 3, 6));
        assert!(r.contains_within(Point::new(2, 5), 0));
        assert!(!r.contains_within(Point::new(0, 5), 0));
        assert!(r.contains_within(Point::new(0, 5), 1));
        assert!(r.contains_within(Point::new(4, 7), 1));
        assert!(!r.contains_within(Point::new(5, 7), 1));
    }

    #[test]
    fn touched_region_dilation_saturates_at_origin() {
        let r = TouchedRegion::of_point(Point::new(0, 0));
        assert!(r.contains_within(Point::new(1, 0), 1));
        assert!(!r.contains_within(Point::new(2, 0), 1));
    }

    #[test]
    fn display_contains_counters() {
        let mut s = SearchStats::new();
        s.configs = 42;
        s.record_push(9);
        let text = s.to_string();
        assert!(text.contains("configs=42"));
        assert!(text.contains("maxQ=9"));
    }
}
