//! The priced geometry oracle: a budget-charged Dijkstra whose edge
//! weight is physical length times a caller-supplied congestion
//! multiplier.
//!
//! This is the min-cost oracle of the fractional multicommodity phase
//! (Albrecht et al., PAPERS.md): the fractional iteration and the
//! rip-up pass both pick *geometry* with it, then hand the chosen
//! corridor to the exact per-net searches for timing legalization —
//! prices steer where a net goes, the Elmore searches decide what gets
//! inserted along the way.
//!
//! Every pop and every relaxation charges the shared flow-phase
//! [`BudgetMeter`], so a blown deadline surfaces as
//! [`RouteError::BudgetExceeded`] from inside the loop (crlint CR005)
//! and the caller degrades instead of hanging.

use clockroute_core::{BudgetMeter, RouteError};
use clockroute_geom::Point;
use clockroute_grid::{GridGraph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on priced distance; ties broken by node id for
        // determinism. `total_cmp` keeps the heap invariant even for
        // non-finite keys (the canonical CR001 pattern).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Cheapest source→sink geometry under `multiplier` (a per-edge factor
/// ≥ 1 applied to physical length). Returns:
///
/// * `Ok(Some(points))` — the priced shortest path;
/// * `Ok(None)` — no route exists (terminals off-grid or disconnected);
///   the caller falls back to the full per-net planner, whose ladder
///   produces the canonical failure result;
/// * `Err(BudgetExceeded)` — the shared flow budget tripped mid-search.
///
/// Deterministic: ties are broken by node id, and the multiplier is a
/// pure function of the edge, so equal inputs give equal paths.
pub(crate) fn priced_path(
    graph: &GridGraph,
    source: Point,
    sink: Point,
    multiplier: &dyn Fn(Point, Point) -> f64,
    meter: &mut BudgetMeter,
) -> Result<Option<Vec<Point>>, RouteError> {
    if !graph.contains(source) || !graph.contains(sink) {
        return Ok(None);
    }
    let s = graph.node(source);
    let t = graph.node(sink);
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: s });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        meter.charge_pop(0)?;
        if d > dist[u.index()] {
            continue;
        }
        if u == t {
            break;
        }
        for v in graph.neighbors(u) {
            meter.charge_expand()?;
            let pu = graph.point(u);
            let pv = graph.point(v);
            let nd = d + graph.edge_length(u, v).um() * multiplier(pu, pv);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if dist[t.index()].is_infinite() {
        return Ok(None);
    }
    let mut points = vec![graph.point(t)];
    let mut cur = t;
    while let Some(p) = prev[cur.index()] {
        points.push(graph.point(p));
        cur = p;
    }
    points.reverse();
    Ok(Some(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_core::{SearchBudget, SearchStage};
    use clockroute_geom::units::Length;
    use std::time::Duration;

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn meter() -> BudgetMeter {
        BudgetMeter::new(SearchBudget::unlimited(), SearchStage::Flow)
    }

    #[test]
    fn unit_multiplier_matches_shortest_path() {
        let g = GridGraph::open(10, 10, Length::from_um(100.0));
        let path = priced_path(&g, p(0, 5), p(9, 5), &|_, _| 1.0, &mut meter())
            .unwrap()
            .unwrap();
        assert_eq!(path.len(), 10);
        assert_eq!(path[0], p(0, 5));
        assert_eq!(path[9], p(9, 5));
    }

    #[test]
    fn expensive_row_forces_a_detour() {
        // Make every horizontal edge on row 0 ruinously expensive; the
        // path must dip to row 1 and come back.
        let g = GridGraph::open(6, 3, Length::from_um(100.0));
        let mult = |a: Point, b: Point| {
            if a.y == 0 && b.y == 0 {
                1000.0
            } else {
                1.0
            }
        };
        let path = priced_path(&g, p(0, 0), p(5, 0), &mult, &mut meter())
            .unwrap()
            .unwrap();
        assert!(path.iter().any(|q| q.y == 1), "path stayed on priced row");
    }

    #[test]
    fn disconnected_and_off_grid_return_none() {
        let g = GridGraph::open(4, 4, Length::from_um(100.0));
        assert_eq!(
            priced_path(&g, p(0, 0), p(9, 9), &|_, _| 1.0, &mut meter()).unwrap(),
            None
        );
        let mut g2 = GridGraph::open(4, 1, Length::from_um(100.0));
        g2.blockage_mut().block_edge(p(1, 0), p(2, 0));
        assert_eq!(
            priced_path(&g2, p(0, 0), p(3, 0), &|_, _| 1.0, &mut meter()).unwrap(),
            None
        );
    }

    #[test]
    fn zero_deadline_trips_the_budget() {
        let g = GridGraph::open(8, 8, Length::from_um(100.0));
        let budget = SearchBudget::unlimited().with_deadline(Duration::ZERO);
        let mut m = BudgetMeter::new(budget, SearchStage::Flow);
        let err = priced_path(&g, p(0, 0), p(7, 7), &|_, _| 1.0, &mut m).unwrap_err();
        assert!(matches!(
            err,
            RouteError::BudgetExceeded {
                stage: SearchStage::Flow,
                ..
            }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let g = GridGraph::open(12, 12, Length::from_um(100.0));
        let mult = |a: Point, b: Point| 1.0 + 0.1 * f64::from(a.x.min(b.x));
        let a = priced_path(&g, p(0, 0), p(11, 11), &mult, &mut meter()).unwrap();
        let b = priced_path(&g, p(0, 0), p(11, 11), &mult, &mut meter()).unwrap();
        assert_eq!(a, b);
    }
}
