//! Goal pruning for the sink→source searches: admissible remaining-cost
//! bounds plus cheap canonical-path probes that seed the upper bounds.
//!
//! A candidate `(c, d)` at node `v` must still traverse wire from `v` to
//! the source. [`clockroute_elmore::lower_bound::edge_rate`] gives a
//! per-edge rate `u` such that *any* buffered chain covering those edges
//! costs at least `u` per edge, so
//!
//! ```text
//! completion(candidate) ≥ d + W(v) + R_min·max(0, c − C_min)·1e-3
//! ```
//!
//! with `W(v)` the rate-weighted Manhattan distance from `v` to the
//! source, `R_min` the weakest driver resistance the search can deploy
//! (the driver that eventually drives the candidate's current load `c`
//! pays at least `R_min·c`, of which `R_min·C_min` is already inside
//! `W`), and `C_min` the minimum gate input capacitance. Every dropped
//! term is non-negative, so the bound is admissible: it never
//! overestimates the cost of *any* completion.
//!
//! * **Fast path** dooms a candidate when the bound exceeds a known
//!   achievable total `U` (from [`probe_fastpath`], tightened online as
//!   completed candidates are pushed). The returned optimum `T* ≤ U`
//!   satisfies `bound ≤ completion = T* ≤ U` along its entire lineage, so
//!   it is never doomed, and pruning only removes pushes without
//!   reordering survivors — the popped result is byte-identical.
//! * **RBP** dooms a candidate in wave `k` when even `p_ub − k` further
//!   registers (each buying one period `T`) cannot absorb the remaining
//!   work: `d + extra + max(0, W(v) − (p_ub−k)·T) > T`, where `p_ub` is a
//!   feasible register count from [`probe_rbp`]. Any completion spans
//!   `p − k` register stages plus the final source stage, each at most
//!   `T`, and their summed delay is at least `d + extra + W(v)`; a doomed
//!   candidate therefore cannot arrive feasibly by wave `p_ub`, while the
//!   search always returns in wave `w* ≤ p_ub`. Claim-marking divergence
//!   caused by pruned lineages only ever creates or suppresses register
//!   seeds that are themselves incapable of feasible arrival by `p_ub`
//!   (a seed's `(cap, delay)` state is claimant-independent), so the
//!   returned route is unchanged — see DESIGN.md §15 for the full
//!   argument.

use crate::ctx::Ctx;
use clockroute_elmore::lower_bound::{edge_rate, DriverModel, EdgeModel};
use clockroute_geom::Point;

/// Relative + absolute slop applied to doom thresholds so accumulated
/// floating-point error can never doom a candidate on the optimal lineage.
const EPS: f64 = 1e-9;

/// Admissible remaining-cost bound toward the source terminal.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GoalBound {
    /// Per-edge rate (ps) for the `[horizontal, vertical]` axes.
    rate: [f64; 2],
    /// Source grid point.
    sp: Point,
    /// Weakest driver resistance (Ω) the search can deploy.
    r_min: f64,
    /// Minimum gate input capacitance (fF) any segment terminates into.
    c_min: f64,
}

impl GoalBound {
    /// Builds the bound for a search context. The driver set is the
    /// union over all searches (source gate, register, buffers): extra
    /// drivers only lower the rate, keeping it admissible everywhere.
    pub fn new(ctx: &Ctx<'_>) -> GoalBound {
        let mut drivers = vec![
            DriverModel {
                res_ohms: ctx.gs_res,
                intrinsic_ps: ctx.gs_k,
            },
            DriverModel {
                res_ohms: ctx.reg_res,
                intrinsic_ps: ctx.reg_k,
            },
        ];
        let mut c_min = ctx.reg_cap.min(ctx.lib.gate(ctx.gt).input_cap().ff());
        let mut r_min = ctx.min_res.min(ctx.gs_res);
        for b in &ctx.buffers {
            drivers.push(DriverModel {
                res_ohms: b.res,
                intrinsic_ps: b.k,
            });
            c_min = c_min.min(b.cap);
            r_min = r_min.min(b.res);
        }
        let share = if ctx.re[0] == ctx.re[1] && ctx.ce[0] == ctx.ce[1] {
            1.0
        } else {
            0.5
        };
        let rate = [0, 1].map(|a| {
            edge_rate(
                &drivers,
                EdgeModel {
                    res_ohms: ctx.re[a],
                    cap_ff: ctx.ce[a],
                },
                c_min,
                share,
            )
        });
        GoalBound {
            rate,
            sp: ctx.graph.point(ctx.s),
            r_min,
            c_min,
        }
    }

    /// Rate-weighted Manhattan distance `W(v)` from `p` to the source.
    #[inline]
    pub fn dist(&self, p: Point) -> f64 {
        let dx = f64::from(p.x.abs_diff(self.sp.x));
        let dy = f64::from(p.y.abs_diff(self.sp.y));
        self.rate[0] * dx + self.rate[1] * dy
    }

    /// Extra driver charge for a load above `C_min`.
    #[inline]
    pub fn load_extra(&self, cap: f64) -> f64 {
        self.r_min * (cap - self.c_min).max(0.0) * 1.0e-3
    }

    /// Fast path: `true` if no completion of `(cap, delay)` at `p` can
    /// beat the achievable total `upper`.
    #[inline]
    pub fn doomed(&self, p: Point, cap: f64, delay: f64, upper: f64) -> bool {
        delay + self.dist(p) + self.load_extra(cap) > upper * (1.0 + EPS) + EPS
    }

    /// RBP: `true` if `(cap, delay)` at `p` in wave `k` cannot arrive
    /// feasibly within `p_ub` total registers at period `t`.
    ///
    /// Each remaining register stage is credited a full period `t` of
    /// rate-weighted distance. Crediting less (say `t` minus the
    /// register overheads) would be unsound: the rate in `W` already
    /// admits the register itself as a repeater, so its amortized cost
    /// can include those overheads — subtracting them again would
    /// double-count and doom optimal lineages.
    #[inline]
    pub fn doomed_wave(&self, p: Point, cap: f64, delay: f64, waves_left: u32, t: f64) -> bool {
        let slack = self.dist(p) - f64::from(waves_left) * t;
        delay + self.load_extra(cap) + slack.max(0.0) > t * (1.0 + EPS) + EPS
    }
}

/// A probe state mirroring the searches' candidate tuples exactly.
#[derive(Debug, Clone, Copy)]
struct PState {
    cap: f64,
    delay: f64,
    regs: u32,
    /// `!gate_here`: may still receive a gate at the current node.
    capable: bool,
}

fn dominates(a: &PState, b: &PState) -> bool {
    a.cap <= b.cap && a.delay <= b.delay && a.regs <= b.regs && (a.capable || !b.capable)
}

/// Pareto-prunes `states` in place, capping the set size (dropping
/// states only weakens the probe result, never unsounds it).
fn prune(states: &mut Vec<PState>) {
    let mut kept: Vec<PState> = Vec::with_capacity(states.len());
    for s in states.drain(..) {
        if kept.iter().any(|k| dominates(k, &s)) {
            continue;
        }
        kept.retain(|k| !dominates(&s, k));
        kept.push(s);
    }
    if kept.len() > 64 {
        kept.sort_by(|a, b| a.delay.total_cmp(&b.delay));
        kept.truncate(64);
    }
    *states = kept;
}

/// The canonical monotone probe path from the sink to the source:
/// x-steps first, then y-steps. `None` if any edge on it is blocked.
fn probe_path(ctx: &Ctx<'_>) -> Option<Vec<clockroute_grid::NodeId>> {
    let graph = ctx.graph;
    let (sp, tp) = (graph.point(ctx.s), graph.point(ctx.t));
    let mut nodes = vec![ctx.t];
    let mut cur = tp;
    while cur != sp {
        let next = if cur.x != sp.x {
            Point::new(if cur.x < sp.x { cur.x + 1 } else { cur.x - 1 }, cur.y)
        } else {
            Point::new(cur.x, if cur.y < sp.y { cur.y + 1 } else { cur.y - 1 })
        };
        let (u, v) = (graph.node(cur), graph.node(next));
        if !graph.neighbors(u).any(|n| n == v) {
            return None;
        }
        nodes.push(v);
        cur = next;
    }
    Some(nodes)
}

/// Minimum buffered delay achievable along the canonical probe path —
/// an upper bound on the fast-path optimum. `None` disables pruning.
pub(crate) fn probe_fastpath(ctx: &Ctx<'_>) -> Option<f64> {
    let path = probe_path(ctx)?;
    let gt = ctx.lib.gate(ctx.gt);
    let mut states = vec![PState {
        cap: gt.input_cap().ff(),
        delay: gt.setup().ps(),
        regs: 0,
        capable: false,
    }];
    for win in path.windows(2) {
        let (u, v) = (win[0], win[1]);
        let (re, ce) = ctx.edge(u, v);
        for s in &mut states {
            s.delay += re * (s.cap + ce / 2.0);
            s.cap += ce;
            s.capable = true;
        }
        if v != ctx.s && graph_insertable(ctx, v) {
            let mut inserted = Vec::new();
            for s in &states {
                if !s.capable {
                    continue;
                }
                for b in &ctx.buffers {
                    inserted.push(PState {
                        cap: b.cap,
                        delay: s.delay + b.res * s.cap * 1.0e-3 + b.k,
                        regs: s.regs,
                        capable: false,
                    });
                }
            }
            states.extend(inserted);
        }
        prune(&mut states);
    }
    states
        .iter()
        .map(|s| ctx.finish_at_source(s.cap, s.delay))
        .min_by(f64::total_cmp)
}

/// A feasible register count along the canonical probe path at period
/// `t` — an upper bound on the RBP optimum's wave count. `None` (path
/// blocked or probe-infeasible) disables pruning.
pub(crate) fn probe_rbp(ctx: &Ctx<'_>, t: f64) -> Option<u32> {
    let path = probe_path(ctx)?;
    let gt = ctx.lib.gate(ctx.gt);
    let mut states = vec![PState {
        cap: gt.input_cap().ff(),
        delay: gt.setup().ps(),
        regs: 0,
        capable: false,
    }];
    for win in path.windows(2) {
        let (u, v) = (win[0], win[1]);
        let (re, ce) = ctx.edge(u, v);
        let mut next: Vec<PState> = Vec::with_capacity(states.len());
        for s in &states {
            let delay = s.delay + re * (s.cap + ce / 2.0);
            let cap = s.cap + ce;
            if delay > t - ctx.reg_k - ctx.min_res * cap * 1.0e-3 {
                continue;
            }
            next.push(PState {
                cap,
                delay,
                regs: s.regs,
                capable: true,
            });
        }
        states = next;
        if v != ctx.s {
            let mut inserted = Vec::new();
            for s in &states {
                if !s.capable {
                    continue;
                }
                if graph_insertable(ctx, v) {
                    for b in &ctx.buffers {
                        let delay = s.delay + b.res * s.cap * 1.0e-3 + b.k;
                        if delay > t - ctx.reg_k {
                            continue;
                        }
                        inserted.push(PState {
                            cap: b.cap,
                            delay,
                            regs: s.regs,
                            capable: false,
                        });
                    }
                }
                if ctx.graph.is_register_allowed(v) {
                    let stage = ctx.register_stage(s.cap, s.delay);
                    if stage <= t {
                        inserted.push(PState {
                            cap: ctx.reg_cap,
                            delay: ctx.reg_setup,
                            regs: s.regs + 1,
                            capable: false,
                        });
                    }
                }
            }
            states.extend(inserted);
        }
        if states.is_empty() {
            return None;
        }
        prune(&mut states);
    }
    states
        .iter()
        .filter(|s| ctx.finish_at_source(s.cap, s.delay) <= t)
        .map(|s| s.regs)
        .min()
}

#[inline]
fn graph_insertable(ctx: &Ctx<'_>, v: clockroute_grid::NodeId) -> bool {
    ctx.graph.is_insertable(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_elmore::{GateLibrary, Technology};
    use clockroute_geom::units::{Length, Time};
    use clockroute_grid::GridGraph;

    fn ctx_on<'a>(
        g: &'a GridGraph,
        tech: &'a Technology,
        lib: &'a GateLibrary,
        s: Point,
        t: Point,
    ) -> Ctx<'a> {
        let reg = lib.register();
        match Ctx::new(g, tech, lib, Some(s), Some(t), reg, reg) {
            Ok(c) => c,
            Err(e) => panic!("ctx: {e:?}"),
        }
    }

    #[test]
    fn fastpath_probe_upper_bounds_the_optimum() {
        let g = GridGraph::open(15, 15, Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let ctx = ctx_on(&g, &tech, &lib, Point::new(0, 0), Point::new(14, 14));
        let u = probe_fastpath(&ctx).expect("open grid");
        let sol = crate::FastPathSpec::new(&g, &tech, &lib)
            .source(Point::new(0, 0))
            .sink(Point::new(14, 14))
            .solve()
            .expect("open grid");
        assert!(u >= sol.delay().ps() - 1e-9, "U {u} < optimum {}", sol.delay());
        // On an open uniform grid every monotone route is equivalent, so
        // the probe is in fact tight.
        assert!(u <= sol.delay().ps() + 1e-6, "U {u} should be tight");
    }

    #[test]
    fn bound_is_admissible_along_the_optimum() {
        let g = GridGraph::open(12, 12, Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let ctx = ctx_on(&g, &tech, &lib, Point::new(0, 0), Point::new(11, 11));
        let goal = GoalBound::new(&ctx);
        let sol = crate::FastPathSpec::new(&g, &tech, &lib)
            .source(Point::new(0, 0))
            .sink(Point::new(11, 11))
            .solve()
            .expect("open grid");
        // W from the sink must not exceed the full optimal delay.
        assert!(goal.dist(Point::new(11, 11)) <= sol.delay().ps());
        // And no point's W may exceed its own fastpath-from-there delay.
        for p in [Point::new(6, 6), Point::new(11, 0), Point::new(3, 9)] {
            let from_p = crate::FastPathSpec::new(&g, &tech, &lib)
                .source(Point::new(0, 0))
                .sink(p)
                .solve()
                .expect("open grid");
            assert!(
                goal.dist(p) <= from_p.delay().ps(),
                "W({p}) = {} exceeds achievable {}",
                goal.dist(p),
                from_p.delay()
            );
        }
    }

    #[test]
    fn rbp_probe_matches_search_on_open_grid() {
        let g = GridGraph::open(20, 20, Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let ctx = ctx_on(&g, &tech, &lib, Point::new(0, 0), Point::new(19, 19));
        for t in [250.0, 400.0, 800.0] {
            let p_ub = probe_rbp(&ctx, t).expect("feasible probe");
            let sol = crate::RbpSpec::new(&g, &tech, &lib)
                .source(Point::new(0, 0))
                .sink(Point::new(19, 19))
                .period(Time::from_ps(t))
                .solve()
                .expect("feasible");
            assert!(
                p_ub as usize >= sol.register_count(),
                "probe {p_ub} below optimum {}",
                sol.register_count()
            );
        }
    }

    #[test]
    fn blocked_probe_path_disables_pruning() {
        use clockroute_geom::BlockageMap;
        let mut blk = BlockageMap::new(8, 8);
        // Cut the canonical x-then-y path near the sink.
        blk.block_edge(Point::new(6, 7), Point::new(7, 7));
        let g = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let ctx = ctx_on(&g, &tech, &lib, Point::new(0, 0), Point::new(7, 7));
        assert!(probe_fastpath(&ctx).is_none());
        assert!(probe_rbp(&ctx, 400.0).is_none());
    }
}
