//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§V) and prints paper-vs-measured comparisons.
//!
//! The experimental setup follows §V exactly: estimated 0.07 µm
//! technology parameters, a single 100×-minimum-width buffer, register and
//! MCFIFO delay characteristics identical to the buffer, a 25 mm × 25 mm
//! chip, and source/sink placed 40 mm apart (Manhattan). Grids of
//! 50×50 / 100×100 / 200×200 give the paper's 0.5 / 0.25 / 0.125 mm
//! separations.
//!
//! | Paper artifact | Generator |
//! |----------------|-----------|
//! | Table I        | [`table1`] (`cargo run --release -p clockroute-bench --bin table1`) |
//! | Table II       | `table1` per grid size (`… --bin table2`) |
//! | Table III      | [`table3`] (`… --bin table3`) |
//! | Figs. 3/6/11   | `… --bin figures` |
//!
//! Each generator also evaluates the paper's qualitative *observations*
//! (§V-A obs. 1–3, §V-B obs. 1–4) against the measured data and prints a
//! verdict, so a regression in the algorithms shows up as a failed trend,
//! not just different numbers.

use clockroute_core::{FastPathSpec, GalsSpec, MetricsRecorder, RbpSpec, TelemetryHandle};
use clockroute_elmore::{GateLibrary, Technology};
use clockroute_geom::units::{Length, Time};
use clockroute_geom::{Floorplan, Point};
use clockroute_grid::GridGraph;
use std::time::Instant;

/// The clock periods of Table I/II, in ps. `None` encodes `T_φ = ∞`
/// (the fast path row).
pub const PAPER_PERIODS: [Option<f64>; 14] = [
    None,
    Some(1371.0),
    Some(925.0),
    Some(686.0),
    Some(551.0),
    Some(463.0),
    Some(398.0),
    Some(343.0),
    Some(261.0),
    Some(84.0),
    Some(67.0),
    Some(62.0),
    Some(53.0),
    Some(49.0),
];

/// Paper Table I reference values: `(period, latency, registers, buffers)`
/// (200×200 grid). Used for the side-by-side comparison columns.
pub const PAPER_TABLE1: [(Option<f64>, f64, usize, usize); 14] = [
    (None, 2739.0, 0, 16),
    (Some(1371.0), 2742.0, 1, 14),
    (Some(925.0), 2775.0, 2, 14),
    (Some(686.0), 2744.0, 3, 12),
    (Some(551.0), 2755.0, 4, 10),
    (Some(463.0), 2778.0, 5, 11),
    (Some(398.0), 2786.0, 6, 7),
    (Some(343.0), 2744.0, 7, 8),
    (Some(261.0), 2871.0, 10, 10),
    (Some(84.0), 3360.0, 39, 0),
    (Some(67.0), 4288.0, 63, 0),
    (Some(62.0), 4960.0, 79, 0),
    (Some(53.0), 8480.0, 159, 0),
    (Some(49.0), 15680.0, 319, 0),
];

/// Paper Table II reference values for the 0.5 mm (50×50) grid:
/// `(period, latency, registers, buffers)`; `latency = NaN` encodes the
/// paper's empty (infeasible) cells.
pub const PAPER_TABLE2_050: [(Option<f64>, f64, usize, usize); 14] = [
    (None, 2741.0, 0, 15),
    (Some(1371.0), 2742.0, 1, 14),
    (Some(925.0), 3700.0, 3, 12),
    (Some(686.0), 2744.0, 3, 12),
    (Some(551.0), 3306.0, 5, 10),
    (Some(463.0), 3241.0, 6, 6),
    (Some(398.0), 3184.0, 7, 7),
    (Some(343.0), 2744.0, 7, 8),
    (Some(261.0), 3132.0, 11, 0),
    (Some(84.0), 3360.0, 39, 0),
    (Some(67.0), 5360.0, 79, 0),
    (Some(62.0), 4960.0, 79, 0),
    (Some(53.0), f64::NAN, 0, 0),
    (Some(49.0), f64::NAN, 0, 0),
];

/// Paper Table II reference values for the 0.25 mm (100×100) grid.
pub const PAPER_TABLE2_025: [(Option<f64>, f64, usize, usize); 14] = [
    (None, 2740.0, 0, 16),
    (Some(1371.0), 2742.0, 1, 14),
    (Some(925.0), 2775.0, 2, 14),
    (Some(686.0), 2744.0, 3, 12),
    (Some(551.0), 2755.0, 4, 10),
    (Some(463.0), 2778.0, 5, 11),
    (Some(398.0), 3184.0, 7, 7),
    (Some(343.0), 2744.0, 7, 8),
    (Some(261.0), 2871.0, 10, 10),
    (Some(84.0), 3360.0, 39, 0),
    (Some(67.0), 5360.0, 79, 0),
    (Some(62.0), 4960.0, 79, 0),
    (Some(53.0), 8480.0, 159, 0),
    (Some(49.0), f64::NAN, 0, 0),
];

/// The paper reference block for a given grid size (Table II blocks; the
/// 200×200 block coincides with Table I).
pub fn paper_reference(grid: u32) -> &'static [(Option<f64>, f64, usize, usize)] {
    match grid {
        50 => &PAPER_TABLE2_050,
        100 => &PAPER_TABLE2_025,
        _ => &PAPER_TABLE1,
    }
}

/// Paper Table III reference values:
/// `(T_s, T_t, buffers, reg_t, reg_s, latency)`.
pub const PAPER_TABLE3: [(f64, f64, usize, usize, usize, f64); 7] = [
    (300.0, 300.0, 9, 8, 0, 3000.0),
    (200.0, 300.0, 2, 1, 10, 2800.0),
    (300.0, 200.0, 2, 10, 1, 2800.0),
    (300.0, 400.0, 8, 3, 3, 2800.0),
    (400.0, 300.0, 8, 3, 3, 2800.0),
    (250.0, 300.0, 7, 6, 2, 2850.0),
    (300.0, 250.0, 6, 2, 6, 2850.0),
];

/// The paper's experimental die: 25 mm × 25 mm, source and sink 40 mm
/// apart (Manhattan), rasterised at `grid × grid`.
///
/// Returns `(graph, tech, lib, source, sink)`.
pub fn paper_setup(grid: u32) -> (GridGraph, Technology, GateLibrary, Point, Point) {
    let fp = Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0));
    let graph = GridGraph::from_floorplan(&fp, grid, grid);
    // Place terminals on the main diagonal so the Manhattan separation is
    // exactly 40 mm: 0.8·grid edges per axis, centred on the die.
    let dx = (0.8 * f64::from(grid)).round() as u32;
    let off = (grid - 1 - dx) / 2;
    let s = Point::new(off, off);
    let t = Point::new(off + dx, off + dx);
    (graph, Technology::paper_070nm(), GateLibrary::paper_library(), s, t)
}

/// One measured row of Table I / Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct RegPathRow {
    /// Clock period in ps (`None` = ∞, fast path).
    pub period: Option<f64>,
    /// Latency in ps (`T·(p+1)` for RBP rows; path delay for fast path).
    pub latency: Option<f64>,
    /// Registers inserted (`None` latency ⇒ no feasible route).
    pub registers: Option<usize>,
    /// Buffers inserted.
    pub buffers: Option<usize>,
    /// Max/min grid separation between successive registers (terminals
    /// included).
    pub max_reg_sep: Option<usize>,
    pub min_reg_sep: Option<usize>,
    /// Max/min grid separation between successive inserted elements.
    pub max_rb_sep: Option<usize>,
    pub min_rb_sep: Option<usize>,
    /// Candidates popped (the paper's `Configs`), read back from the
    /// telemetry recorder — populated even for infeasible cells, where it
    /// measures the effort spent proving infeasibility.
    pub configs: u64,
    /// Maximum queue size (telemetry gauge).
    pub max_queue: usize,
    /// Peak search-arena footprint in bytes (telemetry counter).
    pub arena_bytes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs one Table-I/II cell: fast path for `period = None`, RBP
/// otherwise. Infeasible cells produce a row with `latency = None`
/// (Table II's empty cells).
///
/// Effort columns (`configs`, `max_queue`, `arena_bytes`) are read from a
/// per-cell [`MetricsRecorder`] attached to the search — the same sink
/// `crplan --metrics` aggregates — so the harness and the CLI report the
/// same quantities by construction.
pub fn run_cell(
    graph: &GridGraph,
    tech: &Technology,
    lib: &GateLibrary,
    s: Point,
    t: Point,
    period: Option<f64>,
) -> RegPathRow {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = Instant::now();
    let recorder = MetricsRecorder::new();
    let telemetry = TelemetryHandle::new(&recorder);
    match period {
        None => {
            let sol = FastPathSpec::new(graph, tech, lib)
                .source(s)
                .sink(t)
                .telemetry(telemetry)
                .solve()
                .expect("fast path always feasible on the open die");
            let seps = sol.path().element_separations();
            RegPathRow {
                period: None,
                latency: Some(sol.delay().ps()),
                registers: Some(0),
                buffers: Some(sol.buffer_count()),
                max_reg_sep: None,
                min_reg_sep: None,
                max_rb_sep: seps.iter().max().copied(),
                min_rb_sep: seps.iter().min().copied(),
                configs: recorder.counter_value("search.fastpath.pops"),
                max_queue: recorder.gauge_value("search.fastpath.max_queue") as usize,
                arena_bytes: recorder.counter_value("search.fastpath.arena_bytes"),
                seconds: start.elapsed().as_secs_f64(),
            }
        }
        Some(t_phi) => {
            let outcome = RbpSpec::new(graph, tech, lib)
                .source(s)
                .sink(t)
                .period(Time::from_ps(t_phi))
                .telemetry(telemetry)
                .solve();
            let configs = recorder.counter_value("search.rbp.pops");
            let max_queue = recorder.gauge_value("search.rbp.max_queue") as usize;
            let arena_bytes = recorder.counter_value("search.rbp.arena_bytes");
            match outcome {
                Ok(sol) => {
                    let reg_seps = sol.path().register_separations(lib);
                    let rb_seps = sol.path().element_separations();
                    RegPathRow {
                        period: Some(t_phi),
                        latency: Some(sol.latency().ps()),
                        registers: Some(sol.register_count()),
                        buffers: Some(sol.buffer_count()),
                        max_reg_sep: reg_seps.iter().max().copied(),
                        min_reg_sep: reg_seps.iter().min().copied(),
                        max_rb_sep: rb_seps.iter().max().copied(),
                        min_rb_sep: rb_seps.iter().min().copied(),
                        configs,
                        max_queue,
                        arena_bytes,
                        seconds: start.elapsed().as_secs_f64(),
                    }
                }
                Err(_) => RegPathRow {
                    period: Some(t_phi),
                    latency: None,
                    registers: None,
                    buffers: None,
                    max_reg_sep: None,
                    min_reg_sep: None,
                    max_rb_sep: None,
                    min_rb_sep: None,
                    configs,
                    max_queue,
                    arena_bytes,
                    seconds: start.elapsed().as_secs_f64(),
                },
            }
        }
    }
}

/// Generates Table I on a `grid × grid` die for the given periods.
pub fn table1(grid: u32, periods: &[Option<f64>]) -> Vec<RegPathRow> {
    let (graph, tech, lib, s, t) = paper_setup(grid);
    periods
        .iter()
        .map(|&p| run_cell(&graph, &tech, &lib, s, t, p))
        .collect()
}

/// One measured row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct GalsRow {
    pub t_s: f64,
    pub t_t: f64,
    pub buffers: usize,
    pub reg_t: usize,
    pub reg_s: usize,
    pub latency: f64,
    pub configs: u64,
    pub arena_bytes: u64,
    pub seconds: f64,
}

/// Generates Table III on a `grid × grid` die for `(T_s, T_t)` pairs.
pub fn table3(grid: u32, pairs: &[(f64, f64)]) -> Vec<GalsRow> {
    let (graph, tech, lib, s, t) = paper_setup(grid);
    pairs
        .iter()
        .map(|&(ts, tt)| {
            // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
            let start = Instant::now();
            let recorder = MetricsRecorder::new();
            let sol = GalsSpec::new(&graph, &tech, &lib)
                .source(s)
                .sink(t)
                .periods(Time::from_ps(ts), Time::from_ps(tt))
                .telemetry(TelemetryHandle::new(&recorder))
                .solve()
                .expect("GALS feasible at Table III periods");
            GalsRow {
                t_s: ts,
                t_t: tt,
                buffers: sol.buffer_count(),
                reg_t: sol.regs_sink_side(),
                reg_s: sol.regs_source_side(),
                latency: sol.latency().ps(),
                configs: recorder.counter_value("search.gals.pops"),
                arena_bytes: recorder.counter_value("search.gals.arena_bytes"),
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// §V-A observations evaluated on a Table-I sweep (E6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendVerdicts {
    /// Obs. 1: registers monotonically non-decreasing as `T_φ` shrinks.
    pub registers_monotone: bool,
    /// Obs. 1: register separation non-increasing as `T_φ` shrinks.
    pub reg_sep_monotone: bool,
    /// Obs. 2: configs examined decrease as `T_φ` shrinks (RBP rows).
    pub configs_decrease: bool,
    /// Obs. 3: below some threshold period RBP is faster than fast path.
    pub rbp_faster_below_threshold: bool,
}

/// Evaluates the §V-A trend observations on a Table-I result set.
///
/// `rows[0]` must be the fast-path (`period = None`) row.
pub fn trends(rows: &[RegPathRow]) -> TrendVerdicts {
    let rbp: Vec<&RegPathRow> = rows.iter().filter(|r| r.period.is_some()).collect();
    let feasible: Vec<&&RegPathRow> = rbp.iter().filter(|r| r.latency.is_some()).collect();
    let registers_monotone = feasible
        .windows(2)
        .all(|w| w[0].registers.unwrap_or(0) <= w[1].registers.unwrap_or(0));
    let reg_sep_monotone = feasible
        .windows(2)
        .filter(|w| w[0].max_reg_sep.is_some() && w[1].max_reg_sep.is_some())
        .all(|w| w[0].max_reg_sep >= w[1].max_reg_sep);
    // Allow small non-monotonic wiggles in configs (the paper's own data
    // wiggles); require an overall decreasing trend: last < 3/4 · first.
    // The margin is deliberately looser than the paper's raw ratios: the
    // arena substrate skips dominated candidates before they count as
    // pops, which trims loose-period rows (where dominated candidates
    // pile up in-queue) more than tight ones and compresses the spread
    // without touching the trend itself (DESIGN.md §15).
    let configs_decrease = match (feasible.first(), feasible.last()) {
        (Some(a), Some(b)) => b.configs * 4 < a.configs * 3,
        _ => false,
    };
    let fast = rows.iter().find(|r| r.period.is_none());
    let rbp_faster_below_threshold = match fast {
        Some(f) => feasible.iter().any(|r| r.seconds < f.seconds),
        None => false,
    };
    TrendVerdicts {
        registers_monotone,
        reg_sep_monotone,
        configs_decrease,
        rbp_faster_below_threshold,
    }
}

/// Formats a Table-I/II result set as a markdown table with the paper's
/// Table-I reference values interleaved.
pub fn format_table1(rows: &[RegPathRow]) -> String {
    format_regpath_table(rows, &PAPER_TABLE1)
}

/// Formats a result set against an arbitrary paper reference block
/// (use [`paper_reference`] to pick the right Table II block per grid).
pub fn format_regpath_table(
    rows: &[RegPathRow],
    reference: &[(Option<f64>, f64, usize, usize)],
) -> String {
    let mut out = String::new();
    out.push_str(
        "| T_phi (ps) | Latency (ps) | paper | Regs | paper | Bufs | paper | MaxRegSep | MinRegSep | Max R/B | Min R/B | Configs | MaxQ | Arena (B) | time (s) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for row in rows {
        let paper = reference
            .iter()
            .find(|(p, ..)| match (p, row.period) {
                (None, None) => true,
                (Some(a), Some(b)) => (a - b).abs() < 1e-9,
                _ => false,
            });
        let fmt_opt = |v: Option<usize>| v.map_or("-".to_owned(), |x| x.to_string());
        let fmt_lat = |v: Option<f64>| v.map_or("infeas.".to_owned(), |x| format!("{x:.0}"));
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2} |\n",
            row.period.map_or("inf".to_owned(), |p| format!("{p:.0}")),
            fmt_lat(row.latency),
            paper.map_or("-".to_owned(), |(_, l, ..)| {
                if l.is_nan() {
                    "infeas.".to_owned()
                } else {
                    format!("{l:.0}")
                }
            }),
            fmt_opt(row.registers),
            paper.map_or("-".to_owned(), |(_, _, r, _)| r.to_string()),
            fmt_opt(row.buffers),
            paper.map_or("-".to_owned(), |(_, _, _, b)| b.to_string()),
            fmt_opt(row.max_reg_sep),
            fmt_opt(row.min_reg_sep),
            fmt_opt(row.max_rb_sep),
            fmt_opt(row.min_rb_sep),
            row.configs,
            row.max_queue,
            row.arena_bytes,
            row.seconds,
        ));
    }
    out
}

/// Formats a Table-III result set as markdown with paper references.
pub fn format_table3(rows: &[GalsRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| T_s | T_t | Bufs | paper | Reg-t | paper | Reg-s | paper | Latency | paper | Configs | Arena (B) | time (s) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for row in rows {
        let paper = PAPER_TABLE3
            .iter()
            .find(|(ts, tt, ..)| (ts - row.t_s).abs() < 1e-9 && (tt - row.t_t).abs() < 1e-9);
        out.push_str(&format!(
            "| {:.0} | {:.0} | {} | {} | {} | {} | {} | {} | {:.0} | {} | {} | {} | {:.2} |\n",
            row.t_s,
            row.t_t,
            row.buffers,
            paper.map_or("-".to_owned(), |&(_, _, b, ..)| b.to_string()),
            row.reg_t,
            paper.map_or("-".to_owned(), |&(_, _, _, rt, _, _)| rt.to_string()),
            row.reg_s,
            paper.map_or("-".to_owned(), |&(_, _, _, _, rs, _)| rs.to_string()),
            row.latency,
            paper.map_or("-".to_owned(), |&(.., l)| format!("{l:.0}")),
            row.configs,
            row.arena_bytes,
            row.seconds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_places_terminals_40mm_apart() {
        for grid in [50, 100, 200] {
            let (graph, _, _, s, t) = paper_setup(grid);
            let edges = s.manhattan(t);
            let dist_mm = f64::from(edges) * graph.pitch_x().mm();
            assert!(
                (dist_mm - 40.0).abs() < 0.5,
                "grid {grid}: terminals {dist_mm} mm apart"
            );
        }
    }

    #[test]
    fn small_grid_cell_runs() {
        // A miniature version of a Table-I cell on a 25×25 grid (1 mm
        // pitch): the machinery works end-to-end.
        let (graph, tech, lib, s, t) = paper_setup(25);
        let fast = run_cell(&graph, &tech, &lib, s, t, None);
        assert!(fast.latency.unwrap() > 2000.0);
        let rbp = run_cell(&graph, &tech, &lib, s, t, Some(700.0));
        assert!(rbp.registers.unwrap() >= 3);
        let infeasible = run_cell(&graph, &tech, &lib, s, t, Some(49.0));
        assert!(infeasible.latency.is_none());
        // The recorder survives the error path, so even an infeasible cell
        // reports the effort spent proving infeasibility.
        assert!(infeasible.configs > 0);
        assert!(infeasible.arena_bytes > 0);
    }

    #[test]
    fn recorder_effort_columns_match_solution_stats() {
        // The harness reads Configs/MaxQ from the telemetry recorder; they
        // must agree with the numbers the solution itself reports.
        let (graph, tech, lib, s, t) = paper_setup(25);

        let fast = run_cell(&graph, &tech, &lib, s, t, None);
        let fast_sol = FastPathSpec::new(&graph, &tech, &lib)
            .source(s)
            .sink(t)
            .solve()
            .unwrap();
        assert_eq!(fast.configs, fast_sol.stats().configs);
        assert_eq!(fast.max_queue, fast_sol.stats().max_queue);
        assert_eq!(fast.arena_bytes, fast_sol.stats().arena_bytes());

        let rbp = run_cell(&graph, &tech, &lib, s, t, Some(700.0));
        let rbp_sol = RbpSpec::new(&graph, &tech, &lib)
            .source(s)
            .sink(t)
            .period(Time::from_ps(700.0))
            .solve()
            .unwrap();
        assert_eq!(rbp.configs, rbp_sol.stats().configs);
        assert_eq!(rbp.max_queue, rbp_sol.stats().max_queue);
        assert_eq!(rbp.arena_bytes, rbp_sol.stats().arena_bytes());

        let gals = table3(25, &[(300.0, 300.0)]);
        assert!(gals[0].configs > 0);
        assert!(gals[0].arena_bytes > 0);
    }

    #[test]
    fn trends_on_miniature_sweep() {
        let rows = table1(25, &[None, Some(1371.0), Some(686.0), Some(343.0), Some(120.0)]);
        let v = trends(&rows);
        assert!(v.registers_monotone);
        assert!(v.reg_sep_monotone);
        assert!(v.configs_decrease);
    }

    #[test]
    fn format_contains_paper_columns() {
        let rows = table1(25, &[None, Some(686.0)]);
        let text = format_table1(&rows);
        assert!(text.contains("| inf |"));
        assert!(text.contains("2739"));
        let g = table3(25, &[(300.0, 300.0)]);
        let t3 = format_table3(&g);
        assert!(t3.contains("3000"));
    }
}

#[cfg(test)]
mod anchor_tests {
    //! Paper-anchor pins: these cells of Table II (0.25 mm grid) must
    //! match the paper exactly; a regression in calibration, pruning or
    //! wave ordering shows up here before anyone reads a full table.
    use super::*;

    #[test]
    fn table2_025mm_headline_cells_match_paper_exactly() {
        let (graph, tech, lib, s, t) = paper_setup(100);
        for &(period, latency, registers) in &[
            (1371.0, 2742.0, 1usize),
            (686.0, 2744.0, 3),
            (343.0, 2744.0, 7),
            (84.0, 3360.0, 39),
            (62.0, 4960.0, 79),
            (53.0, 8480.0, 159),
        ] {
            let row = run_cell(&graph, &tech, &lib, s, t, Some(period));
            assert_eq!(
                row.registers,
                Some(registers),
                "T = {period}: registers {:?}",
                row.registers
            );
            assert_eq!(
                row.latency,
                Some(latency),
                "T = {period}: latency {:?}",
                row.latency
            );
        }
        // And the paper's infeasible cell stays infeasible.
        let row = run_cell(&graph, &tech, &lib, s, t, Some(49.0));
        assert_eq!(row.latency, None, "T = 49 must be infeasible at 0.25 mm");
    }

    #[test]
    fn table3_headline_cell_matches_paper() {
        let rows = table3(100, &[(300.0, 300.0)]);
        // Latency 3000 ps with 9 synchronizer stages total (8 relays +
        // FIFO) at 0.25 mm granularity, like the paper's 0.125 mm run.
        assert!((rows[0].latency - 3000.0).abs() < 1e-9, "{:?}", rows[0]);
        assert_eq!(rows[0].reg_s + rows[0].reg_t, 8);
    }
}
