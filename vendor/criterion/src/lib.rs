//! Offline stub of `criterion`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. This stub keeps the workspace's benches
//! compiling and runnable: each `Bencher::iter` call runs the closure
//! for a short warm-up, then times a fixed number of iterations and
//! prints the mean. No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stub).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/name/parameter` style id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stub warm-up is a single run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub times `sample_size` runs.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Workload size hint (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a closure immediately when `iter` is called.
pub struct Bencher {
    samples: usize,
    measured: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            measured: None,
        }
    }

    /// Runs the routine once for warm-up, then times `sample_size`
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.measured = Some(start.elapsed() / self.samples.max(1) as u32);
    }

    fn report(self, group: &str, id: &str) {
        match self.measured {
            Some(mean) => println!(
                "{group}/{id}: mean {mean:?} over {} iterations",
                self.samples
            ),
            None => println!("{group}/{id}: no routine registered"),
        }
    }
}

/// Builds a `fn` that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Builds `main` from the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut iterations = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                iterations += 1;
                black_box(iterations)
            });
        });
        group.finish();
        // 1 warm-up + 3 timed runs.
        assert_eq!(iterations, 4);
    }
}
