#!/usr/bin/env sh
# Smoke test for crserve: drives one stdio session through every answer
# path (cold miss, exact-match cache hit, malformed line, budget
# rejection), checks the exit-code contract, and validates every
# response line through the same JSON grammar the telemetry export
# uses (`crserve --validate-jsonl`). Run from the repo root; the
# in-depth byte-identity assertions live in
# crates/service/tests/service_e2e.rs — this script is the fast
# shell-level gate wired into scripts/check.sh.
set -eu

cargo build --release -q -p clockroute-service
BIN=target/release/crserve
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail() {
    echo "serve_smoke: FAIL: $1" >&2
    exit 1
}

# Two-net scenario; literal \n stay escaped so they land inside the
# JSON string for the parser to decode.
SCEN='die 25mm 25mm\ngrid 12 12\nblock hard 4 4 6 6\nnet comb name=a src=0,0 dst=11,11\nnet reg name=b src=0,6 dst=11,6 period=2000\n'

{
    printf '%s\n' '{"id":"p","op":"ping"}'
    printf '{"id":"r1","op":"route","scenario":"%s"}\n' "$SCEN"
    printf '{"id":"r2","op":"route","scenario":"%s"}\n' "$SCEN"
    printf '%s\n' 'this is not json'
    printf '%s\n' '{"id":"s","op":"stats"}'
    printf '%s\n' '{"id":"q","op":"shutdown"}'
} > "$tmp/session.jsonl"

"$BIN" --quiet --metrics "$tmp/metrics.json" \
    < "$tmp/session.jsonl" > "$tmp/out.jsonl" \
    || fail "clean session exited non-zero"

[ "$(wc -l < "$tmp/out.jsonl")" -eq 6 ] || fail "expected 6 response lines"
"$BIN" --validate-jsonl < "$tmp/out.jsonl" || fail "responses are not valid JSONL"
# The metrics export is one pretty-printed object; joined onto a
# single line it is a one-line JSONL document.
tr -d '\n' < "$tmp/metrics.json" | "$BIN" --validate-jsonl \
    || fail "metrics file is not valid JSON"

grep -q '"pong"' "$tmp/out.jsonl" || fail "missing pong response"
grep -q '"cache":"cold"' "$tmp/out.jsonl" || fail "missing cold-path response"
grep -q '"cache":"hit"' "$tmp/out.jsonl" || fail "replay did not hit the cache"
grep -q '"status":"malformed"' "$tmp/out.jsonl" || fail "malformed line not reported"
grep -q '"service.hits":1' "$tmp/out.jsonl" || fail "stats did not count the hit"
grep -q '"bye":true' "$tmp/out.jsonl" || fail "missing shutdown acknowledgement"

# Budget rejection: a 2-net scenario against --max-nets 1 must answer
# busy (and keep serving) rather than queue or die.
{
    printf '{"id":"r","op":"route","scenario":"%s"}\n' "$SCEN"
    printf '%s\n' '{"id":"q","op":"shutdown"}'
} > "$tmp/busy.jsonl"
"$BIN" --quiet --max-nets 1 < "$tmp/busy.jsonl" > "$tmp/busy_out.jsonl" \
    || fail "busy session exited non-zero"
grep -q '"status":"busy"' "$tmp/busy_out.jsonl" || fail "over-limit request not rejected busy"
"$BIN" --validate-jsonl < "$tmp/busy_out.jsonl" || fail "busy responses are not valid JSONL"

# Exit-code contract: unknown flags and unwritable metrics paths are
# usage errors (2), detected before any request is served.
if "$BIN" --definitely-not-a-flag < /dev/null > /dev/null 2>&1; then
    fail "unknown flag accepted"
fi
"$BIN" --definitely-not-a-flag < /dev/null > /dev/null 2>&1 || [ $? -eq 2 ] \
    || fail "unknown flag should exit 2"
"$BIN" --metrics "$tmp/no/such/dir/m.json" < /dev/null > /dev/null 2>&1 || [ $? -eq 2 ] \
    || fail "unwritable metrics path should exit 2"

echo "serve_smoke: OK"
