//! A small handwritten Rust lexer: just enough token structure for the
//! line-walking rules in [`crate::rules`].
//!
//! The goal is *not* a faithful Rust grammar — it is to make the rules
//! immune to the classic grep failure modes: a `.unwrap()` inside a
//! string literal, a `thread::spawn` mentioned in a doc comment, a
//! lifetime `'a` mistaken for an unterminated char literal. Everything
//! the rules match on is an identifier or punctuation token; string,
//! char and numeric literals are reduced to opaque markers and comments
//! are routed to a separate side channel (they still matter, because
//! suppression directives live in them).

/// One lexical token. Literal payloads are dropped — no rule inspects
/// them, and keeping them would only invite string-content matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`while`, `unwrap`, `HashMap`, …).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens (`::` is two `Sym(':')`).
    Sym(char),
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// Numeric literal (integer or float, any base or suffix).
    Num,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// A comment (line or block, doc or plain) with its starting line.
/// Block comment text may span lines; suppression directives are only
/// honoured on line comments, which never do.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lexes `src`, returning code tokens and comments separately.
///
/// The lexer never fails: unterminated literals simply consume the rest
/// of the file. That is the right degradation for a linter — a file the
/// compiler would reject produces garbage findings at worst, and the
/// build gate catches it first.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c => {
                    self.emit(Tok::Sym(c));
                    self.pos += 1;
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: Tok) {
        self.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.comments.push(Comment { text, line: start });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.comments.push(Comment { text, line: start });
    }

    /// Consumes a plain `"…"` string starting at the opening quote.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.tokens.push(Token {
            kind: Tok::Str,
            line,
        });
    }

    /// Consumes a raw string starting at `r`/`br` (hashes follow).
    fn raw_string(&mut self) {
        let line = self.line;
        // Count opening hashes, then skip the quote.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'outer: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            }
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        self.pos += 1;
                        continue 'outer;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.tokens.push(Token {
            kind: Tok::Str,
            line,
        });
    }

    /// Distinguishes lifetimes (`'a`) from char literals (`'a'`, `'\n'`).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'` followed by ident-start and NOT closed by a quote right
        // after the ident run is a lifetime.
        if let Some(c1) = self.peek(1) {
            if c1 == '_' || c1.is_alphabetic() {
                let mut end = 2;
                while self
                    .peek(end)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    end += 1;
                }
                if self.peek(end) != Some('\'') {
                    self.pos += end;
                    self.tokens.push(Token {
                        kind: Tok::Lifetime,
                        line,
                    });
                    return;
                }
            }
        }
        // Char literal: skip escape or single char, then closing quote.
        self.pos += 1;
        if self.peek(0) == Some('\\') {
            self.pos += 2;
            // Unicode escapes: `'\u{1F600}'`.
            if self.peek(0) == Some('{') {
                while self.peek(0).is_some_and(|c| c != '}') {
                    self.pos += 1;
                }
                self.pos += 1;
            }
        } else {
            self.pos += 1;
        }
        if self.peek(0) == Some('\'') {
            self.pos += 1;
        }
        self.tokens.push(Token {
            kind: Tok::Char,
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.pos += 1;
        }
        // Float continuation: `1.25`, `1.0e-3` — but not `1.max(2)`.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                self.pos += 1;
            }
        }
        // Exponent sign: `1e-3` consumed the `e` above; pick up `-3`.
        if self.peek(0) == Some('-')
            && self
                .chars
                .get(self.pos.wrapping_sub(1))
                .is_some_and(|&c| c == 'e' || c == 'E')
        {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        self.tokens.push(Token {
            kind: Tok::Num,
            line,
        });
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                name.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        // String-literal prefixes: `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
        // `b'x'`.
        match (name.as_str(), self.peek(0)) {
            ("r" | "br", Some('"' | '#')) => {
                self.raw_string();
                return;
            }
            ("b", Some('"')) => {
                self.string();
                return;
            }
            ("b", Some('\'')) => {
                self.char_or_lifetime();
                return;
            }
            _ => {}
        }
        self.tokens.push(Token {
            kind: Tok::Ident(name),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        let (toks, _) = lex(src);
        toks.iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // a .unwrap() in a comment
            /* thread::spawn in /* a nested */ block */
            let s = "calls .unwrap() here";
            let r = r#"raw .expect( too"#;
            let b = b"bytes .unwrap()";
            x.checked();
        "##;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"spawn".to_string()));
        assert!(names.contains(&"checked".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) { x.unwrap(); let c = 'x'; }";
        let names = idents(src);
        assert!(names.contains(&"unwrap".to_string()));
        let (toks, _) = lex(src);
        assert!(toks.iter().any(|t| t.kind == Tok::Lifetime));
        assert!(toks.iter().any(|t| t.kind == Tok::Char));
    }

    #[test]
    fn comments_carry_line_numbers() {
        let (_, comments) = lex("let a = 1;\n// crlint-allow: CR001 why\nlet b = 2;\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("crlint-allow"));
    }

    #[test]
    fn escaped_quotes_and_floats() {
        let src = r#"let s = "he said \"hi\""; let f = 1.5e-3; f.total_cmp(&g);"#;
        let names = idents(src);
        assert!(!names.contains(&"hi".to_string()));
        assert!(names.contains(&"total_cmp".to_string()));
    }
}
