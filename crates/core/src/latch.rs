//! Transparent-latch routing with time borrowing — the extension the
//! paper points to via Hassoun's level-sensitive-latch work (ref.\ \[9\]).
//!
//! # Model
//!
//! Synchronizers are level-sensitive latches with a transparency window of
//! width `B` after their nominal closing edge: data arriving at latch `i`
//! up to `i·T + B` still flows through, *borrowing* time from the next
//! stage. The source launches exactly at `t = 0` and the sink is an
//! edge-triggered register, so no borrowing is possible at either end.
//! Cycle latency is unchanged by borrowing: `T · (latches + 1)`.
//!
//! Writing `σ_k` for the delay of the `k`-th stage counted from the sink,
//! feasibility is the window-constraint family
//!
//! ```text
//! Σ_{k=i+1..j} σ_k ≤ (j−i)·T + B·[latch i is interior]   for all i < j
//! ```
//!
//! which folds into a single scalar per partial solution: the backward
//! lateness `V` with recurrence `V' = max(σ − T + V, −B)`, feasibility
//! `σ ≤ T − V`, and initial value `V = 0` at the sink. `V` joins `(c, d)`
//! as a third pruning dimension, so the search remains optimal: a
//! candidate is only discarded if another is at least as good in
//! capacitance, delay *and* accumulated lateness.
//!
//! With `B = 0` the model degenerates exactly to RBP (asserted in tests).
//! With `B > 0` the search can ride through grids whose insertion sites
//! are too unevenly spaced for edge-triggered registers, sometimes saving
//! entire pipeline stages.

use crate::budget::{BudgetMeter, SearchStage};
use crate::ctx::Ctx;
use crate::engine::{
    Arena, Cand, CandArena, DelayQueue, DialQueue, EngineKind, PruneTable, SearchQueue,
    SortedFronts, NO_PARENT,
};
use crate::failpoint::{self, FailAction};
use crate::telemetry::TelemetryHandle;
use crate::{RouteError, RoutedPath, SearchBudget, SearchStats};
use clockroute_elmore::{GateId, GateLibrary, Technology};
use clockroute_geom::units::Time;
use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use serde::{Deserialize, Serialize};

/// Specification builder for a latch-based registered route.
///
/// # Example
///
/// ```
/// use clockroute_core::LatchSpec;
/// use clockroute_elmore::{Technology, GateLibrary};
/// use clockroute_grid::GridGraph;
/// use clockroute_geom::{Point, units::{Length, Time}};
///
/// let graph = GridGraph::open(30, 30, Length::from_um(500.0));
/// let tech = Technology::paper_070nm();
/// let lib = GateLibrary::paper_library();
/// let sol = LatchSpec::new(&graph, &tech, &lib)
///     .source(Point::new(0, 0))
///     .sink(Point::new(29, 29))
///     .period(Time::from_ps(300.0))
///     .borrow_window(Time::from_ps(60.0))
///     .solve()?;
/// assert!(sol.latch_count() > 0);
/// # Ok::<(), clockroute_core::RouteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LatchSpec<'a> {
    graph: &'a GridGraph,
    tech: &'a Technology,
    lib: &'a GateLibrary,
    source: Option<Point>,
    sink: Option<Point>,
    source_gate: GateId,
    sink_gate: GateId,
    period: Option<Time>,
    borrow: Time,
    budget: SearchBudget,
    telemetry: TelemetryHandle<'a>,
    engine: EngineKind,
}

impl<'a> LatchSpec<'a> {
    /// Creates a spec with the register model at both terminals and a
    /// zero borrowing window (i.e. RBP semantics until configured).
    pub fn new(graph: &'a GridGraph, tech: &'a Technology, lib: &'a GateLibrary) -> Self {
        LatchSpec {
            graph,
            tech,
            lib,
            source: None,
            sink: None,
            source_gate: lib.register(),
            sink_gate: lib.register(),
            period: None,
            borrow: Time::ZERO,
            budget: SearchBudget::unlimited(),
            telemetry: TelemetryHandle::none(),
            engine: EngineKind::default(),
        }
    }

    /// Selects the search substrate (default: [`EngineKind::Arena`]).
    /// Both engines return identical routes; `Legacy` exists as the
    /// equivalence reference.
    pub fn engine(mut self, e: EngineKind) -> Self {
        self.engine = e;
        self
    }

    /// Sets the source grid point.
    pub fn source(mut self, p: Point) -> Self {
        self.source = Some(p);
        self
    }

    /// Sets the sink grid point.
    pub fn sink(mut self, p: Point) -> Self {
        self.sink = Some(p);
        self
    }

    /// Sets the clock period `T_φ`.
    pub fn period(mut self, t: Time) -> Self {
        self.period = Some(t);
        self
    }

    /// Sets the transparency (time-borrowing) window `B`.
    pub fn borrow_window(mut self, b: Time) -> Self {
        self.borrow = b;
        self
    }

    /// Sets the resource budget for the search (default: unlimited).
    pub fn budget(mut self, b: SearchBudget) -> Self {
        self.budget = b;
        self
    }

    /// Attaches a telemetry sink (default: detached, zero-cost).
    pub fn telemetry(mut self, t: TelemetryHandle<'a>) -> Self {
        self.telemetry = t;
        self
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] on invalid specs or when no latch placement
    /// meets the period even with borrowing.
    pub fn solve(&self) -> Result<LatchSolution, RouteError> {
        let t_phi = self.period.ok_or(RouteError::InvalidPeriod)?;
        if t_phi.ps() <= 0.0 || !t_phi.is_finite() || self.borrow.ps() < 0.0 {
            return Err(RouteError::InvalidPeriod);
        }
        let ctx = Ctx::new(
            self.graph,
            self.tech,
            self.lib,
            self.source,
            self.sink,
            self.source_gate,
            self.sink_gate,
        )?;
        // crlint-allow: CR003 span start; the duration only reaches telemetry, never compared bytes
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();
        let out = match self.engine {
            EngineKind::Arena => solve_arena(&ctx, t_phi, self.borrow, self.budget, &mut stats),
            EngineKind::Legacy => solve_legacy(&ctx, t_phi, self.borrow, self.budget, &mut stats),
        };
        self.telemetry
            .flush_search("latch", &stats, started.elapsed(), out.is_ok());
        out
    }
}

/// Result of a latch-based search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatchSolution {
    path: RoutedPath,
    period: Time,
    borrow: Time,
    stats: SearchStats,
}

impl LatchSolution {
    /// The labelled route (latches use the library's latch model).
    pub fn path(&self) -> &RoutedPath {
        &self.path
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The transparency window `B`.
    pub fn borrow_window(&self) -> Time {
        self.borrow
    }

    /// Number of inserted latches.
    pub fn latch_count(&self) -> usize {
        self.path.register_count()
    }

    /// Number of inserted buffers.
    pub fn buffer_count(&self) -> usize {
        self.path.buffer_count()
    }

    /// Cycle latency `T_φ × (latches + 1)` — borrowing does not change
    /// latency, only feasibility.
    pub fn latency(&self) -> Time {
        self.period * (self.latch_count() as f64 + 1.0)
    }

    /// Search-effort counters.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

/// Checks the window-constraint family directly on forward stage delays
/// — the independent validator used in tests and by downstream tooling.
///
/// `stages` are forward (source first); `t` the period, `b` the window.
pub fn validate_borrowing(stages: &[Time], t: Time, b: Time) -> bool {
    if stages.is_empty() {
        return false;
    }
    // Forward lateness recurrence: L_0 = 0 at the source launch;
    // L_i = max(0, L_{i-1} + σ_i − T) ≤ B at interior latches; the sink
    // requires L = 0 after the last stage.
    let mut lateness: f64 = 0.0;
    for (i, s) in stages.iter().enumerate() {
        lateness = (lateness + s.ps() - t.ps()).max(0.0);
        let limit = if i + 1 == stages.len() { 0.0 } else { b.ps() };
        if lateness > limit + 1e-9 {
            return false;
        }
    }
    true
}

/// The pre-rewrite substrate, kept verbatim as the equivalence
/// reference (DESIGN.md §15).
fn solve_legacy(
    ctx: &Ctx<'_>,
    t_phi: Time,
    borrow: Time,
    search_budget: SearchBudget,
    stats: &mut SearchStats,
) -> Result<LatchSolution, RouteError> {
    let graph = ctx.graph;
    let t = t_phi.ps();
    let b = borrow.ps();
    let n = graph.node_count();
    let mut meter = BudgetMeter::new(search_budget, SearchStage::Latch);
    let mut arena = Arena::new();
    let mut prune = PruneTable::new(n);
    // Unlike RBP, a node may receive latch insertions from several
    // candidates (their lateness differs), so we rely on pruning alone
    // rather than a global A(v) marking — the 3-D front keeps at most a
    // small Pareto set per node per wave.
    let latch_gate = ctx.lib.gate(ctx.lib.latch());
    let latch_res = latch_gate.driver_res().ohms();
    let latch_cap = latch_gate.input_cap().ff();
    let latch_k = latch_gate.intrinsic().ps();
    let latch_setup = latch_gate.setup().ps();
    let latch_id = ctx.lib.latch();

    let mut queue = DelayQueue::new();
    let mut spill: Vec<Cand> = Vec::new();
    // Cross-wave seed dominance: a latch seed at node u always restarts
    // from the same (C, Setup); only its lateness V differs. A seed from
    // an earlier wave with V ≤ V' strictly dominates a later one (less
    // latency, weakly more future feasibility), so remember the best V
    // ever seeded per node and skip non-improving insertions. This is
    // the latch analogue of RBP's A(v) marking.
    let mut best_seed_v = vec![f64::INFINITY; n];

    let gt = ctx.lib.gate(ctx.gt);
    let root = arena.push(ctx.t, None, NO_PARENT);
    let mut start = Cand::start(gt.input_cap().ff(), gt.setup().ps(), root, ctx.t);
    start.borrowed = 0.0; // V at the sink
    prune.try_admit(ctx.t.index(), start.cap, start.delay, b, false, &mut stats.pruned);
    queue.push(start.delay, start);
    stats.record_push(queue.len());

    loop {
        while let Some(cand) = queue.pop() {
            match failpoint::hit("latch::pop") {
                Some(FailAction::Panic) => panic!("failpoint latch::pop: forced panic"),
                Some(FailAction::BudgetExhausted) => return Err(meter.exceeded()),
                Some(FailAction::NoRoute) => return Err(RouteError::NoFeasibleRoute),
                // I/O actions only apply at `serve::*` sites; inert here.
                Some(FailAction::IoError | FailAction::ShortIo) | None => {}
            }
            stats.budget_charges += 1;
            stats.arena_steps = arena.len() as u64;
            meter.charge_pop(arena.len())?;
            stats.configs += 1;
            let extra = cand.borrowed + b; // shifted to ≥ 0
            if prune.is_stale(cand.node.index(), cand.cap, cand.delay, extra, !cand.gate_here) {
                stats.stale_skipped += 1;
                continue;
            }

            if cand.node == ctx.s {
                let total = ctx.finish_at_source(cand.cap, cand.delay);
                // The source launches exactly at the edge: no borrowing.
                if total - t + cand.borrowed <= 0.0 {
                    stats.arena_steps = arena.len() as u64;
                    stats.front_comparisons = prune.comparisons();
                    stats.touched = arena.touched(graph);
                    let (nodes, mut labels) = arena.reconstruct(cand.trail);
                    let points: Vec<Point> = nodes.iter().map(|&nd| graph.point(nd)).collect();
                    labels[0] = Some(ctx.gs);
                    let last = labels.len() - 1;
                    labels[last] = Some(ctx.gt);
                    return Ok(LatchSolution {
                        path: RoutedPath::new(points, labels, ctx.lib),
                        period: t_phi,
                        borrow,
                        stats: *stats,
                    });
                }
            }

            // Per-candidate admissible budget for the stage under
            // construction: σ ≤ T − V.
            let budget = t - cand.borrowed;

            for v in graph.neighbors(cand.node) {
                stats.budget_charges += 1;
                meter.charge_expand()?;
                let (re, ce) = ctx.edge(cand.node, v);
                let cap = cand.cap + ce;
                let delay = cand.delay + re * (cand.cap + ce / 2.0);
                if delay > budget - latch_k - ctx.min_res * cap * 1.0e-3 {
                    stats.bound_rejected += 1;
                    continue;
                }
                if !prune.try_admit(v.index(), cap, delay, extra, true, &mut stats.pruned) {
                    stats.pruned += 1;
                    continue;
                }
                let trail = arena.push(v, None, cand.trail);
                let mut next = cand;
                next.cap = cap;
                next.delay = delay;
                next.node = v;
                next.trail = trail;
                next.gate_here = false;
                queue.push(delay, next);
                stats.record_push(queue.len());
            }

            let internal = cand.node != ctx.s && cand.node != ctx.t && !cand.gate_here;

            if internal && graph.is_insertable(cand.node) {
                for bf in &ctx.buffers {
                    stats.budget_charges += 1;
                    meter.charge_expand()?;
                    let cap = bf.cap;
                    let delay = cand.delay + bf.res * cand.cap * 1.0e-3 + bf.k;
                    if delay > budget - latch_k {
                        stats.bound_rejected += 1;
                        continue;
                    }
                    if !prune.try_admit(
                        cand.node.index(),
                        cap,
                        delay,
                        extra,
                        false,
                        &mut stats.pruned,
                    ) {
                        stats.pruned += 1;
                        continue;
                    }
                    let trail = arena.push(cand.node, Some(bf.id), cand.trail);
                    let mut next = cand;
                    next.cap = cap;
                    next.delay = delay;
                    next.trail = trail;
                    next.gate_here = true;
                    queue.push(delay, next);
                    stats.record_push(queue.len());
                }
            }

            // Latch insertion → next wave, carrying the new lateness V'.
            if internal && graph.is_register_allowed(cand.node) {
                let stage = cand.delay + latch_res * cand.cap * 1.0e-3 + latch_k;
                // Feasible iff σ ≤ T − V; the borrowing allowance of the
                // downstream latch is already folded into V (clamped at
                // −B), so a stage may overshoot T by up to B when the
                // downstream windows have that much slack.
                if stage - t + cand.borrowed <= 0.0 {
                    let new_v = (stage - t + cand.borrowed).max(-b);
                    if new_v >= best_seed_v[cand.node.index()] {
                        stats.pruned += 1;
                        continue;
                    }
                    best_seed_v[cand.node.index()] = new_v;
                    let trail = arena.push(cand.node, Some(latch_id), cand.trail);
                    let mut next = cand;
                    next.cap = latch_cap;
                    next.delay = latch_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.borrowed = new_v;
                    spill.push(next);
                } else {
                    stats.bound_rejected += 1;
                }
            }
        }

        if spill.is_empty() {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = prune.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        }
        // Termination bound: every latch occupies a distinct node
        // (m: V → I ∪ {0}), so a feasible solution never needs more
        // latches than there are grid nodes. Unlike RBP there is no
        // global A(v) marking here (candidates with different lateness
        // may all legitimately latch at the same node), so without this
        // cap an infeasible instance would spawn waves forever.
        if stats.waves as usize >= graph.node_count() {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = prune.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        }
        stats.waves += 1;
        prune.advance_wave();
        // Seed the next wave, pruning among its candidates (several may
        // share a node with different lateness).
        let mut next_wave = std::mem::take(&mut spill);
        next_wave.sort_by(|a, b2| a.delay.total_cmp(&b2.delay));
        for cand in next_wave {
            stats.budget_charges += 1;
            stats.promoted += 1;
            meter.charge_expand()?;
            let extra = cand.borrowed + b;
            if !prune.try_admit(
                cand.node.index(),
                cand.cap,
                cand.delay,
                extra,
                false,
                &mut stats.pruned,
            ) {
                stats.pruned += 1;
                continue;
            }
            queue.push(cand.delay, cand);
            stats.record_push(queue.len());
        }
    }
}

/// Arena-engine search: flat candidate storage, a monotone bucket
/// queue, and sorted Pareto fronts (falling back to linear scans when a
/// node's front mixes lateness values). Returns exactly what
/// [`solve_legacy`] returns. No goal pruning: the borrowed-lateness
/// dimension makes the single-period distance bound inadmissible.
fn solve_arena(
    ctx: &Ctx<'_>,
    t_phi: Time,
    borrow: Time,
    search_budget: SearchBudget,
    stats: &mut SearchStats,
) -> Result<LatchSolution, RouteError> {
    let graph = ctx.graph;
    let t = t_phi.ps();
    let b = borrow.ps();
    let n = graph.node_count();
    let mut meter = BudgetMeter::new(search_budget, SearchStage::Latch);
    let mut arena = Arena::new();
    let mut cands = CandArena::new();
    let mut fronts = SortedFronts::new(n);
    let latch_gate = ctx.lib.gate(ctx.lib.latch());
    let latch_res = latch_gate.driver_res().ohms();
    let latch_cap = latch_gate.input_cap().ff();
    let latch_k = latch_gate.intrinsic().ps();
    let latch_setup = latch_gate.setup().ps();
    let latch_id = ctx.lib.latch();

    let mut queue = DialQueue::new(ctx.queue_scale());
    let mut spill: Vec<u32> = Vec::new();
    // Cross-wave seed dominance, as in the legacy engine.
    let mut best_seed_v = vec![f64::INFINITY; n];

    let gt = ctx.lib.gate(ctx.gt);
    let root = arena.push(ctx.t, None, NO_PARENT);
    let mut start = Cand::start(gt.input_cap().ff(), gt.setup().ps(), root, ctx.t);
    start.borrowed = 0.0; // V at the sink
    let sidx = cands.alloc(&start);
    if fronts.admits(ctx.t.index(), start.cap, start.delay, b, false) {
        fronts.insert(
            ctx.t.index(),
            start.cap,
            start.delay,
            b,
            false,
            sidx,
            &mut cands,
            &mut stats.pruned,
        );
    }
    queue.push(start.delay, sidx);
    stats.record_push(queue.len());

    loop {
        while let Some(qidx) = queue.pop() {
            // Entry evicted from its front while queued: the slot was
            // reclaimed, so skip before charging anything.
            if cands.is_dead(qidx) {
                continue;
            }
            match failpoint::hit("latch::pop") {
                Some(FailAction::Panic) => panic!("failpoint latch::pop: forced panic"),
                Some(FailAction::BudgetExhausted) => return Err(meter.exceeded()),
                Some(FailAction::NoRoute) => return Err(RouteError::NoFeasibleRoute),
                // I/O actions only apply at `serve::*` sites; inert here.
                Some(FailAction::IoError | FailAction::ShortIo) | None => {}
            }
            let cand = cands.get(qidx);
            stats.budget_charges += 1;
            stats.arena_steps = arena.len() as u64;
            meter.charge_pop(arena.len())?;
            stats.configs += 1;
            let extra = cand.borrowed + b; // shifted to ≥ 0
            if fronts.is_stale(cand.node.index(), cand.cap, cand.delay, extra, !cand.gate_here) {
                stats.stale_skipped += 1;
                continue;
            }

            if cand.node == ctx.s {
                let total = ctx.finish_at_source(cand.cap, cand.delay);
                // The source launches exactly at the edge: no borrowing.
                if total - t + cand.borrowed <= 0.0 {
                    stats.arena_steps = arena.len() as u64;
                    stats.front_comparisons = fronts.comparisons();
                    stats.touched = arena.touched(graph);
                    let (nodes, mut labels) = arena.reconstruct(cand.trail);
                    let points: Vec<Point> = nodes.iter().map(|&nd| graph.point(nd)).collect();
                    labels[0] = Some(ctx.gs);
                    let last = labels.len() - 1;
                    labels[last] = Some(ctx.gt);
                    return Ok(LatchSolution {
                        path: RoutedPath::new(points, labels, ctx.lib),
                        period: t_phi,
                        borrow,
                        stats: *stats,
                    });
                }
            }

            // Per-candidate admissible budget for the stage under
            // construction: σ ≤ T − V.
            let budget = t - cand.borrowed;

            for v in graph.neighbors(cand.node) {
                stats.budget_charges += 1;
                meter.charge_expand()?;
                let (re, ce) = ctx.edge(cand.node, v);
                let cap = cand.cap + ce;
                let delay = cand.delay + re * (cand.cap + ce / 2.0);
                if delay > budget - latch_k - ctx.min_res * cap * 1.0e-3 {
                    stats.bound_rejected += 1;
                    continue;
                }
                if !fronts.admits(v.index(), cap, delay, extra, true) {
                    stats.pruned += 1;
                    continue;
                }
                let trail = arena.push(v, None, cand.trail);
                let mut next = cand;
                next.cap = cap;
                next.delay = delay;
                next.node = v;
                next.trail = trail;
                next.gate_here = false;
                let nidx = cands.alloc(&next);
                fronts.insert(v.index(), cap, delay, extra, true, nidx, &mut cands, &mut stats.pruned);
                queue.push(delay, nidx);
                stats.record_push(queue.len());
            }

            let internal = cand.node != ctx.s && cand.node != ctx.t && !cand.gate_here;

            if internal && graph.is_insertable(cand.node) {
                for bf in &ctx.buffers {
                    stats.budget_charges += 1;
                    meter.charge_expand()?;
                    let cap = bf.cap;
                    let delay = cand.delay + bf.res * cand.cap * 1.0e-3 + bf.k;
                    if delay > budget - latch_k {
                        stats.bound_rejected += 1;
                        continue;
                    }
                    if !fronts.admits(cand.node.index(), cap, delay, extra, false) {
                        stats.pruned += 1;
                        continue;
                    }
                    let trail = arena.push(cand.node, Some(bf.id), cand.trail);
                    let mut next = cand;
                    next.cap = cap;
                    next.delay = delay;
                    next.trail = trail;
                    next.gate_here = true;
                    let nidx = cands.alloc(&next);
                    fronts.insert(
                        cand.node.index(),
                        cap,
                        delay,
                        extra,
                        false,
                        nidx,
                        &mut cands,
                        &mut stats.pruned,
                    );
                    queue.push(delay, nidx);
                    stats.record_push(queue.len());
                }
            }

            // Latch insertion → next wave, carrying the new lateness V'.
            if internal && graph.is_register_allowed(cand.node) {
                let stage = cand.delay + latch_res * cand.cap * 1.0e-3 + latch_k;
                // Feasible iff σ ≤ T − V; the borrowing allowance of the
                // downstream latch is already folded into V (clamped at
                // −B), so a stage may overshoot T by up to B when the
                // downstream windows have that much slack.
                if stage - t + cand.borrowed <= 0.0 {
                    let new_v = (stage - t + cand.borrowed).max(-b);
                    if new_v >= best_seed_v[cand.node.index()] {
                        stats.pruned += 1;
                        continue;
                    }
                    best_seed_v[cand.node.index()] = new_v;
                    let trail = arena.push(cand.node, Some(latch_id), cand.trail);
                    let mut next = cand;
                    next.cap = latch_cap;
                    next.delay = latch_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.borrowed = new_v;
                    spill.push(cands.alloc(&next));
                } else {
                    stats.bound_rejected += 1;
                }
            }
        }

        if spill.is_empty() {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = fronts.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        }
        // Termination bound: every latch occupies a distinct node
        // (m: V → I ∪ {0}), so a feasible solution never needs more
        // latches than there are grid nodes (see the legacy engine).
        if stats.waves as usize >= graph.node_count() {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = fronts.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        }
        stats.waves += 1;
        fronts.advance_wave();
        // Seed the next wave, pruning among its candidates (several may
        // share a node with different lateness). Sorting through the
        // candidate arena keeps the legacy seeding order byte-for-byte.
        let mut next_wave = std::mem::take(&mut spill);
        next_wave.sort_by(|&a, &b2| cands.get(a).delay.total_cmp(&cands.get(b2).delay));
        for nidx in next_wave {
            let cand = cands.get(nidx);
            stats.budget_charges += 1;
            stats.promoted += 1;
            meter.charge_expand()?;
            let extra = cand.borrowed + b;
            if !fronts.admits(cand.node.index(), cand.cap, cand.delay, extra, false) {
                stats.pruned += 1;
                continue;
            }
            fronts.insert(
                cand.node.index(),
                cand.cap,
                cand.delay,
                extra,
                false,
                nidx,
                &mut cands,
                &mut stats.pruned,
            );
            queue.push(cand.delay, nidx);
            stats.record_push(queue.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RbpSpec;
    use clockroute_geom::units::Length;
    use clockroute_geom::BlockageMap;

    fn setup(n: u32, pitch_um: f64) -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(n, n, Length::from_um(pitch_um)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn validator_accepts_balanced_and_borrowed() {
        let t = Time::from_ps(100.0);
        let b = Time::from_ps(20.0);
        let s = |v: f64| Time::from_ps(v);
        assert!(validate_borrowing(&[s(90.0), s(95.0)], t, b));
        // Borrow 15 in stage 1, repay in stage 2.
        assert!(validate_borrowing(&[s(115.0), s(80.0)], t, b));
        // Borrow beyond the window.
        assert!(!validate_borrowing(&[s(125.0), s(60.0)], t, b));
        // Borrow into the sink (last stage must repay fully).
        assert!(!validate_borrowing(&[s(90.0), s(105.0)], t, b));
        // Chained borrowing that never repays.
        assert!(!validate_borrowing(&[s(115.0), s(110.0), s(90.0)], t, b));
        // Chained borrowing that does repay.
        assert!(validate_borrowing(&[s(115.0), s(100.0), s(80.0)], t, b));
        assert!(!validate_borrowing(&[], t, b));
    }

    #[test]
    fn zero_borrow_matches_rbp() {
        let (g, tech, lib) = setup(25, 500.0);
        for period in [250.0, 400.0, 700.0] {
            let rbp = RbpSpec::new(&g, &tech, &lib)
                .source(p(0, 0))
                .sink(p(24, 24))
                .period(Time::from_ps(period))
                .solve()
                .unwrap();
            let lat = LatchSpec::new(&g, &tech, &lib)
                .source(p(0, 0))
                .sink(p(24, 24))
                .period(Time::from_ps(period))
                .solve()
                .unwrap();
            assert_eq!(
                lat.latch_count(),
                rbp.register_count(),
                "period {period}"
            );
            assert_eq!(lat.latency(), rbp.latency());
        }
    }

    #[test]
    fn solutions_satisfy_window_constraints() {
        let (g, tech, lib) = setup(30, 500.0);
        let t = Time::from_ps(250.0);
        let b = Time::from_ps(50.0);
        let sol = LatchSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(29, 29))
            .period(t)
            .borrow_window(b)
            .solve()
            .unwrap();
        let report = sol.path().report(&g, &tech, &lib);
        let stages: Vec<Time> = report.stage_delays().collect();
        assert!(
            validate_borrowing(&stages, t, b),
            "stages {stages:?} violate borrowing constraints"
        );
    }

    #[test]
    fn borrowing_never_hurts_and_can_save_stages() {
        // On a grid with sparse insertion sites, register placement is
        // forced to be uneven; borrowing lets stages overshoot and repay.
        let mut blk = BlockageMap::new(41, 3);
        // Only every 7th column allows insertion.
        for x in 0..41 {
            if x % 7 != 0 {
                for y in 0..3 {
                    blk.block_node(p(x, y));
                }
            }
        }
        let g = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let t = Time::from_ps(260.0);

        let no_borrow = LatchSpec::new(&g, &tech, &lib)
            .source(p(0, 1))
            .sink(p(40, 1))
            .period(t)
            .solve();
        let with_borrow = LatchSpec::new(&g, &tech, &lib)
            .source(p(0, 1))
            .sink(p(40, 1))
            .period(t)
            .borrow_window(Time::from_ps(80.0))
            .solve();
        let wb = with_borrow.expect("borrowing route must exist");
        if let Ok(nb) = no_borrow {
            assert!(
                wb.latch_count() <= nb.latch_count(),
                "borrowing used more latches ({} vs {})",
                wb.latch_count(),
                nb.latch_count()
            );
        }
        // The borrowed solution is genuinely valid.
        let report = wb.path().report(&g, &tech, &lib);
        let stages: Vec<Time> = report.stage_delays().collect();
        assert!(validate_borrowing(&stages, t, Time::from_ps(80.0)));
    }

    #[test]
    fn infeasible_reported() {
        let (g, tech, lib) = setup(8, 500.0);
        let err = LatchSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(7, 7))
            .period(Time::from_ps(30.0))
            .borrow_window(Time::from_ps(5.0))
            .solve()
            .unwrap_err();
        assert_eq!(err, RouteError::NoFeasibleRoute);
    }

    #[test]
    fn invalid_spec_rejected() {
        let (g, tech, lib) = setup(5, 500.0);
        assert_eq!(
            LatchSpec::new(&g, &tech, &lib)
                .source(p(0, 0))
                .sink(p(4, 4))
                .solve()
                .unwrap_err(),
            RouteError::InvalidPeriod
        );
    }
}
