#!/usr/bin/env sh
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from the repo root.
set -eu

cargo build --release
cargo test --workspace -q
cargo clippy --all-targets -- -D warnings
