//! End-to-end CLI-layer tests: scenario text → parser → planner →
//! validated results, plus parser robustness fuzzing.

use clockroute_cli::scenario;
use clockroute_core::drc;
use clockroute_elmore::GateLibrary;
use clockroute_grid::GridGraph;
use clockroute_plan::{NetKind, Planner};
use proptest::prelude::*;

const SCENARIO: &str = "\
die 12mm 12mm
grid 24 24
tech paper

block hard 8 8 14 14
block regkeepout 2 16 8 22

net reg  name=east src=0,11 dst=23,11 period=400
net gals name=south src=11,0 dst=11,23 ts=300 tt=350
net comb name=diag src=0,0 dst=23,23
";

#[test]
fn scenario_plans_and_passes_drc() {
    let s = scenario::parse(SCENARIO).expect("valid scenario");
    let (gw, gh) = s.grid;
    let graph = GridGraph::from_floorplan(&s.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    let plan = Planner::new(graph.clone(), s.tech, lib.clone()).plan(&s.nets);
    assert_eq!(plan.routed().count(), 3, "{:?}", plan.failed().collect::<Vec<_>>());

    // Every routed net passes the full design-rule check for its kind.
    // (Check against the *pre-reservation* grid: reservation mutates the
    // planner's private copy to exclude other nets, not this one.)
    for (net, result) in s.nets.iter().zip(plan.results()) {
        let path = result.path.as_ref().expect("routed");
        let rule = match net.kind {
            NetKind::Combinational => drc::ClockRule::Unconstrained,
            NetKind::Registered { period } => drc::ClockRule::SingleDomain(period),
            NetKind::Gals { t_s, t_t } => drc::ClockRule::TwoDomain { t_s, t_t },
        };
        let violations = drc::check(path, &graph, &s.tech, &lib, rule);
        assert!(
            violations.is_empty(),
            "net {}: {:?}",
            net.name,
            violations
        );
    }
}

#[test]
fn reservation_respected_between_scenario_nets() {
    let s = scenario::parse(SCENARIO).expect("valid scenario");
    let (gw, gh) = s.grid;
    let graph = GridGraph::from_floorplan(&s.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    let plan = Planner::new(graph, s.tech, lib).plan(&s.nets);
    // No two routed nets share an (undirected) edge.
    let mut used = std::collections::HashSet::new();
    for result in plan.routed() {
        for w in result.path.as_ref().expect("routed").points().windows(2) {
            let key = if (w[0].x, w[0].y) <= (w[1].x, w[1].y) {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            assert!(used.insert(key), "edge {key:?} used twice");
        }
    }
}

mod binary {
    //! Tests that drive the compiled `crplan` binary end to end,
    //! including the resilience flags and the fault-injection env hook.

    use std::io::Write;
    use std::process::Command;
    use std::time::Instant;

    fn crplan() -> Command {
        Command::new(env!("CARGO_BIN_EXE_crplan"))
    }

    /// Writes `text` to a unique temp file and returns its path.
    fn scenario_file(tag: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "crplan-e2e-{tag}-{}.cr",
            std::process::id()
        ));
        let mut f = std::fs::File::create(&path).expect("create scenario");
        f.write_all(text.as_bytes()).expect("write scenario");
        path
    }

    const SMALL: &str = "\
die 8mm 8mm
grid 16 16
net comb name=a src=0,0 dst=15,15
net reg  name=b src=0,4 dst=15,4 period=400
";

    #[test]
    fn clean_run_exits_zero_and_reports_every_net() {
        let path = scenario_file("clean", SMALL);
        let out = crplan().arg(&path).output().expect("run crplan");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{stdout}");
        assert!(stdout.contains("a:"), "{stdout}");
        assert!(stdout.contains("b:"), "{stdout}");
        assert!(stdout.contains("(0 degraded)"), "{stdout}");
    }

    #[test]
    fn parse_error_exits_two_with_line_number() {
        let path = scenario_file("badparse", "die 8mm 8mm\ngrid 0 0\nnet comb name=a src=0,0 dst=1,1\n");
        let out = crplan().arg(&path).output().expect("run crplan");
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("line 2"), "{stderr}");
    }

    #[test]
    fn unknown_flag_exits_two_with_usage() {
        let out = crplan().arg("--bogus").output().expect("run crplan");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }

    #[test]
    fn bad_failpoint_spec_exits_two() {
        let path = scenario_file("badfp", SMALL);
        let out = crplan()
            .arg(&path)
            .env("CLOCKROUTE_FAILPOINTS", "fastpath::pop=explode@1")
            .output()
            .expect("run crplan");
        assert_eq!(out.status.code(), Some(2));
        assert!(String::from_utf8_lossy(&out.stderr).contains("CLOCKROUTE_FAILPOINTS"));
    }

    #[test]
    fn forced_noroute_degrades_and_strict_flips_exit_code() {
        let path = scenario_file("strict", SMALL);
        // One-shot: only net `a`'s optimal attempt fails; the coarse
        // retry lands, so the run is degraded-but-successful.
        let out = crplan()
            .arg(&path)
            .env("CLOCKROUTE_FAILPOINTS", "fastpath::pop=noroute@1")
            .output()
            .expect("run crplan");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{stdout}");
        assert!(stdout.contains("degraded"), "{stdout}");

        let out = crplan()
            .arg(&path)
            .arg("--strict")
            .env("CLOCKROUTE_FAILPOINTS", "fastpath::pop=noroute@1")
            .output()
            .expect("run crplan");
        assert_eq!(out.status.code(), Some(1), "strict must fail degraded runs");
    }

    #[test]
    fn forced_panic_is_contained_by_the_planner() {
        let path = scenario_file("panic", SMALL);
        let out = crplan()
            .arg(&path)
            .env("CLOCKROUTE_FAILPOINTS", "fastpath::pop=panic@1")
            .output()
            .expect("run crplan");
        // The process must terminate normally (no abort), with net `a`
        // rescued by a lower rung and net `b` untouched.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.code().is_some(), "process was killed by signal");
        assert!(out.status.success(), "{stdout}");
        assert!(stdout.contains("a:"), "{stdout}");
        assert!(stdout.contains("b:"), "{stdout}");
    }

    /// A congested scenario where routes genuinely compete, so the
    /// parallel scheduler must defer and re-route some nets — the full
    /// report (routes, latencies, wirelengths, summary) must still be
    /// byte-identical to the sequential run.
    const CONGESTED: &str = "\
die 10mm 10mm
grid 20 20
net reg  name=h0 src=0,9 dst=19,9 period=400
net reg  name=v0 src=9,0 dst=9,19 period=400
net reg  name=h1 src=0,10 dst=19,10 period=400
net reg  name=v1 src=10,0 dst=10,19 period=400
net comb name=d0 src=0,0 dst=19,19
";

    #[test]
    fn jobs_flag_does_not_change_the_report() {
        let path = scenario_file("jobs", CONGESTED);
        let run = |jobs: &str| {
            let out = crplan()
                .arg(&path)
                .arg("--jobs")
                .arg(jobs)
                .output()
                .expect("run crplan");
            assert!(out.status.code().is_some(), "killed by signal");
            (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
        };
        let sequential = run("1");
        assert!(sequential.1.contains("h0:"), "{}", sequential.1);
        assert_eq!(sequential, run("2"));
        assert_eq!(sequential, run("4"));
    }

    /// The repo's stress scenario: congested die, one infeasible net, one
    /// GALS crossing — exercises every search stage and the degradation
    /// ladder at once.
    fn stress_scenario() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios/stress.cr")
    }

    /// Unique temp-file path for a run artifact.
    fn artifact(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("crplan-e2e-{tag}-{}", std::process::id()))
    }

    #[test]
    fn metrics_file_is_byte_identical_across_job_counts() {
        let scenario = stress_scenario();
        let run = |jobs: &str, tag: &str| {
            let metrics = artifact(&format!("metrics-{tag}.json"));
            let out = crplan()
                .arg(&scenario)
                .arg("--jobs")
                .arg(jobs)
                .arg("--metrics")
                .arg(&metrics)
                .output()
                .expect("run crplan");
            assert!(out.status.code().is_some(), "killed by signal");
            std::fs::read(&metrics).expect("metrics file written")
        };
        let sequential = run("1", "j1");
        assert_eq!(sequential, run("4", "j4"), "metrics depend on --jobs");
        assert_eq!(sequential, run("1", "j1b"), "metrics not reproducible");
    }

    #[test]
    fn metrics_and_trace_files_are_well_formed() {
        use clockroute_core::telemetry::{validate_json, validate_jsonl};
        let scenario = stress_scenario();
        let metrics = artifact("wellformed.json");
        let trace = artifact("wellformed.jsonl");
        let out = crplan()
            .arg(&scenario)
            .arg("--metrics")
            .arg(&metrics)
            .arg("--trace")
            .arg(&trace)
            .output()
            .expect("run crplan");
        assert!(out.status.code().is_some(), "killed by signal");

        let json = std::fs::read_to_string(&metrics).expect("metrics written");
        validate_json(&json).expect("metrics must be one valid JSON object");
        assert!(json.contains("\"plan.nets.routed\""), "{json}");
        assert!(json.contains("\"search.rbp.pops\""), "{json}");
        assert!(json.contains("\"search.gals.pops\""), "{json}");

        let jsonl = std::fs::read_to_string(&trace).expect("trace written");
        validate_jsonl(&jsonl).expect("trace must be valid JSONL");
        assert!(jsonl.lines().count() > 10, "suspiciously short trace");
        // Trace-only records: spans carry wall-clock, events scheduling.
        assert!(jsonl.contains("\"kind\":\"span\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"event\""), "{jsonl}");
        // And the deterministic stream is in there too.
        assert!(jsonl.contains("\"kind\":\"counter\""), "{jsonl}");
    }

    #[test]
    fn unwritable_metrics_path_exits_two_before_solving() {
        let path = scenario_file("badmetrics", SMALL);
        let start = Instant::now();
        let out = crplan()
            .arg(&path)
            .arg("--metrics")
            .arg("/nonexistent-dir/metrics.json")
            .output()
            .expect("run crplan");
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot create /nonexistent-dir/metrics.json"),
            "{stderr}"
        );
        // The failure is preflighted: nothing was planned first, so no
        // per-net report line reached stdout.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(!stdout.contains("a:"), "solved before failing: {stdout}");
        assert!(start.elapsed().as_secs() < 30, "did not fail fast");
    }

    #[test]
    fn unwritable_trace_path_exits_two() {
        let path = scenario_file("badtrace", SMALL);
        let out = crplan()
            .arg(&path)
            .arg("--trace")
            .arg("/nonexistent-dir/trace.jsonl")
            .output()
            .expect("run crplan");
        assert_eq!(out.status.code(), Some(2));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("cannot create /nonexistent-dir/trace.jsonl"),
            "{stderr}"
        );
    }

    #[test]
    fn crlf_scenario_plans_identically_to_lf() {
        let lf_path = scenario_file("lf", SMALL);
        let crlf_path = scenario_file("crlf", &SMALL.replace('\n', "\r\n"));
        let run = |p: &std::path::Path| {
            let out = crplan().arg(p).arg("--quiet").output().expect("run crplan");
            assert!(out.status.success());
            out.stdout
        };
        assert_eq!(run(&lf_path), run(&crlf_path), "CRLF must not change the plan");
    }

    /// The link `crserve` relies on for its byte-identity contract:
    /// `crplan --quiet` stdout is exactly the shared library renderer's
    /// output (`report::plan_report`). The service crate asserts its
    /// responses embed `plan_report` bytes; together with this test
    /// that makes hit/warm/cold responses byte-identical to the CLI.
    #[test]
    fn quiet_stdout_is_exactly_the_library_report() {
        use clockroute_cli::{report, scenario};
        use clockroute_core::SearchBudget;
        use clockroute_elmore::GateLibrary;
        use clockroute_grid::GridGraph;
        use clockroute_plan::Planner;

        let path = scenario_file("libreport", SMALL);
        let out = crplan().arg(&path).arg("--quiet").output().expect("run crplan");
        assert!(out.status.success());

        let s = scenario::parse(SMALL).expect("parse");
        let (gw, gh) = s.grid;
        let plan = Planner::new(
            GridGraph::from_floorplan(&s.floorplan, gw, gh),
            s.tech,
            GateLibrary::paper_library(),
        )
        .reserve_routes(s.reserve)
        .budget(SearchBudget::unlimited())
        .jobs(1)
        .plan(&s.nets);
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            report::plan_report(&plan),
            "--quiet stdout must be plan_report verbatim"
        );
    }

    #[test]
    fn report_includes_telemetry_summary_table() {
        let scenario = stress_scenario();
        let out = crplan().arg(&scenario).output().expect("run crplan");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("# telemetry"), "{stdout}");
        assert!(stdout.contains("search.rbp.pops"), "{stdout}");
        assert!(stdout.contains("plan.nets.routed"), "{stdout}");
        // --quiet suppresses the table along with the rest of the chrome.
        let out = crplan()
            .arg(&scenario)
            .arg("--quiet")
            .output()
            .expect("run crplan");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(!stdout.contains("# telemetry"), "{stdout}");
    }

    #[test]
    fn bad_jobs_value_exits_two() {
        let path = scenario_file("badjobs", SMALL);
        for bad in ["0", "many", "-1"] {
            let out = crplan()
                .arg(&path)
                .arg("--jobs")
                .arg(bad)
                .output()
                .expect("run crplan");
            assert_eq!(out.status.code(), Some(2), "--jobs {bad}");
            assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
        }
        let out = crplan().arg(&path).arg("--jobs").output().expect("run crplan");
        assert_eq!(out.status.code(), Some(2), "missing value");
    }

    /// A capacitated contention scenario for the flow-mode tests: three
    /// identical-terminal nets on a unit-capacity channel.
    const FLOW_CONGESTED: &str = "\
die 7mm 5mm
grid 7 5
reserve off
capacity default 1
net comb name=s0 src=0,2 dst=6,2
net comb name=s1 src=0,2 dst=6,2
net comb name=s2 src=0,2 dst=6,2
";

    #[test]
    fn flow_only_flags_without_flow_exit_two() {
        let path = scenario_file("flowflags", SMALL);
        for flag in ["--flow-iters", "--flow-seed"] {
            let out = crplan()
                .arg(&path)
                .arg(flag)
                .arg("3")
                .output()
                .expect("run crplan");
            assert_eq!(out.status.code(), Some(2), "{flag} without --flow");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(stderr.contains(&format!("{flag} requires --flow")), "{stderr}");
        }
    }

    #[test]
    fn bad_flow_values_exit_two() {
        let path = scenario_file("badflow", SMALL);
        for args in [
            &["--flow", "--flow-iters", "0"][..],
            &["--flow", "--flow-iters", "many"][..],
            &["--flow", "--flow-seed", "-1"][..],
            &["--flow", "--flow-iters"][..],
        ] {
            let out = crplan().arg(&path).args(args).output().expect("run crplan");
            assert_eq!(out.status.code(), Some(2), "{args:?}");
        }
    }

    /// Satellite guarantee: on an uncongested scenario (no `capacity`
    /// directives) flow mode delegates wholesale, so `--flow --quiet` is
    /// byte-identical to the sequential `--quiet` report.
    #[test]
    fn flow_quiet_equals_sequential_quiet_when_uncongested() {
        let path = scenario_file("flowquiet", SMALL);
        let seq = crplan().arg(&path).arg("--quiet").output().expect("run");
        let flow = crplan()
            .arg(&path)
            .args(["--quiet", "--flow"])
            .output()
            .expect("run");
        assert!(seq.status.success() && flow.status.success());
        assert_eq!(seq.stdout, flow.stdout, "--flow changed an uncongested plan");
    }

    /// Flow plans are a pure function of scenario + seed + iters: the
    /// full report is byte-identical across repeat runs and across
    /// `--jobs` values (a documented no-op under `--flow`).
    #[test]
    fn flow_report_is_byte_identical_across_runs_and_jobs() {
        let path = scenario_file("flowdet", FLOW_CONGESTED);
        let run = |extra: &[&str]| {
            let out = crplan()
                .arg(&path)
                .args(["--flow", "--flow-seed", "7"])
                .args(extra)
                .output()
                .expect("run crplan");
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            out.stdout
        };
        let first = run(&[]);
        assert_eq!(first, run(&[]), "flow run not reproducible");
        assert_eq!(first, run(&["--jobs", "1"]), "--jobs 1 changed the plan");
        assert_eq!(first, run(&["--jobs", "4"]), "--jobs 4 changed the plan");
    }

    /// The congestion section is part of the non-quiet chrome only:
    /// `--quiet` stays exactly the shared `plan_report` surface that
    /// `crserve` byte-matches against.
    #[test]
    fn flow_congestion_section_respects_quiet() {
        let path = scenario_file("flowsection", FLOW_CONGESTED);
        let out = crplan().arg(&path).arg("--flow").output().expect("run");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{stdout}");
        assert!(stdout.contains("congestion:"), "{stdout}");
        let out = crplan()
            .arg(&path)
            .args(["--flow", "--quiet"])
            .output()
            .expect("run");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(!stdout.contains("congestion:"), "{stdout}");
    }

    /// The three shipped congested scenarios must all reach zero
    /// overflow under `--flow` — the flowbench quality gate relies on
    /// them staying solvable.
    #[test]
    fn shipped_congested_scenarios_reach_zero_overflow() {
        for name in ["flow_spread.cr", "flow_bridges.cr", "flow_mesh.cr"] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../scenarios")
                .join(name);
            let out = crplan().arg(&path).arg("--flow").output().expect("run");
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(out.status.success(), "{name}: {stdout}");
            assert!(
                stdout.contains("overflow total 0 max 0"),
                "{name} left overflow: {stdout}"
            );
        }
    }

    #[test]
    fn hostile_scenario_with_budget_terminates_promptly() {
        // Dense blockage maze on a large grid with unmeetable periods:
        // unbudgeted, the RBP searches chew through an enormous candidate
        // space. The 50ms budget must bound every rung, and every net
        // must still be accounted for in the report.
        let mut text = String::from("die 40mm 40mm\ngrid 120 120\n");
        for i in 0..28 {
            let x = 4 * i + 2;
            // Alternating comb walls with one-cell gaps at alternating ends.
            if i % 2 == 0 {
                text.push_str(&format!("block obstacle {x} 0 {x} 117\n"));
            } else {
                text.push_str(&format!("block obstacle {x} 2 {x} 119\n"));
            }
        }
        for n in 0..6 {
            let y = 10 + n * 18;
            text.push_str(&format!(
                "net reg name=n{n} src=0,{y} dst=119,{} period=120\n",
                y + 3
            ));
        }
        let path = scenario_file("hostile", &text);
        let start = Instant::now();
        let out = crplan()
            .arg(&path)
            .arg("--budget-ms")
            .arg("50")
            .output()
            .expect("run crplan");
        let elapsed = start.elapsed();
        let stdout = String::from_utf8_lossy(&out.stdout);
        for n in 0..6 {
            assert!(stdout.contains(&format!("n{n}:")), "missing n{n}: {stdout}");
        }
        // Generous bound for slow CI: 6 nets × 3 rungs × 50ms ≪ 5s.
        assert!(
            elapsed.as_secs() < 5,
            "took {elapsed:?}, budget not enforced"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The parser must never panic, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(text in "\\PC*") {
        let _ = scenario::parse(&text);
    }

    /// Structured-ish garbage: random directives with random arguments.
    #[test]
    fn parser_never_panics_on_directive_soup(
        lines in proptest::collection::vec(
            (
                prop_oneof![
                    Just("die"), Just("grid"), Just("tech"), Just("block"),
                    Just("net"), Just("reserve"), Just("bogus")
                ],
                proptest::collection::vec("[a-z0-9=,.m-]{0,8}", 0..6),
            ),
            0..12,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(d, args)| format!("{d} {}\n", args.join(" ")))
            .collect();
        let _ = scenario::parse(&text);
    }
}
