//! Bounded worker pool for the TCP accept loop.
//!
//! The original listener spawned one thread per accepted connection —
//! unbounded, so a connection flood meant a thread flood regardless of
//! `--max-inflight` (which only gates *solves*, after the thread
//! exists). [`run`] inverts that: a fixed set of workers pulls
//! connections from a bounded [`JobQueue`]; when the queue is full the
//! feeder (the accept loop) blocks, and further connections wait in
//! the OS accept backlog. Memory and thread count are then a function
//! of configuration, not of offered load.
//!
//! Alongside `server.rs` and the planner, this module is an allowed
//! thread-spawn site for crlint CR004 — threads are created in exactly
//! one place here, inside [`run`]'s scope.

use clockroute_core::lockcheck::{LockRank, OrderedCondvar, OrderedMutex};
use std::collections::VecDeque;
use std::thread;

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: `push` blocks while full, `pop` blocks while
/// empty, and [`close`](JobQueue::close) drains then releases every
/// waiter.
///
/// `state` is the *lowest*-ranked lock in the workspace
/// ([`LockRank::Pool`]): it is never held while calling into a job —
/// both waits hold `state` alone, which the lockcheck condvar-purity
/// rule asserts — so pool dispatch can precede every other lock a job
/// goes on to take.
#[derive(Debug)]
pub struct JobQueue<T> {
    state: OrderedMutex<QueueState<T>>,
    /// Signalled when an item arrives or the queue closes.
    added: OrderedCondvar,
    /// Signalled when an item leaves (backpressure release) or closes.
    removed: OrderedCondvar,
    bound: usize,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `bound` queued items (clamped to
    /// at least 1).
    pub fn new(bound: usize) -> JobQueue<T> {
        JobQueue {
            state: OrderedMutex::new(
                LockRank::Pool,
                "pool.state",
                QueueState {
                    items: VecDeque::new(),
                    closed: false,
                },
            ),
            added: OrderedCondvar::new(),
            removed: OrderedCondvar::new(),
            bound: bound.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns
    /// `false` (dropping the item) if the queue closed first.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock();
        while state.items.len() >= self.bound && !state.closed {
            state = self.removed.wait(state);
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.added.notify_one();
        true
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.removed.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.added.wait(state);
        }
    }

    /// Closes the queue: pushes start failing, pops drain what is left
    /// and then return `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.added.notify_all();
        self.removed.notify_all();
    }

    /// Items currently queued (racy snapshot, for telemetry).
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }
}

/// Runs `feed` with a bounded queue drained by `workers` pooled
/// threads, each applying `work` to every item it pops. When `feed`
/// returns, the queue closes, the workers drain what is queued and
/// exit, and `feed`'s result is returned after all workers have
/// joined — so `work` never outlives the borrows `feed` captured.
pub fn run<T, R>(
    workers: usize,
    bound: usize,
    work: impl Fn(T) + Sync,
    feed: impl FnOnce(&JobQueue<T>) -> R,
) -> R
where
    T: Send,
{
    let queue = JobQueue::new(bound);
    thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    work(job);
                }
            });
        }
        let out = feed(&queue);
        queue.close();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn every_pushed_job_runs_exactly_once() {
        let seen = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        run(
            4,
            2,
            |job: usize| {
                seen.fetch_add(1, Ordering::SeqCst);
                sum.fetch_add(job, Ordering::SeqCst);
            },
            |queue| {
                for i in 1..=100 {
                    assert!(queue.push(i));
                }
            },
        );
        assert_eq!(seen.load(Ordering::SeqCst), 100);
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn worker_count_never_exceeds_the_pool_size() {
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        run(
            3,
            64,
            |_job: usize| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            },
            |queue| {
                for i in 0..30 {
                    queue.push(i);
                }
            },
        );
        assert!(peak.load(Ordering::SeqCst) <= 3, "pool is the parallelism cap");
    }

    #[test]
    fn push_blocks_on_a_full_queue_until_a_worker_drains() {
        // One slow worker + bound 1: the feeder must block on the
        // second push and still get every job through.
        let done = AtomicUsize::new(0);
        run(
            1,
            1,
            |_job: usize| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
            },
            |queue| {
                for i in 0..5 {
                    assert!(queue.push(i));
                }
            },
        );
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let queue: JobQueue<u32> = JobQueue::new(4);
        assert!(queue.push(1));
        assert!(queue.push(2));
        queue.close();
        assert!(!queue.push(3), "push after close is refused");
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None, "drained + closed");
        assert_eq!(queue.depth(), 0);
    }
}
