//! Seeded random floorplan generation for tests and benchmarks.
//!
//! The paper's published experiments run on an *empty* 25 mm × 25 mm die;
//! its illustrative figures (Figs. 3, 11) show dies with circuit and wire
//! blockages. Production SoC block maps are proprietary, so this module
//! provides a reproducible synthetic substitute: seeded random block soup
//! with a guaranteed-clear corridor so that a source→sink connection always
//! exists (see `DESIGN.md`, substitution table).

use crate::{BlockKind, Floorplan, Point, Rect};
use crate::units::Length;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable, seeded random floorplan generator.
///
/// ```
/// use clockroute_geom::gen::FloorplanGenerator;
/// use clockroute_geom::Point;
///
/// let fp = FloorplanGenerator::new(40, 40)
///     .blocks(6)
///     .block_size(3, 8)
///     .keepout(Point::new(0, 0))
///     .keepout(Point::new(39, 39))
///     .generate(42);
/// assert_eq!(fp.blocks().len(), 6);
/// // Same seed ⇒ same floorplan.
/// let fp2 = FloorplanGenerator::new(40, 40)
///     .blocks(6)
///     .block_size(3, 8)
///     .keepout(Point::new(0, 0))
///     .keepout(Point::new(39, 39))
///     .generate(42);
/// assert_eq!(fp, fp2);
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanGenerator {
    grid_w: u32,
    grid_h: u32,
    die_w: Length,
    die_h: Length,
    blocks: usize,
    min_size: u32,
    max_size: u32,
    keepouts: Vec<Point>,
    keepout_margin: u32,
    kinds: Vec<BlockKind>,
    allow_overlap: bool,
}

impl FloorplanGenerator {
    /// Creates a generator for a `grid_w × grid_h` die; the physical die
    /// size defaults to the paper's 25 mm × 25 mm.
    ///
    /// # Panics
    ///
    /// Panics if either grid dimension is zero.
    pub fn new(grid_w: u32, grid_h: u32) -> FloorplanGenerator {
        assert!(grid_w > 0 && grid_h > 0, "grid dimensions must be non-zero");
        FloorplanGenerator {
            grid_w,
            grid_h,
            die_w: Length::from_mm(25.0),
            die_h: Length::from_mm(25.0),
            blocks: 8,
            min_size: 2,
            max_size: 10,
            keepouts: Vec::new(),
            keepout_margin: 1,
            kinds: vec![BlockKind::Hard, BlockKind::Obstacle, BlockKind::WiringOnly],
            allow_overlap: false,
        }
    }

    /// Sets the physical die size.
    pub fn die_size(mut self, w: Length, h: Length) -> Self {
        self.die_w = w;
        self.die_h = h;
        self
    }

    /// Number of blocks to place.
    pub fn blocks(mut self, n: usize) -> Self {
        self.blocks = n;
        self
    }

    /// Inclusive range of block side lengths, in grid points.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `min > max`.
    pub fn block_size(mut self, min: u32, max: u32) -> Self {
        assert!(min > 0 && min <= max, "invalid block size range");
        self.min_size = min;
        self.max_size = max;
        self
    }

    /// Adds a grid point that no block may cover (e.g. the source or sink
    /// of the net under study). A margin of [`Self::keepout_margin`] grid
    /// points around the point is kept clear too.
    pub fn keepout(mut self, p: Point) -> Self {
        self.keepouts.push(p);
        self
    }

    /// Clearance (in grid points) kept around each keepout point.
    pub fn keepout_margin(mut self, margin: u32) -> Self {
        self.keepout_margin = margin;
        self
    }

    /// Restricts the kinds of blocks generated.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    pub fn kinds(mut self, kinds: Vec<BlockKind>) -> Self {
        assert!(!kinds.is_empty(), "at least one block kind required");
        self.kinds = kinds;
        self
    }

    /// Allows generated blocks to overlap each other (default: disjoint).
    pub fn allow_overlap(mut self, yes: bool) -> Self {
        self.allow_overlap = yes;
        self
    }

    /// Generates a floorplan deterministically from `seed`.
    ///
    /// Placement uses rejection sampling; if the die is too congested to
    /// fit the requested number of disjoint blocks the generator places as
    /// many as it can within a bounded number of attempts rather than
    /// looping forever.
    pub fn generate(&self, seed: u64) -> Floorplan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fp = Floorplan::new(self.die_w, self.die_h);
        let mut placed: Vec<Rect> = Vec::new();
        let max_attempts = self.blocks * 200 + 200;
        let mut attempts = 0;
        while placed.len() < self.blocks && attempts < max_attempts {
            attempts += 1;
            let w = rng.gen_range(self.min_size..=self.max_size).min(self.grid_w);
            let h = rng.gen_range(self.min_size..=self.max_size).min(self.grid_h);
            let x0 = rng.gen_range(0..=self.grid_w - w);
            let y0 = rng.gen_range(0..=self.grid_h - h);
            let rect = Rect::new(Point::new(x0, y0), Point::new(x0 + w - 1, y0 + h - 1));
            if self.violates_keepout(&rect) {
                continue;
            }
            if !self.allow_overlap && placed.iter().any(|r| r.intersects(&rect)) {
                continue;
            }
            let kind = self.kinds[rng.gen_range(0..self.kinds.len())];
            fp.add_block(rect, kind);
            placed.push(rect);
        }
        fp
    }

    fn violates_keepout(&self, rect: &Rect) -> bool {
        self.keepouts.iter().any(|&p| {
            let zone = Rect::new(p, p).inflate(self.keepout_margin, self.grid_w, self.grid_h);
            rect.intersects(&zone)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let g = FloorplanGenerator::new(30, 30).blocks(5);
        assert_eq!(g.generate(7), g.generate(7));
    }

    #[test]
    fn different_seeds_differ() {
        let g = FloorplanGenerator::new(30, 30).blocks(5);
        assert_ne!(g.generate(1), g.generate(2));
    }

    #[test]
    fn respects_keepouts() {
        let s = Point::new(0, 0);
        let t = Point::new(29, 29);
        let g = FloorplanGenerator::new(30, 30)
            .blocks(10)
            .keepout(s)
            .keepout(t)
            .keepout_margin(2);
        let fp = g.generate(99);
        for b in fp.blocks() {
            assert!(!b.rect.contains(s), "block covers source");
            assert!(!b.rect.contains(t), "block covers sink");
        }
    }

    #[test]
    fn disjoint_by_default() {
        let fp = FloorplanGenerator::new(40, 40).blocks(8).generate(3);
        let blocks = fp.blocks();
        for i in 0..blocks.len() {
            for j in i + 1..blocks.len() {
                assert!(
                    !blocks[i].rect.intersects(&blocks[j].rect),
                    "blocks {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn congested_die_terminates() {
        // Ask for far more blocks than fit disjointly: must not hang, and
        // must place at least one.
        let fp = FloorplanGenerator::new(10, 10)
            .blocks(500)
            .block_size(3, 5)
            .generate(0);
        assert!(!fp.blocks().is_empty());
        assert!(fp.blocks().len() < 500);
    }

    #[test]
    fn restricted_kinds() {
        let fp = FloorplanGenerator::new(30, 30)
            .blocks(6)
            .kinds(vec![BlockKind::Obstacle])
            .generate(11);
        assert!(fp.blocks().iter().all(|b| b.kind == BlockKind::Obstacle));
    }

    #[test]
    fn block_sizes_in_range() {
        let fp = FloorplanGenerator::new(50, 50)
            .blocks(10)
            .block_size(4, 6)
            .generate(5);
        for b in fp.blocks() {
            assert!((4..=6).contains(&b.rect.width()));
            assert!((4..=6).contains(&b.rect.height()));
        }
    }
}
