//! Offline stub of `serde`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched. The workspace only uses `#[derive(Serialize,
//! Deserialize)]` annotations as forward-looking API surface — nothing
//! serializes at runtime — so the traits are empty markers and the
//! derives expand to nothing. Replace `vendor/serde` with the real
//! crate (same version requirement) once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
