//! Interconnect planning: the architectural use-case from the paper's
//! introduction.
//!
//! During floorplanning, an architect needs *cycle-latency estimates* for
//! the global nets between IP blocks so that microarchitectural tradeoffs
//! (e.g. deeper FIFOs, credit counts, speculative wakeup) can hide the
//! communication latency. This example builds a seeded random SoC
//! floorplan, then plans every pairwise link between four IP port sites
//! at two candidate clock frequencies and prints the latency matrix an
//! RTL update would consume.
//!
//! Run with: `cargo run --release --example interconnect_planning`

use clockroute::prelude::*;
use clockroute_geom::gen::FloorplanGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const GRID: u32 = 60; // 25 mm die at ~0.42 mm pitch
    let ports = [
        ("cpu0", Point::new(3, 3)),
        ("l3", Point::new(56, 4)),
        ("ddr", Point::new(4, 55)),
        ("pcie", Point::new(55, 56)),
    ];

    // Seeded synthetic floorplan: 10 macro blocks, ports kept clear.
    let mut generator = FloorplanGenerator::new(GRID, GRID)
        .blocks(10)
        .block_size(5, 14)
        .keepout_margin(2);
    for (_, p) in &ports {
        generator = generator.keepout(*p);
    }
    let fp = generator.generate(2026);
    let graph = GridGraph::from_floorplan(&fp, GRID, GRID);
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();

    println!(
        "floorplan: {} blocks covering {} grid points on a {GRID}×{GRID} grid\n",
        fp.blocks().len(),
        fp.blocked_area()
    );

    for period_ps in [500.0, 250.0] {
        let period = Time::from_ps(period_ps);
        println!("== clock period {period_ps} ps ({:.2} GHz) ==", 1000.0 / period_ps);
        println!(
            "{:<6} {:<6} {:>7} {:>9} {:>9} {:>9} {:>10}",
            "from", "to", "cycles", "regs", "bufs", "wire(mm)", "slack(ps)"
        );
        for (i, &(from, s)) in ports.iter().enumerate() {
            for &(to, t) in ports.iter().skip(i + 1) {
                match RbpSpec::new(&graph, &tech, &lib)
                    .source(s)
                    .sink(t)
                    .period(period)
                    .tie_break(clockroute::core::TieBreak::MaxEndpointSlack)
                    .solve()
                {
                    Ok(sol) => println!(
                        "{:<6} {:<6} {:>7} {:>9} {:>9} {:>9.1} {:>10.0}",
                        from,
                        to,
                        sol.register_count() + 1,
                        sol.register_count(),
                        sol.buffer_count(),
                        sol.path().wirelength(&graph).mm(),
                        (sol.source_slack() + sol.sink_slack()).ps(),
                    ),
                    Err(e) => println!("{from:<6} {to:<6} unroutable: {e}"),
                }
            }
        }
        println!();
    }

    println!("(cycles = registers + 1; the RTL model adds that many pipeline stages per link)");
    Ok(())
}
