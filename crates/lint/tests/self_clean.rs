//! The tool runs on itself: the workspace must be crlint-clean, every
//! suppression must carry a reason, and the `--json` output must
//! satisfy the same dependency-free JSON checker the e2e suite uses
//! for `--metrics` files.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_crlint_clean() {
    let findings = clockroute_lint::run_workspace(workspace_root()).expect("walk");
    assert!(
        findings.is_empty(),
        "the workspace must be crlint-clean; fix or suppress-with-reason:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_zero_and_emits_valid_json_on_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--workspace", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn crlint");
    assert!(out.status.success(), "expected exit 0: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    clockroute_core::telemetry::validate_json(&json).expect("crlint --json must be valid JSON");
    assert!(json.contains("\"findings\":[]"), "clean tree: {json}");
}

#[test]
fn binary_exits_one_and_emits_valid_deterministic_json_on_findings() {
    // A throwaway tree with one known violation per scoped location.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crlint_bad_ws");
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    )
    .expect("write fixture tree");

    let run = || {
        Command::new(env!("CARGO_BIN_EXE_crlint"))
            .args(["--workspace", "--json", "--root"])
            .arg(&dir)
            .output()
            .expect("spawn crlint")
    };
    let out = run();
    assert_eq!(out.status.code(), Some(1), "findings must exit 1: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    clockroute_core::telemetry::validate_json(&json).expect("valid JSON with findings");
    assert!(json.contains("\"rule\":\"CR002\""), "{json}");
    assert!(json.contains("\"path\":\"crates/core/src/bad.rs\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
    // Deterministic: byte-identical across runs.
    let again = String::from_utf8(run().stdout).expect("utf8");
    assert_eq!(json, again, "crlint --json must be byte-stable");
}

#[test]
fn binary_exits_two_on_internal_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--no-such-flag"])
        .output()
        .expect("spawn crlint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
