//! The tool runs on itself: the workspace must be crlint-clean, every
//! suppression must carry a reason, and the `--json` output must
//! satisfy the same dependency-free JSON checker the e2e suite uses
//! for `--metrics` files.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_crlint_clean() {
    let findings = clockroute_lint::run_workspace(workspace_root()).expect("walk");
    assert!(
        findings.is_empty(),
        "the workspace must be crlint-clean; fix or suppress-with-reason:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_zero_and_emits_valid_json_on_clean_tree() {
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--workspace", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn crlint");
    assert!(out.status.success(), "expected exit 0: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    clockroute_core::telemetry::validate_json(&json).expect("crlint --json must be valid JSON");
    assert!(json.contains("\"findings\":[]"), "clean tree: {json}");
}

#[test]
fn binary_exits_one_and_emits_valid_deterministic_json_on_findings() {
    // A throwaway tree with one known violation per scoped location.
    // Sparse trees fail the allowlist staleness gate by construction,
    // so it is skipped here — it has its own test below.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crlint_bad_ws");
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    )
    .expect("write fixture tree");

    let run = || {
        Command::new(env!("CARGO_BIN_EXE_crlint"))
            .args(["--workspace", "--json", "--no-allowlist-check", "--root"])
            .arg(&dir)
            .output()
            .expect("spawn crlint")
    };
    let out = run();
    assert_eq!(out.status.code(), Some(1), "findings must exit 1: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8");
    clockroute_core::telemetry::validate_json(&json).expect("valid JSON with findings");
    assert!(json.contains("\"rule\":\"CR002\""), "{json}");
    assert!(json.contains("\"path\":\"crates/core/src/bad.rs\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
    // Deterministic: byte-identical across runs.
    let again = String::from_utf8(run().stdout).expect("utf8");
    assert_eq!(json, again, "crlint --json must be byte-stable");
}

#[test]
fn binary_exits_two_on_internal_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--no-such-flag"])
        .output()
        .expect("spawn crlint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn workspace_allowlists_are_not_stale() {
    let dead = clockroute_lint::check_allowlists(workspace_root());
    assert!(
        dead.is_empty(),
        "rule allowlists reference paths that no longer exist — a file \
         moved without updating crates/lint/src/rules.rs:\n{}",
        dead.join("\n")
    );
}

#[test]
fn binary_exits_two_naming_the_dead_allowlist_entry() {
    // A sparse tree is missing (almost) every allowlisted path; the
    // staleness gate must refuse to declare such a tree clean, naming
    // a dead entry so the fix is obvious.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crlint_stale_ws");
    std::fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir");
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--workspace", "--root"])
        .arg(&dir)
        .output()
        .expect("spawn crlint");
    assert_eq!(out.status.code(), Some(2), "stale allowlist must exit 2: {out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("CR007: crates/service/src/frame.rs"),
        "error must name the dead entry: {stderr}"
    );
}

#[test]
fn explain_covers_every_rule_and_reaches_the_json() {
    // Every rule ID has both a one-liner and a full --explain text.
    for rule in clockroute_lint::rules::RULE_IDS {
        assert!(
            clockroute_lint::rules::explain_line(rule).is_some(),
            "{rule} has no one-line explanation"
        );
        let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
            .args(["--explain", rule])
            .output()
            .expect("spawn crlint");
        assert!(out.status.success(), "--explain {rule}: {out:?}");
        let text = String::from_utf8(out.stdout).expect("utf8");
        assert!(text.contains(rule), "--explain {rule} must name the rule");
        assert!(
            rule == "CR000" || text.contains("crlint-allow"),
            "--explain {rule} must show the suppression syntax: {text}"
        );
    }
    // Unknown rules are an internal error, not silence.
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--explain", "CR999"])
        .output()
        .expect("spawn crlint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // The one-liner rides along in machine output: lint a tree with a
    // known finding and check the `explain` field validates as JSON.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("crlint_explain_ws");
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("bad.rs"),
        "fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    )
    .expect("write fixture tree");
    let out = Command::new(env!("CARGO_BIN_EXE_crlint"))
        .args(["--workspace", "--json", "--no-allowlist-check", "--root"])
        .arg(&dir)
        .output()
        .expect("spawn crlint");
    let json = String::from_utf8(out.stdout).expect("utf8");
    clockroute_core::telemetry::validate_json(&json).expect("json with explain field");
    assert!(
        json.contains("\"explain\":\"unwrap/expect in core crates"),
        "{json}"
    );
}
