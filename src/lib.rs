//! # clockroute
//!
//! Optimal simultaneous **routing + buffer insertion + synchronizer
//! insertion** for single- and multiple-clock-domain system-on-chip
//! designs — a from-scratch Rust reproduction of
//!
//! > S. Hassoun and C. J. Alpert, *“Optimal Path Routing in Single- and
//! > Multiple-Clock Domain Systems”*, IEEE Trans. Computer-Aided Design,
//! > vol. 22, 2003.
//!
//! The workspace implements three optimal polynomial-time dynamic-
//! programming algorithms over a routing grid graph with physical and
//! wiring blockages:
//!
//! * **fast path** — minimum Elmore-delay buffered path (Zhou et al.,
//!   the framework the paper builds on);
//! * **RBP** — minimum cycle-latency *registered*-buffered path in a
//!   single clock domain (paper Problem 1, Fig. 5);
//! * **GALS** — minimum-latency path crossing two clock domains through a
//!   mixed-clock FIFO with relay stations (paper Problem 2, Fig. 12).
//!
//! This crate is a facade that re-exports the workspace layers:
//!
//! | Layer | Crate | Contents |
//! |-------|-------|----------|
//! | geometry | [`geom`] | units, points, rectangles, blockage maps, floorplans |
//! | electrical | [`elmore`] | technology, gate models, Elmore delay engine |
//! | grid | [`grid`] | routing grid graph, baseline maze routing, rendering |
//! | algorithms | [`core`] | fast path, RBP, GALS, latch extension, oracles |
//! | protocol | [`sim`] | discrete-event simulation of the synthesized routes |
//! | planning | [`plan`] | sequential multi-net planning with resource reservation |
//! | batch routing | [`flow`] | congestion-aware multicommodity-flow batch mode |
//! | trees | [`tree`] | Cocchini-style register/repeater insertion on routing trees |
//!
//! # Quick start
//!
//! Route a net across a 10 mm die at a 300 ps clock, inserting buffers and
//! registers optimally:
//!
//! ```
//! use clockroute::prelude::*;
//!
//! // 40×40 grid over a 10 mm × 10 mm die (0.25 mm pitch).
//! let fp = Floorplan::new(Length::from_mm(10.0), Length::from_mm(10.0));
//! let graph = GridGraph::from_floorplan(&fp, 40, 40);
//! let tech = Technology::paper_070nm();
//! let lib = GateLibrary::paper_library();
//!
//! let spec = RbpSpec::new(&graph, &tech, &lib)
//!     .source(Point::new(0, 0))
//!     .sink(Point::new(39, 39))
//!     .period(Time::from_ps(300.0));
//! let solution = spec.solve().expect("a feasible route exists");
//! println!(
//!     "latency {} using {} registers and {} buffers",
//!     solution.latency(),
//!     solution.register_count(),
//!     solution.buffer_count()
//! );
//! # assert!(solution.register_count() > 0);
//! ```

pub use clockroute_core as core;
pub use clockroute_elmore as elmore;
pub use clockroute_geom as geom;
pub use clockroute_flow as flow;
pub use clockroute_grid as grid;
pub use clockroute_plan as plan;
pub use clockroute_tree as tree;
pub use clockroute_sim as sim;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use clockroute_core::{
        EngineKind, FastPathSpec, GalsSolution, GalsSpec, RbpSolution, RbpSpec, RouteError,
        RoutedPath, SearchStats,
    };
    pub use clockroute_elmore::{Gate, GateId, GateKind, GateLibrary, Technology};
    pub use clockroute_geom::units::{Capacitance, Length, Resistance, Time};
    pub use clockroute_geom::{BlockKind, BlockageMap, Floorplan, Point, Rect};
    pub use clockroute_grid::{GridGraph, GridPath};
}
