# Stress scenario: congested die, one net is intentionally unroutable at
# its period (crplan exits non-zero and reports which).
die 20mm 20mm
grid 80 80
tech paper

block hard 20 20 40 60
block hard 50 10 70 30
block wiring 45 45 75 75
block regkeepout 0 40 15 79

net reg  name=fast_bus src=2,2   dst=77,77 period=300
net reg  name=too_fast src=2,77  dst=77,2  period=45    # infeasible at 0.25mm pitch
net gals name=bridge   src=40,2  dst=40,77 ts=250 tt=350
