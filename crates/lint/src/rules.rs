//! The rule set. Every rule is traceable to a bug class that PRs 1–3
//! fixed by hand; see DESIGN.md §11 for the full motivation table.
//!
//! Rules operate on the lexed token stream of one file
//! ([`crate::scan::FileCtx`]) and append [`Finding`]s. Suppression
//! (`// crlint-allow: CRxxx reason`) is applied afterwards by the
//! runner in [`crate::lib`], so rules stay suppression-agnostic.

use crate::scan::FileCtx;
use crate::{Finding, Severity};

/// All rule IDs, in report order.
pub const RULE_IDS: [&str; 11] = [
    "CR000", "CR001", "CR002", "CR003", "CR004", "CR005", "CR006", "CR007", "CR008", "CR009",
    "CR010",
];

/// Crates whose non-test code must be panic-free (`unwrap`/`expect`):
/// the algorithmic core that the degradation ladder must be able to
/// trust (PR 1 wrapped it in `catch_unwind` precisely because it could
/// not).
const CR002_CRATES: [&str; 6] = [
    "crates/core/src/",
    "crates/grid/src/",
    "crates/elmore/src/",
    "crates/geom/src/",
    "crates/plan/src/",
    "crates/flow/src/",
];

/// The only files allowed to read wall clocks: the budget meter (that
/// is its job), the telemetry module (span durations), and the service
/// admission gate (deadline budgets and request timers — timings feed
/// `service.*` metrics, never response bytes). Everything else must
/// route timing through one of those seams or carry an explicit
/// suppression — the `--jobs` byte-identity contract depends on no
/// other nondeterministic clock reads reaching an output.
const CR003_ALLOWED_FILES: [&str; 3] = [
    "crates/core/src/budget.rs",
    "crates/core/src/telemetry.rs",
    "crates/service/src/admission.rs",
];

/// The only places allowed to create threads: the speculative-commit
/// planner, the service's connection loop, and the service's bounded
/// worker pool (which drains accepted connections from a bounded
/// queue; each request is still solved by the planner's audited
/// protocol). Searches must stay single-threaded and cancellable.
const CR004_THREAD_PATHS: [&str; 3] = [
    "crates/plan/src/",
    "crates/service/src/server.rs",
    "crates/service/src/pool.rs",
];

/// The label-correcting search modules whose queue loops must be
/// budget-cancellable (the PR 2 promptness bug: expansion/promotion
/// loops that never sampled the deadline). The flow oracle's priced
/// Dijkstra joined the list in PR 10.
const CR005_FILES: [&str; 5] = [
    "crates/core/src/fastpath.rs",
    "crates/core/src/rbp.rs",
    "crates/core/src/gals.rs",
    "crates/core/src/latch.rs",
    "crates/flow/src/price.rs",
];

/// Report/serialization modules whose output is byte-compared across
/// `--jobs`: unordered collections are banned outright (not just their
/// iteration — a `HashMap` that is only probed today becomes one that
/// is iterated tomorrow).
const CR006_FILES: [&str; 17] = [
    "crates/grid/src/render.rs",
    "crates/flow/src/lib.rs",
    "crates/flow/src/report.rs",
    "crates/core/src/telemetry.rs",
    "crates/core/src/result.rs",
    "crates/cli/src/lib.rs",
    "crates/cli/src/main.rs",
    "crates/cli/src/scenario.rs",
    "crates/bench/src/lib.rs",
    "crates/service/src/protocol.rs",
    "crates/service/src/cache.rs",
    "crates/service/src/keys.rs",
    "crates/service/src/server.rs",
    "crates/service/src/shard.rs",
    "crates/service/src/pool.rs",
    "crates/service/src/persist.rs",
    "crates/service/src/frame.rs",
];

/// The one file allowed to read raw bytes off an untrusted stream: the
/// bounded frame reader itself, whose whole job is to impose the
/// length and time bounds that CR007 demands of everyone else.
const CR007_EXEMPT_FILES: [&str; 1] = ["crates/service/src/frame.rs"];

/// The threaded crates where CR008–CR010 enforce lock discipline:
/// every lock must be a ranked `lockcheck` wrapper so the runtime rank
/// checker covers the whole process — one raw `Mutex` is a hole in the
/// deadlock-freedom proof.
const CR008_THREADED_PATHS: [&str; 3] = [
    "crates/core/src/",
    "crates/plan/src/",
    "crates/service/src/",
];

/// The one module allowed to touch `std::sync` primitives directly:
/// the checked-lock wrapper itself (exempt from CR008–CR010 — it *is*
/// the seam the rules force everyone else through).
const CR008_EXEMPT_FILES: [&str; 1] = ["crates/core/src/lockcheck.rs"];

/// Every hardcoded scope/allowlist, paired with the rule it serves.
/// Entries ending in `/` are directory prefixes, the rest are files;
/// [`crate::check_allowlists`] fails the whole run when one no longer
/// exists on disk — a moved file must move its allowlist entry in the
/// same commit, or the rule it configured silently stops applying.
pub fn allowlists() -> Vec<(&'static str, &'static [&'static str])> {
    vec![
        ("CR002", &CR002_CRATES),
        ("CR003", &CR003_ALLOWED_FILES),
        ("CR004", &CR004_THREAD_PATHS),
        ("CR005", &CR005_FILES),
        ("CR006", &CR006_FILES),
        ("CR007", &CR007_EXEMPT_FILES),
        ("CR008", &CR008_THREADED_PATHS),
        ("CR008", &CR008_EXEMPT_FILES),
    ]
}

/// Shared scope test for the three lock-discipline rules.
fn in_lock_discipline_scope(ctx: &FileCtx) -> bool {
    CR008_THREADED_PATHS.iter().any(|p| ctx.rel.starts_with(p))
        && !CR008_EXEMPT_FILES.contains(&ctx.rel.as_str())
}

/// Runs every rule over one file.
pub fn check_file(ctx: &FileCtx, out: &mut Vec<Finding>) {
    cr001_partial_cmp(ctx, out);
    cr002_unwrap(ctx, out);
    cr003_wall_clock(ctx, out);
    cr004_threads(ctx, out);
    cr005_uncharged_loops(ctx, out);
    cr006_unordered_collections(ctx, out);
    cr007_unbounded_reads(ctx, out);
    cr008_raw_sync_primitives(ctx, out);
    cr009_lock_construction_and_guards(ctx, out);
    cr010_wait_with_extra_guards(ctx, out);
}

fn finding(ctx: &FileCtx, rule: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        severity: Severity::Error,
        path: ctx.rel.clone(),
        line,
        message,
    }
}

/// CR001 — NaN-unsound orderings (the PR 2 heap bug).
///
/// Two patterns fire:
/// 1. any `.partial_cmp(` call in non-test code — on `f64` keys it
///    returns `None` for NaN and callers invariably `unwrap` or treat
///    `None` as `Equal`, silently corrupting heap order;
/// 2. an `impl PartialOrd for …` block that does not delegate to a
///    total order (`self.cmp(…)` or `f64::total_cmp`). The canonical
///    allowed pattern is `QueueEntry` in `crates/core/src/engine.rs`
///    and `HeapEntry` in `crates/grid/src/dijkstra.rs`.
fn cr001_partial_cmp(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        // Pattern 1: `.partial_cmp(`.
        if ctx.sym(i, '.')
            && ctx.ident(i + 1) == Some("partial_cmp")
            && ctx.sym(i + 2, '(')
            && !ctx.in_test(ctx.line_of(i + 1))
        {
            out.push(finding(
                ctx,
                "CR001",
                ctx.line_of(i + 1),
                "NaN-unsound `.partial_cmp(` call on an ordering key; use \
                 `f64::total_cmp` or delegate to a total `Ord` impl \
                 (canonical pattern: QueueEntry in crates/core/src/engine.rs)"
                    .to_string(),
            ));
        }
        // Pattern 2: `impl … PartialOrd … for … { … }` without a
        // total-order delegation in the body.
        if ctx.ident(i) == Some("impl") {
            if let Some((open, line)) = partial_ord_impl_header(ctx, i) {
                if ctx.in_test(line) {
                    continue;
                }
                let close = ctx.matching_brace(open);
                let mut delegates = false;
                for j in open..close {
                    if ctx.ident(j) == Some("total_cmp") {
                        delegates = true;
                        break;
                    }
                    if ctx.ident(j) == Some("self")
                        && ctx.sym(j + 1, '.')
                        && ctx.ident(j + 2) == Some("cmp")
                        && ctx.sym(j + 3, '(')
                    {
                        delegates = true;
                        break;
                    }
                }
                if !delegates {
                    out.push(finding(
                        ctx,
                        "CR001",
                        line,
                        "hand-rolled `PartialOrd` impl does not delegate to a \
                         total order; write `Some(self.cmp(other))` over an \
                         `Ord` impl built on `f64::total_cmp`"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// If token `i` (`impl`) opens a `PartialOrd` *trait impl* (not a
/// generic bound), returns the index of its `{` and the header line.
fn partial_ord_impl_header(ctx: &FileCtx, i: usize) -> Option<(usize, u32)> {
    let mut angle = 0i64;
    let mut saw_trait = false;
    let mut saw_for = false;
    for j in (i + 1)..ctx.tokens.len() {
        if ctx.sym(j, '<') {
            angle += 1;
        } else if ctx.sym(j, '>') {
            angle -= 1;
        } else if ctx.sym(j, ';') {
            return None;
        } else if ctx.sym(j, '{') {
            return (saw_trait && saw_for).then_some((j, ctx.line_of(i)));
        } else if angle == 0 && ctx.ident(j) == Some("PartialOrd") {
            saw_trait = true;
        } else if angle == 0 && ctx.ident(j) == Some("for") && saw_trait {
            saw_for = true;
        }
    }
    None
}

/// CR002 — `.unwrap()` / `.expect(` in non-test code of the algorithmic
/// crates. Extends core's old `deny(clippy::unwrap_used)` (now hoisted
/// to `[workspace.lints]`) with `expect`, which clippy left legal: a
/// panic anywhere in the solve path escapes into the degradation
/// ladder's `catch_unwind` and turns an explainable error into a
/// `Degradation::PanicIsolated`.
fn cr002_unwrap(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !CR002_CRATES.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.sym(i, '.') {
            continue;
        }
        let Some(name) = ctx.ident(i + 1) else {
            continue;
        };
        if (name == "unwrap" || name == "expect") && ctx.sym(i + 2, '(') {
            let line = ctx.line_of(i + 1);
            if ctx.in_test(line) {
                continue;
            }
            out.push(finding(
                ctx,
                "CR002",
                line,
                format!(
                    "`.{name}(` in non-test core-path code can panic into the \
                     degradation ladder; return a `RouteError` or suppress \
                     with a proof the value is always present"
                ),
            ));
        }
    }
}

/// CR003 — wall-clock reads outside the budget/telemetry seams.
/// Determinism guard for the byte-identical `--jobs` contract: a clock
/// read that influences anything byte-compared is a heisenbug factory.
fn cr003_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if CR003_ALLOWED_FILES.contains(&ctx.rel.as_str()) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if (name == "Instant" || name == "SystemTime")
            && ctx.path_sep(i + 1)
            && ctx.ident(i + 3) == Some("now")
            && ctx.sym(i + 4, '(')
            && !ctx.in_test(ctx.line_of(i))
        {
            out.push(finding(
                ctx,
                "CR003",
                ctx.line_of(i),
                format!(
                    "`{name}::now()` outside budget.rs/telemetry.rs; route \
                     timing through `SearchBudget` or a telemetry span, or \
                     suppress with a reason the value never reaches \
                     deterministic output"
                ),
            ));
        }
    }
}

/// CR004 — the race-audit rule: thread creation is confined to the
/// planner (whose speculative-commit protocol is the one audited
/// concurrency seam), and `static mut` is banned outright.
fn cr004_threads(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let thread_ok = CR004_THREAD_PATHS.iter().any(|p| ctx.rel.starts_with(p));
    for i in 0..ctx.tokens.len() {
        if ctx.ident(i) == Some("thread")
            && ctx.path_sep(i + 1)
            && matches!(ctx.ident(i + 3), Some("spawn" | "scope"))
            && !thread_ok
            && !ctx.in_test(ctx.line_of(i))
        {
            out.push(finding(
                ctx,
                "CR004",
                ctx.line_of(i),
                "thread creation outside crates/plan; parallelism must go \
                 through the planner's speculative-commit protocol"
                    .to_string(),
            ));
        }
        // `static mut` is unsound to even audit for; flagged in tests too.
        if ctx.ident(i) == Some("static") && ctx.ident(i + 1) == Some("mut") {
            out.push(finding(
                ctx,
                "CR004",
                ctx.line_of(i),
                "`static mut` is banned; use an atomic, a lock, or \
                 `thread_local!`"
                    .to_string(),
            ));
        }
    }
}

/// CR005 — the promptness rule (the PR 2 bug where expansion/promotion
/// loops between pops never sampled the wall-clock deadline): every
/// `loop`/`while` body in the four search modules that pops or pushes
/// queue entries must contain a budget `charge*` call so the search
/// stays cancellable from inside the loop.
fn cr005_uncharged_loops(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !CR005_FILES.contains(&ctx.rel.as_str()) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let header = match ctx.ident(i) {
            Some("loop") => ctx.sym(i + 1, '{').then_some(i + 1),
            Some("while") => ctx.next_block_open(i + 1),
            _ => None,
        };
        let Some(open) = header else { continue };
        let line = ctx.line_of(i);
        if ctx.in_test(line) {
            continue;
        }
        let close = ctx.matching_brace(open);
        let mut queue_op = false;
        let mut charged = false;
        for j in open..close {
            if let Some(name) = ctx.ident(j) {
                if name.starts_with("charge") && ctx.sym(j + 1, '(') {
                    charged = true;
                }
            }
            if ctx.sym(j, '.')
                && matches!(ctx.ident(j + 1), Some("pop" | "push"))
                && ctx.sym(j + 2, '(')
            {
                if let Some(recv) = ctx.receiver_of(j) {
                    if is_queue_name(recv) {
                        queue_op = true;
                    }
                }
            }
        }
        // A `while let Some(c) = queue.pop()` condition also counts:
        // the pop sits between the `while` and the `{`.
        for j in i..open {
            if ctx.sym(j, '.') && matches!(ctx.ident(j + 1), Some("pop" | "push")) {
                if let Some(recv) = ctx.receiver_of(j) {
                    if is_queue_name(recv) {
                        queue_op = true;
                    }
                }
            }
        }
        if queue_op && !charged {
            out.push(finding(
                ctx,
                "CR005",
                line,
                "search loop pops/pushes queue entries without a budget \
                 `charge`/`charge_expand` call; the deadline is never \
                 sampled inside this loop (PR 2 promptness bug)"
                    .to_string(),
            ));
        }
    }
}

/// Receiver names that denote search queues/heaps in the four modules.
fn is_queue_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("queue") || lower.contains("heap") || lower == "spill" || lower == "qstar"
}

/// CR006 — unordered collections in report/serialization modules.
/// `MetricsRecorder` aggregates are `--jobs`-independent only because
/// every map that reaches an output iterates in sorted order.
fn cr006_unordered_collections(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !CR006_FILES.contains(&ctx.rel.as_str()) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if (name == "HashMap" || name == "HashSet") && !ctx.in_test(ctx.line_of(i)) {
            out.push(finding(
                ctx,
                "CR006",
                ctx.line_of(i),
                format!(
                    "`{name}` in a report/serialization module iterates in \
                     nondeterministic order; use `BTreeMap`/`BTreeSet` (the \
                     report is byte-compared across `--jobs`)"
                ),
            ));
        }
    }
}

/// CR007 — unbounded reads of untrusted streams in the service crate.
/// The denial-of-service audit: `BufRead::read_line`, `read_to_end`,
/// `read_to_string` and `BufRead::lines` buffer until the *peer*
/// decides to stop, so one hostile connection can exhaust memory or
/// pin a drain forever. Every network- or stdin-facing read in
/// `crates/service` must go through `frame::FrameReader`, which
/// enforces the configured line bound and surfaces read timeouts as
/// idle polls.
fn cr007_unbounded_reads(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.rel.starts_with("crates/service/src/")
        || CR007_EXEMPT_FILES.contains(&ctx.rel.as_str())
    {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if !matches!(
            name,
            "read_to_end" | "read_to_string" | "read_line" | "lines"
        ) {
            continue;
        }
        // Method call (`.lines(`) or UFCS (`Read::read_to_string(`);
        // a bare local fn sharing the name is out of scope.
        let dotted = i >= 1 && ctx.sym(i - 1, '.');
        let pathed = i >= 2 && ctx.path_sep(i - 2);
        if !ctx.sym(i + 1, '(') || !(dotted || pathed) || ctx.in_test(ctx.line_of(i)) {
            continue;
        }
        out.push(finding(
            ctx,
            "CR007",
            ctx.line_of(i),
            format!(
                "`{name}(` reads an untrusted stream with no length bound; \
                 go through `frame::FrameReader` (the audited read seam) or \
                 suppress with a proof the source is trusted and finite"
            ),
        ));
    }
}

/// CR008 — raw `std::sync` lock construction in the threaded crates.
/// A `Mutex`/`RwLock`/`Condvar` built outside `lockcheck.rs` is
/// invisible to the rank checker: it can deadlock against the ranked
/// locks without any runtime assert ever firing, so the deadlock-
/// freedom argument of DESIGN.md §16 only holds if this never happens.
fn cr008_raw_sync_primitives(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !in_lock_discipline_scope(ctx) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        if matches!(name, "Mutex" | "RwLock" | "Condvar")
            && ctx.path_sep(i + 1)
            && ctx.ident(i + 3) == Some("new")
            && ctx.sym(i + 4, '(')
            && !ctx.in_test(ctx.line_of(i))
        {
            out.push(finding(
                ctx,
                "CR008",
                ctx.line_of(i),
                format!(
                    "raw `{name}::new(` in a threaded crate bypasses the rank \
                     checker; use `lockcheck::OrderedMutex`/`OrderedCondvar` \
                     so the lock joins the workspace lock order"
                ),
            ));
        }
    }
}

/// Guard type names whose appearance anywhere in scope means a lock
/// guard is being stored, returned, or otherwise given a non-lexical
/// lifetime.
const CR009_GUARD_TYPES: [&str; 4] = [
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "OrderedGuard",
];

/// CR009 — lock-construction and guard-lifetime discipline. Three
/// patterns fire:
/// 1. `OrderedMutex::new(` whose first argument is not a literal
///    `LockRank::` path — the lattice must be greppable, not computed;
/// 2. a `return` statement whose expression calls `.lock(` — the guard
///    escapes the function, so its hold time is no longer visible at
///    the acquisition site;
/// 3. any guard *type name* ([`CR009_GUARD_TYPES`]) — naming the type
///    is how guards end up in struct fields and signatures.
fn cr009_lock_construction_and_guards(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !in_lock_discipline_scope(ctx) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        let Some(name) = ctx.ident(i) else { continue };
        let line = ctx.line_of(i);
        if ctx.in_test(line) {
            continue;
        }
        // Pattern 1: `OrderedMutex::new(<not LockRank::...>`.
        if name == "OrderedMutex"
            && ctx.path_sep(i + 1)
            && ctx.ident(i + 3) == Some("new")
            && ctx.sym(i + 4, '(')
            && !(ctx.ident(i + 5) == Some("LockRank") && ctx.path_sep(i + 6))
        {
            out.push(finding(
                ctx,
                "CR009",
                line,
                "`OrderedMutex::new(` must name its rank as a literal \
                 `LockRank::…` so the whole lattice is greppable; a computed \
                 rank hides the lock order from review"
                    .to_string(),
            ));
        }
        // Pattern 2: `return …/.lock(…` before the statement's `;`.
        if name == "return" {
            let mut depth = 0i64;
            for j in (i + 1)..ctx.tokens.len() {
                if ctx.sym(j, '(') || ctx.sym(j, '[') || ctx.sym(j, '{') {
                    depth += 1;
                } else if ctx.sym(j, ')') || ctx.sym(j, ']') || ctx.sym(j, '}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if ctx.sym(j, ';') && depth == 0 {
                    break;
                } else if ctx.sym(j, '.')
                    && ctx.ident(j + 1) == Some("lock")
                    && ctx.sym(j + 2, '(')
                {
                    out.push(finding(
                        ctx,
                        "CR009",
                        ctx.line_of(j + 1),
                        "returning a `.lock(` guard gives it a non-lexical \
                         lifetime; do the guarded work here and return the \
                         data, so hold times stay visible at the acquire site"
                            .to_string(),
                    ));
                    break;
                }
            }
        }
        // Pattern 3: a guard type name in non-test code.
        if CR009_GUARD_TYPES.contains(&name) {
            out.push(finding(
                ctx,
                "CR009",
                line,
                format!(
                    "`{name}` named outside lockcheck.rs: storing or passing \
                     guards detaches their lifetime from the acquiring scope; \
                     keep guards as local `let` bindings"
                ),
            ));
        }
    }
}

/// CR010 — condvar waits while other guards are live. Walks the token
/// stream with a brace-depth tracker, registering every `let`-bound
/// `.lock(` guard at its depth and dropping it on `drop(name)` or when
/// its scope closes; a `.wait(`/`.wait_timeout(` whose first argument
/// is not the *only* live binding fires.
///
/// This is the static shadow of the runtime condvar-purity check
/// (which also catches guards this walker cannot see: `if let`
/// scrutinee temporaries, guards threaded through helper calls).
fn cr010_wait_with_extra_guards(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !in_lock_discipline_scope(ctx) {
        return;
    }
    let mut depth = 0i64;
    let mut live: Vec<(i64, String)> = Vec::new();
    let mut i = 0;
    while i < ctx.tokens.len() {
        if ctx.sym(i, '{') {
            depth += 1;
        } else if ctx.sym(i, '}') {
            depth -= 1;
            live.retain(|&(d, _)| d <= depth);
        } else if ctx.ident(i) == Some("let")
            && !(i >= 1 && matches!(ctx.ident(i - 1), Some("if" | "while")))
        {
            // `let [mut] name = …;` — register `name` if the
            // initializer calls `.lock(`. (`if let`/`while let`
            // scrutinee temporaries are the runtime check's job.)
            let mut j = i + 1;
            if ctx.ident(j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ctx.ident(j) {
                if name != "_" && ctx.sym(j + 1, '=') {
                    let mut nest = 0i64;
                    let mut locked = false;
                    let mut k = j + 2;
                    while k < ctx.tokens.len() {
                        if ctx.sym(k, '(') || ctx.sym(k, '[') || ctx.sym(k, '{') {
                            nest += 1;
                        } else if ctx.sym(k, ')') || ctx.sym(k, ']') || ctx.sym(k, '}') {
                            nest -= 1;
                            if nest < 0 {
                                break;
                            }
                        } else if ctx.sym(k, ';') && nest == 0 {
                            break;
                        } else if ctx.sym(k, '.')
                            && ctx.ident(k + 1) == Some("lock")
                            && ctx.sym(k + 2, '(')
                        {
                            locked = true;
                        }
                        k += 1;
                    }
                    if locked && !ctx.in_test(ctx.line_of(i)) {
                        live.retain(|(_, n)| n != name); // rebind shadows
                        live.push((depth, name.to_string()));
                    }
                }
            }
        } else if ctx.ident(i) == Some("drop")
            && ctx.sym(i + 1, '(')
            && ctx.sym(i + 3, ')')
        {
            if let Some(name) = ctx.ident(i + 2) {
                live.retain(|(_, n)| n != name);
            }
        } else if ctx.sym(i, '.')
            && matches!(ctx.ident(i + 1), Some("wait" | "wait_timeout"))
            && ctx.sym(i + 2, '(')
        {
            let line = ctx.line_of(i + 1);
            if !ctx.in_test(line) {
                let waited = ctx.ident(i + 3);
                let extras: Vec<&str> = live
                    .iter()
                    .map(|(_, n)| n.as_str())
                    .filter(|n| Some(*n) != waited)
                    .collect();
                if !extras.is_empty() {
                    out.push(finding(
                        ctx,
                        "CR010",
                        line,
                        format!(
                            "condvar wait while guard(s) [{}] are still live; \
                             a wait parks every lock the thread holds for an \
                             unbounded time — drop them first",
                            extras.join(", ")
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

/// One-line rationale per rule, embedded in every `--json` finding so
/// CI annotations can say *why* without a second lookup. `None` for
/// unknown rule IDs.
pub fn explain_line(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "CR000" => "source file failed to lex; the other rules could not run on it",
        "CR001" => "partial_cmp on float keys is NaN-unsound; delegate to total_cmp",
        "CR002" => "unwrap/expect in core crates can panic mid-solve; return errors",
        "CR003" => "wall-clock reads outside the budget/telemetry seams break --jobs byte-identity",
        "CR004" => "thread creation outside the audited planner/service seams evades the commit protocol",
        "CR005" => "search loops must sample the budget every iteration or deadlines go unenforced",
        "CR006" => "unordered collections in report paths make output order nondeterministic",
        "CR007" => "untrusted streams must go through the bounded frame reader or a peer can OOM the service",
        "CR008" => "raw std::sync locks bypass the rank checker; use lockcheck::OrderedMutex",
        "CR009" => "lock ranks must be literal and guards lexical, or the rank lattice is unauditable",
        "CR010" => "a condvar wait parks every held lock for unbounded time; drop other guards first",
        _ => return None,
    })
}

/// Full `--explain CRxxx` text: what the rule bans, the motivating
/// bug, and how to suppress it where the ban is wrong. `None` for
/// unknown rule IDs.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "CR000" => {
            "CR000 — lex failure.\n\
             \n\
             The file could not be tokenized (unterminated string or\n\
             block comment), so none of the other rules ran on it. This\n\
             is always a real problem: a file crlint cannot read is a\n\
             file it cannot vouch for.\n\
             \n\
             Motivating bug: none — this is the analyzer's own integrity\n\
             check.\n\
             \n\
             Suppression: not suppressible; fix the file."
        }
        "CR001" => {
            "CR001 — NaN-unsound orderings.\n\
             \n\
             Bans `.partial_cmp(` in non-test code and `PartialOrd`\n\
             impls that do not delegate to a total order. On f64 keys\n\
             `partial_cmp` returns None for NaN; callers unwrap it or\n\
             map None to Equal, silently corrupting heap order.\n\
             \n\
             Motivating bug: PR 2's search heap returned suboptimal\n\
             routes when a degraded cost went NaN — the BinaryHeap\n\
             invariant broke without panicking. Use `f64::total_cmp`.\n\
             \n\
             Suppression: `// crlint-allow: CR001 <reason>` on or above\n\
             the line."
        }
        "CR002" => {
            "CR002 — panics in the algorithmic core.\n\
             \n\
             Bans `unwrap`/`expect` in non-test code of the core crates\n\
             (see the CR002 allowlist). The degradation ladder must be\n\
             able to trust that a solve returns an error instead of\n\
             unwinding mid-search.\n\
             \n\
             Motivating bug: PR 1 wrapped the planner in catch_unwind\n\
             precisely because the core could panic; the rule makes the\n\
             wrapper a second line of defense instead of the only one.\n\
             \n\
             Suppression: `// crlint-allow: CR002 <reason>` — used where\n\
             an invariant genuinely guarantees Some/Ok (say why)."
        }
        "CR003" => {
            "CR003 — wall-clock reads outside the timing seams.\n\
             \n\
             Bans `Instant::now`/`SystemTime::now` outside the budget\n\
             meter, telemetry, and the admission gate. Everything else\n\
             must be a pure function of its inputs so `--jobs N` output\n\
             is byte-identical.\n\
             \n\
             Motivating bug: PR 3's parallel runner diffed report bytes\n\
             across job counts; a stray timestamp in a report path is\n\
             exactly the nondeterminism that contract forbids.\n\
             \n\
             Suppression: `// crlint-allow: CR003 <reason>`, or add the\n\
             file to CR003_ALLOWED_FILES if it is a new timing seam."
        }
        "CR004" => {
            "CR004 — thread creation outside audited seams.\n\
             \n\
             Bans `thread::spawn`/`Builder::new` outside the speculative\n\
             planner and the service's accept loop and worker pool.\n\
             Searches stay single-threaded and cancellable; concurrency\n\
             lives behind the audited commit protocol.\n\
             \n\
             Motivating bug: the PR 3 speculation design review — a\n\
             thread spawned inside a search can outlive its budget and\n\
             write into freed scratch.\n\
             \n\
             Suppression: `// crlint-allow: CR004 <reason>`, or extend\n\
             CR004_THREAD_PATHS for a new audited seam."
        }
        "CR005" => {
            "CR005 — uncharged search loops.\n\
             \n\
             In the four label-correcting search modules, every\n\
             `while let Some(...) = ...pop` loop must call the budget\n\
             charge/poll in its body, or a blown deadline is never\n\
             noticed.\n\
             \n\
             Motivating bug: PR 2's promptness fix — expansion and\n\
             promotion loops ran arbitrarily long past the deadline\n\
             because only the outer loop sampled it.\n\
             \n\
             Suppression: `// crlint-allow: CR005 <reason>` for loops\n\
             that provably cannot run unbounded."
        }
        "CR006" => {
            "CR006 — unordered collections in report paths.\n\
             \n\
             Bans HashMap/HashSet (construction *or* type mention) in\n\
             modules whose output is byte-compared across `--jobs`. A\n\
             map that is only probed today becomes one that is iterated\n\
             tomorrow; BTreeMap/BTreeSet cost little and order\n\
             deterministically.\n\
             \n\
             Motivating bug: PR 3's `--jobs` byte-identity test — hash\n\
             iteration order varies per process, so one HashMap in a\n\
             render path fails the diff nondeterministically.\n\
             \n\
             Suppression: `// crlint-allow: CR006 <reason>`."
        }
        "CR007" => {
            "CR007 — unbounded reads from untrusted streams.\n\
             \n\
             Bans `read_line`/`read_to_end`/`read_to_string` on sockets\n\
             and stdio outside the bounded frame reader. A peer that\n\
             never sends a newline must cost a bounded buffer, not the\n\
             process.\n\
             \n\
             Motivating bug: PR 6's crash-safety review — the original\n\
             line reader allocated without limit on attacker-controlled\n\
             input.\n\
             \n\
             Suppression: `// crlint-allow: CR007 <reason>`, or route\n\
             the read through `frame::FrameReader`."
        }
        "CR008" => {
            "CR008 — raw std::sync primitives in threaded crates.\n\
             \n\
             Bans `Mutex::new`/`RwLock::new`/`Condvar::new` outside\n\
             `core/src/lockcheck.rs` in the threaded crates. Every lock\n\
             must be a ranked `OrderedMutex`/`OrderedCondvar` so the\n\
             runtime rank checker sees the whole process: one raw Mutex\n\
             is a hole in the deadlock-freedom argument, because a cycle\n\
             through it is invisible to the checker.\n\
             \n\
             Motivating bug: PR 8's shard review — the single-flight\n\
             protocol nests pending inside cache locks; a refactor that\n\
             inverted the nesting would deadlock only under load, which\n\
             is exactly when it would first run.\n\
             \n\
             Suppression: `// crlint-allow: CR008 <reason>` — reserved\n\
             for locks provably never held across another acquire."
        }
        "CR009" => {
            "CR009 — non-literal ranks and escaping guards.\n\
             \n\
             Three patterns: (1) `OrderedMutex::new` whose first\n\
             argument is not a literal `LockRank::...` — computed ranks\n\
             defeat grep-auditability of the lattice; (2) `return` of an\n\
             expression containing `.lock(` — a guard that escapes its\n\
             acquiring function detaches hold time from lexical scope;\n\
             (3) naming a guard type (`MutexGuard`, `OrderedGuard`, ...)\n\
             in a signature or field, which is how guards get stored.\n\
             \n\
             Motivating bug: the lockcheck design itself — the runtime\n\
             checker's reports are only legible if every rank in the\n\
             program can be found by grepping for `LockRank::`.\n\
             \n\
             Suppression: `// crlint-allow: CR009 <reason>`."
        }
        "CR010" => {
            "CR010 — condvar wait with other guards live.\n\
             \n\
             A `wait`/`wait_timeout` call releases only the waited lock;\n\
             every other guard the thread holds stays locked for the\n\
             entire (unbounded) park. The walker tracks let-bound\n\
             `.lock(` guards per scope and fires when a wait happens\n\
             while any other named guard is live.\n\
             \n\
             This is the static shadow of the runtime check\n\
             (`OrderedCondvar::wait` asserts the held-rank stack is\n\
             exactly the waited rank, catching guards this walker cannot\n\
             see).\n\
             \n\
             Motivating bug: the shard single-flight wait loop — waiting\n\
             on `done` while holding a cache guard would stall every\n\
             reader of that shard behind a parked thread.\n\
             \n\
             Suppression: `// crlint-allow: CR010 <reason>`."
        }
        _ => return None,
    })
}
