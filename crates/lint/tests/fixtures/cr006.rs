// Fixture: CR006 — unordered collections in report/serialization code.
// BAD (line 3): HashMap import alone is flagged in report modules.
use std::collections::HashMap;

fn summarize(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v}\n"));
    }
    // BAD (line 11): HashSet mention.
    let _seen: std::collections::HashSet<u32> = Default::default();
    out
}
