//! Core-substrate benchmark: per-search wall-clock and effort counters
//! for the legacy and arena engines, appended as JSONL rows to
//! `BENCH_core.json` at the workspace root.
//!
//! Each run times the fast-path search and two register-bound RBP
//! searches (periods derived from the measured fast-path optimum, so
//! they scale with the grid) on every requested grid, for both engines.
//! Rows carry the full counter set so future PRs can diff substrate
//! performance as a trajectory; the first rows ever appended came from
//! the pre-rewrite substrate.
//!
//! Usage:
//!   cargo run --release -p clockroute-bench --bin corebench [-- --grids 60,100,200]
//!   cargo run --release -p clockroute-bench --bin corebench -- --check
//!
//! `--check` is the CI gate wired into `scripts/check.sh`: it re-runs
//! the arena engine on small grids (60 and 100), compares pops against
//! the most recent matching `BENCH_core.json` rows, and fails if any
//! search popped more than 10% over its recorded baseline. Bootstrap
//! runs (no baseline row yet) pass. Check mode never appends.

use clockroute_core::{EngineKind, FastPathSpec, RbpSpec, SearchStats};
use clockroute_elmore::{GateLibrary, Technology};
use clockroute_geom::units::{Length, Time};
use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use std::io::Write;

const BENCH_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");

/// Fractions of the fast-path optimal delay used as RBP periods: tight
/// enough to force several pipeline waves on every grid size — the
/// register-bound regime the paper's RBP experiments target.
const RBP_PERIOD_FRACTIONS: [f64; 2] = [0.13, 0.06];

/// Allowed relative pops growth before `--check` fails.
const CHECK_TOLERANCE: f64 = 0.10;

struct Instance {
    graph: GridGraph,
    tech: Technology,
    lib: GateLibrary,
    src: Point,
    dst: Point,
}

/// The paper's 25 mm die at an `n × n` grid granularity, with terminals
/// pulled in from opposite corners so routes cross most of the die.
fn instance(n: u32) -> Instance {
    let pitch = 25_000.0 / f64::from(n - 1) * 0.8;
    Instance {
        graph: GridGraph::open(n, n, Length::from_um(pitch)),
        tech: Technology::paper_070nm(),
        lib: GateLibrary::paper_library(),
        src: Point::new(n / 10, n / 10),
        dst: Point::new(n - 1 - n / 10, n - 1 - n / 10),
    }
}

struct Row {
    engine: &'static str,
    grid: u32,
    search: &'static str,
    period: Option<f64>,
    stats: SearchStats,
    seconds: f64,
}

impl Row {
    fn to_json(&self) -> String {
        let period = match self.period {
            Some(p) => format!("{p:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"bench\":\"core\",\"engine\":\"{}\",\"grid\":{},\"search\":\"{}\",\"period\":{},\"pops\":{},\"pushed\":{},\"pruned\":{},\"stale\":{},\"goal_pruned\":{},\"max_queue\":{},\"arena_bytes\":{},\"seconds\":{:.6}}}",
            self.engine,
            self.grid,
            self.search,
            period,
            self.stats.configs,
            self.stats.pushed,
            self.stats.pruned,
            self.stats.stale_skipped,
            self.stats.goal_pruned,
            self.stats.max_queue,
            self.stats.arena_bytes(),
            self.seconds,
        )
    }
}

fn run_fastpath(inst: &Instance, engine: EngineKind) -> (SearchStats, f64, f64) {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = std::time::Instant::now();
    let sol = FastPathSpec::new(&inst.graph, &inst.tech, &inst.lib)
        .source(inst.src)
        .sink(inst.dst)
        .engine(engine)
        .solve()
        .expect("fast-path route on an open grid");
    let seconds = start.elapsed().as_secs_f64();
    (*sol.stats(), seconds, sol.delay().ps())
}

fn run_rbp(inst: &Instance, engine: EngineKind, period: f64) -> (SearchStats, f64) {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = std::time::Instant::now();
    let sol = RbpSpec::new(&inst.graph, &inst.tech, &inst.lib)
        .source(inst.src)
        .sink(inst.dst)
        .period(Time::from_ps(period))
        .engine(engine)
        .solve()
        .expect("rbp route at a fraction of the fast-path optimum");
    let seconds = start.elapsed().as_secs_f64();
    (*sol.stats(), seconds)
}

/// Runs the full search suite on one grid for one engine. The fast-path
/// optimum (engine-independent) anchors the RBP periods.
fn run_grid(grid: u32, engine: EngineKind, name: &'static str, rows: &mut Vec<Row>) {
    let inst = instance(grid);
    let (stats, seconds, delay) = run_fastpath(&inst, engine);
    rows.push(Row {
        engine: name,
        grid,
        search: "fastpath",
        period: None,
        stats,
        seconds,
    });
    for (i, frac) in RBP_PERIOD_FRACTIONS.iter().enumerate() {
        let period = delay * frac;
        let (stats, seconds) = run_rbp(&inst, engine, period);
        rows.push(Row {
            engine: name,
            grid,
            search: if i == 0 { "rbp_loose" } else { "rbp_tight" },
            period: Some(period),
            stats,
            seconds,
        });
    }
}

fn append_rows(rows: &[Row]) {
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(BENCH_PATH)
        .and_then(|mut f| {
            for row in rows {
                writeln!(f, "{}", row.to_json())?;
            }
            Ok(())
        });
    if let Err(e) = appended {
        eprintln!("warning: cannot append to BENCH_core.json: {e}");
    }
}

/// Extracts an integer field from a JSONL row without a JSON parser —
/// the writer above controls the format.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn field_matches(line: &str, key: &str, value: &str) -> bool {
    line.contains(&format!("\"{key}\":\"{value}\""))
}

/// Most recent recorded pops for (engine, grid, search), if any.
fn baseline_pops(contents: &str, engine: &str, grid: u32, search: &str) -> Option<u64> {
    contents
        .lines()
        .filter(|l| {
            field_matches(l, "engine", engine)
                && field_matches(l, "search", search)
                && field_u64(l, "grid") == Some(u64::from(grid))
        })
        .next_back()
        .and_then(|l| field_u64(l, "pops"))
}

/// CI gate: arena pops on small grids must not regress more than 10%
/// against the last recorded rows. Returns process exit code.
fn check() -> i32 {
    let contents = std::fs::read_to_string(BENCH_PATH).unwrap_or_default();
    let mut rows = Vec::new();
    for grid in [60, 100] {
        run_grid(grid, EngineKind::Arena, "arena", &mut rows);
    }
    let mut failures = 0;
    for row in &rows {
        match baseline_pops(&contents, row.engine, row.grid, row.search) {
            Some(base) => {
                let limit = (base as f64 * (1.0 + CHECK_TOLERANCE)).ceil() as u64;
                let verdict = if row.stats.configs > limit {
                    failures += 1;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "check {} grid={} {}: pops={} baseline={} limit={} {}",
                    row.engine, row.grid, row.search, row.stats.configs, base, limit, verdict
                );
            }
            None => println!(
                "check {} grid={} {}: pops={} (no baseline, bootstrap pass)",
                row.engine, row.grid, row.search, row.stats.configs
            ),
        }
    }
    if failures > 0 {
        eprintln!("corebench --check: {failures} search(es) regressed >10% in pops");
        return 1;
    }
    println!("corebench --check: pops within 10% of baseline");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        std::process::exit(check());
    }
    let grids: Vec<u32> = args
        .iter()
        .position(|a| a == "--grids")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').filter_map(|g| g.parse().ok()).collect())
        .unwrap_or_else(|| vec![60, 100, 200]);

    let mut rows = Vec::new();
    for &grid in &grids {
        for (engine, name) in [
            (EngineKind::Legacy, "legacy"),
            (EngineKind::Arena, "arena"),
        ] {
            run_grid(grid, engine, name, &mut rows);
        }
    }
    println!(
        "{:<8} {:>5} {:<9} {:>10} {:>10} {:>11} {:>9} {:>10}",
        "engine", "grid", "search", "period", "pops", "goal_pruned", "maxQ", "seconds"
    );
    for row in &rows {
        println!(
            "{:<8} {:>5} {:<9} {:>10} {:>10} {:>11} {:>9} {:>10.4}",
            row.engine,
            row.grid,
            row.search,
            row.period.map_or("-".to_string(), |p| format!("{p:.0}")),
            row.stats.configs,
            row.stats.goal_pruned,
            row.stats.max_queue,
            row.seconds,
        );
    }
    append_rows(&rows);
    println!("appended {} rows to BENCH_core.json", rows.len());
}
