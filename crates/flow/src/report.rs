//! Flow-mode telemetry summary and the congestion/overflow report
//! section.
//!
//! Everything here is keyed and iterated through `BTreeMap` (crlint
//! CR006): the rendered section is part of `crplan`'s non-quiet output
//! and must be byte-identical across runs and `--jobs` values.

use clockroute_grid::EdgeKey;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How the flow run produced its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowMode {
    /// No edge anywhere had a finite capacity, so the run delegated
    /// wholesale to the sequential planner (byte-identical output).
    Delegated,
    /// The capacitated price-directed pipeline ran.
    Priced,
}

/// Per-round congestion statistics of the fractional phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: u32,
    /// Sum over capacitated edges of `max(0, usage − cap)`.
    pub total_overflow: u64,
    /// Worst single-edge overflow.
    pub max_overflow: u32,
}

/// Everything the flow run learned about congestion, for reporting and
/// benchmarking.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Delegated or priced.
    pub mode: FlowMode,
    /// Fractional rounds actually run.
    pub rounds: u32,
    /// Multiplicative price updates applied across all rounds.
    pub price_updates: u64,
    /// Rip-up-and-reroute operations in the integralization phase.
    pub ripups: u64,
    /// The rounding seed the integralization used.
    pub seed: u64,
    /// `true` when a `SearchBudget` deadline cut a phase short (the
    /// plan still completes via the degradation ladder).
    pub budget_exhausted: bool,
    /// Best (lowest) total overflow seen across fractional rounds — the
    /// duality-style lower-bound tracker: the integral solution cannot
    /// beat the best fractional round by more than the rounding gap.
    pub best_fractional_overflow: Option<u64>,
    /// Per-round fractional congestion.
    pub round_stats: Vec<RoundStats>,
    /// Final total overflow of the integral plan's actual routes.
    pub total_overflow: u64,
    /// Final worst single-edge overflow.
    pub max_overflow: u32,
    /// Final overloaded edges: canonical key → `(usage, cap)`.
    pub overloaded: BTreeMap<EdgeKey, (u32, u32)>,
}

impl FlowSummary {
    /// The summary of a wholesale delegation to the sequential planner.
    pub fn delegated(seed: u64) -> FlowSummary {
        FlowSummary {
            mode: FlowMode::Delegated,
            rounds: 0,
            price_updates: 0,
            ripups: 0,
            seed,
            budget_exhausted: false,
            best_fractional_overflow: None,
            round_stats: Vec::new(),
            total_overflow: 0,
            max_overflow: 0,
            overloaded: BTreeMap::new(),
        }
    }

    /// `true` when every capacitated edge ended within its capacity.
    pub fn is_feasible(&self) -> bool {
        self.total_overflow == 0
    }

    /// Renders the congestion/overflow section appended to the plan
    /// report in flow mode. Deterministic: overloaded edges iterate in
    /// canonical key order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.mode {
            FlowMode::Delegated => {
                out.push_str("congestion: unconstrained (delegated to sequential planner)\n");
            }
            FlowMode::Priced => {
                let _ = writeln!(
                    out,
                    "congestion: rounds {} | price updates {} | rip-ups {} | overflow total {} max {}{}",
                    self.rounds,
                    self.price_updates,
                    self.ripups,
                    self.total_overflow,
                    self.max_overflow,
                    if self.budget_exhausted {
                        " | budget exhausted"
                    } else {
                        ""
                    },
                );
                for (&(ax, ay, bx, by), &(usage, cap)) in &self.overloaded {
                    let _ = writeln!(
                        out,
                        "  overloaded ({ax}, {ay})-({bx}, {by}): usage {usage} > cap {cap}"
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegated_render_is_one_line() {
        let s = FlowSummary::delegated(7);
        assert!(s.is_feasible());
        assert_eq!(
            s.render(),
            "congestion: unconstrained (delegated to sequential planner)\n"
        );
    }

    #[test]
    fn priced_render_lists_overloads_in_key_order() {
        let mut overloaded = BTreeMap::new();
        overloaded.insert((5, 1, 5, 2), (3, 1));
        overloaded.insert((0, 0, 1, 0), (4, 2));
        let s = FlowSummary {
            mode: FlowMode::Priced,
            rounds: 4,
            price_updates: 9,
            ripups: 2,
            seed: 0,
            budget_exhausted: false,
            best_fractional_overflow: Some(1),
            round_stats: vec![RoundStats {
                round: 0,
                total_overflow: 5,
                max_overflow: 3,
            }],
            total_overflow: 4,
            max_overflow: 2,
            overloaded,
        };
        assert!(!s.is_feasible());
        let text = s.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "congestion: rounds 4 | price updates 9 | rip-ups 2 | overflow total 4 max 2"
        );
        // Canonical key order: (0,0)-(1,0) before (5,1)-(5,2).
        assert_eq!(lines[1], "  overloaded (0, 0)-(1, 0): usage 4 > cap 2");
        assert_eq!(lines[2], "  overloaded (5, 1)-(5, 2): usage 3 > cap 1");
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        let s = FlowSummary {
            budget_exhausted: true,
            mode: FlowMode::Priced,
            ..FlowSummary::delegated(0)
        };
        assert!(s.render().contains("budget exhausted"));
    }
}
