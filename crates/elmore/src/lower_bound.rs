//! Admissible Elmore lower bounds for buffered-chain traversal.
//!
//! The core searches explore candidates `(c, d)` whose eventual completion
//! must still traverse wire toward the stage driver (source gate or a
//! register).  This module computes a **per-edge rate** `u` (ps per grid
//! edge) such that *every* realizable buffered chain covering `m` edges of
//! one axis costs at least `u·m` picoseconds under the Elmore model — no
//! matter how many buffers the search inserts or where it places them.
//! The searches use `u` for goal pruning: a candidate whose delay plus the
//! rate-weighted remaining Manhattan distance provably exceeds the best
//! known completion (fast path) or the clock period budget of the
//! remaining pipeline stages (RBP) can be discarded *before* it is pushed,
//! without ever discarding a candidate that could participate in the
//! returned optimum.
//!
//! # Admissibility argument
//!
//! Split any chain (driver gate, wire, optional repeaters, terminating
//! load) into *segments*: each segment is one driver `τ` plus the wire it
//! drives up to the next element.  Under the Elmore π-model a segment of
//! `m` same-axis edges (edge resistance `R_e` Ω, edge capacitance `C_e`
//! fF) driven by `τ = (R_τ, K_τ)` into a next-element input capacitance
//! `C_next` costs exactly
//!
//! ```text
//! d(τ, m) = K_τ + R_τ·(m·C_e + C_next)·1e-3
//!         + R_e·C_e·m²/2·1e-3 + m·R_e·C_next·1e-3        (ps)
//! ```
//!
//! Every next-element input capacitance the search can produce is at least
//! `C_min` (the minimum input capacitance over the gate library and the
//! sink gate; candidate loads only ever *add* wire to a gate input), so
//! `d(τ, m) ≥ K'_τ + slope_τ·m + a·m²` with `K'_τ = K_τ + R_τ·C_min·1e-3`,
//! `slope_τ = (R_τ·C_e + R_e·C_min)·1e-3` and `a = R_e·C_e·1e-3/2`.
//! Minimizing `d(τ, m)/m` over *real* `m > 0` (a relaxation of the
//! grid-quantized segment lengths, hence still a lower bound) gives the
//! per-edge rate
//!
//! ```text
//! u_τ = slope_τ + 2·√(K'_τ·a)
//! ```
//!
//! and `u = min_τ u_τ` over every driver the search can deploy (source
//! gate, register, each buffer).  Summing over the segments of a chain
//! yields `delay ≥ u·(total edges)`; mixed-axis chains are handled by
//! splitting each segment's constant `K'_τ` between the axes with a fixed
//! share `λ` (callers pass `λ = 1` when both axes have identical edge
//! parameters — a mixed segment is then indistinguishable from a
//! same-axis one — and `λ = ½` otherwise).  Dropped cross terms
//! (`R_e·C` between axes, loads above `C_min`) are all non-negative, so
//! the bound never overestimates.
//!
//! On the paper's 70 nm parameters (single 180 Ω / 23.4 fF / 36.4 ps
//! buffer, 1.39 Ω/µm, 0.01 fF/µm) the rate works out to ≈67.9 ps/mm
//! against a measured optimally-buffered rate of ≈68.0 ps/mm — the bound
//! is within 0.2 % of reality, which is what makes goal pruning effective
//! rather than decorative.

/// A driver the search may place at the head of a chain segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverModel {
    /// Driver resistance `R(τ)` in Ω.
    pub res_ohms: f64,
    /// Intrinsic delay `K(τ)` in ps.
    pub intrinsic_ps: f64,
}

/// One grid edge's wire parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeModel {
    /// Edge resistance `R_e` in Ω.
    pub res_ohms: f64,
    /// Edge capacitance `C_e` in fF.
    pub cap_ff: f64,
}

/// Admissible per-edge traversal rate in ps (see module docs).
///
/// `min_load_ff` is the minimum input capacitance any segment can
/// terminate into; `intrinsic_share` is the fraction `λ` of each driver's
/// per-segment constant charged to this axis (1.0 when both axes share
/// identical edge parameters, 0.5 otherwise).
///
/// Returns 0.0 (a trivially admissible rate) when the inputs cannot
/// support a positive bound — empty driver list or non-finite/negative
/// parameters — so callers never have to special-case degenerate
/// libraries.
pub fn edge_rate(
    drivers: &[DriverModel],
    edge: EdgeModel,
    min_load_ff: f64,
    intrinsic_share: f64,
) -> f64 {
    let positive = |x: f64| x.is_finite() && x > 0.0;
    let well_formed = positive(edge.res_ohms)
        && positive(edge.cap_ff)
        && min_load_ff.is_finite()
        && min_load_ff >= 0.0
        && positive(intrinsic_share)
        && intrinsic_share <= 1.0;
    if !well_formed {
        return 0.0;
    }
    let a = edge.res_ohms * edge.cap_ff * 1.0e-3 / 2.0;
    let mut best = f64::INFINITY;
    for d in drivers {
        let driver_ok =
            positive(d.res_ohms) && d.intrinsic_ps.is_finite() && d.intrinsic_ps >= 0.0;
        if !driver_ok {
            return 0.0;
        }
        let k_eff = (d.intrinsic_ps + d.res_ohms * min_load_ff * 1.0e-3) * intrinsic_share;
        let slope = (d.res_ohms * edge.cap_ff + edge.res_ohms * min_load_ff) * 1.0e-3;
        let rate = slope + 2.0 * (k_eff * a).sqrt();
        if rate < best {
            best = rate;
        }
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_driver() -> DriverModel {
        DriverModel {
            res_ohms: 180.0,
            intrinsic_ps: 36.4,
        }
    }

    fn paper_edge(pitch_um: f64) -> EdgeModel {
        EdgeModel {
            res_ohms: 1.39 * pitch_um,
            cap_ff: 0.0100 * pitch_um,
        }
    }

    #[test]
    fn paper_rate_close_to_measured_optimum() {
        // The measured optimally-buffered rate on the paper die is
        // ≈68.0 ps/mm (fast path: 2719.8 ps over 40 mm).  The bound must
        // stay below it but within a few percent.
        let rate = edge_rate(&[paper_driver()], paper_edge(250.0), 23.4, 1.0);
        let per_mm = rate * 4.0; // 4 edges of 250 µm per mm
        assert!(per_mm < 68.0, "must be admissible: {per_mm}");
        assert!(per_mm > 66.0, "should be tight: {per_mm}");
    }

    #[test]
    fn rate_is_pitch_stable() {
        // The per-µm rate barely depends on grid pitch: the bound models a
        // continuous buffered line, not the discretization.
        let r1 = edge_rate(&[paper_driver()], paper_edge(125.0), 23.4, 1.0) / 125.0;
        let r2 = edge_rate(&[paper_driver()], paper_edge(500.0), 23.4, 1.0) / 500.0;
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn best_driver_wins() {
        let weak = DriverModel {
            res_ohms: 1000.0,
            intrinsic_ps: 80.0,
        };
        let strong = paper_driver();
        let both = edge_rate(&[weak, strong], paper_edge(250.0), 23.4, 1.0);
        let only_strong = edge_rate(&[strong], paper_edge(250.0), 23.4, 1.0);
        assert_eq!(both, only_strong);
    }

    #[test]
    fn split_share_lowers_rate() {
        let full = edge_rate(&[paper_driver()], paper_edge(250.0), 23.4, 1.0);
        let half = edge_rate(&[paper_driver()], paper_edge(250.0), 23.4, 0.5);
        assert!(half < full);
        assert!(half > 0.0);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_zero() {
        assert_eq!(edge_rate(&[], paper_edge(250.0), 23.4, 1.0), 0.0);
        let bad_edge = EdgeModel {
            res_ohms: 0.0,
            cap_ff: 1.0,
        };
        assert_eq!(edge_rate(&[paper_driver()], bad_edge, 23.4, 1.0), 0.0);
        let bad_driver = DriverModel {
            res_ohms: -1.0,
            intrinsic_ps: 0.0,
        };
        assert_eq!(
            edge_rate(&[bad_driver], paper_edge(250.0), 23.4, 1.0),
            0.0
        );
    }

    #[test]
    fn zero_load_is_weaker_than_real_load() {
        let with_load = edge_rate(&[paper_driver()], paper_edge(250.0), 23.4, 1.0);
        let no_load = edge_rate(&[paper_driver()], paper_edge(250.0), 0.0, 1.0);
        assert!(no_load < with_load);
    }
}
