//! Chip floorplans: die outline + placed IP / macro blocks.

use crate::units::Length;
use crate::{BlockageMap, Point, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a placed block constrains routing resources above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// A hard macro: blocks gate insertion *and* removes routing edges.
    /// (Both a physical obstacle and a wiring blockage.)
    Hard,
    /// A placement obstacle only (`p(v) = 0`): wires may cross (e.g. on
    /// upper metal), but no buffer or synchronizer may be dropped inside.
    /// This models routing *over* IP blocks and memories.
    Obstacle,
    /// A wiring blockage only (e.g. a datapath whose routing tracks are
    /// fully used): gates may be placed at the boundary nodes, but edges
    /// internal to the region are removed.
    WiringOnly,
    /// A clock-congested region: only registers/synchronizers are banned
    /// (the paper's register-blockage extension); buffers and wires are
    /// unaffected.
    RegisterKeepout,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Hard => "hard",
            BlockKind::Obstacle => "obstacle",
            BlockKind::WiringOnly => "wiring-only",
            BlockKind::RegisterKeepout => "register-keepout",
        };
        f.write_str(s)
    }
}

/// A block placed on the floorplan, in grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedBlock {
    /// Footprint in grid coordinates.
    pub rect: Rect,
    /// Blockage semantics.
    pub kind: BlockKind,
}

/// A chip floorplan: physical die dimensions plus a list of placed blocks.
///
/// The floorplan is described in *grid coordinates*; the physical pitch is
/// derived at [`rasterize`](Floorplan::rasterize) time from the die size and
/// the requested grid resolution, mirroring the paper's experiments (a
/// 25 mm × 25 mm chip rasterised at 0.5 / 0.25 / 0.125 mm separations).
///
/// ```
/// use clockroute_geom::{Floorplan, Rect, Point, BlockKind, units::Length};
/// let mut fp = Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0));
/// fp.add_block(Rect::new(Point::new(10, 10), Point::new(20, 20)), BlockKind::Obstacle);
/// let map = fp.rasterize(50, 50);
/// assert!(map.is_node_blocked(Point::new(15, 15)));
/// // Obstacles keep wiring intact:
/// assert!(!map.is_edge_blocked(Point::new(15, 15), Point::new(16, 15)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    die_width: Length,
    die_height: Length,
    blocks: Vec<PlacedBlock>,
}

impl Floorplan {
    /// Creates an empty floorplan for a die of the given physical size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn new(die_width: Length, die_height: Length) -> Floorplan {
        assert!(
            die_width.um() > 0.0 && die_height.um() > 0.0,
            "die dimensions must be positive"
        );
        Floorplan {
            die_width,
            die_height,
            blocks: Vec::new(),
        }
    }

    /// Physical die width.
    #[inline]
    pub fn die_width(&self) -> Length {
        self.die_width
    }

    /// Physical die height.
    #[inline]
    pub fn die_height(&self) -> Length {
        self.die_height
    }

    /// The blocks placed so far.
    #[inline]
    pub fn blocks(&self) -> &[PlacedBlock] {
        &self.blocks
    }

    /// Places a block (footprint in grid coordinates).
    pub fn add_block(&mut self, rect: Rect, kind: BlockKind) -> &mut Self {
        self.blocks.push(PlacedBlock { rect, kind });
        self
    }

    /// Grid pitch (edge length) for a `grid_w × grid_h` rasterisation.
    ///
    /// The paper spaces `n` grid nodes across the die so that the pitch is
    /// `die / n` (e.g. 25 mm / 200 = 0.125 mm).
    pub fn pitch(&self, grid_w: u32, grid_h: u32) -> (Length, Length) {
        (
            Length::from_um(self.die_width.um() / f64::from(grid_w)),
            Length::from_um(self.die_height.um() / f64::from(grid_h)),
        )
    }

    /// Rasterises the floorplan onto a `grid_w × grid_h` blockage map.
    ///
    /// Block footprints are interpreted directly in the target grid's
    /// coordinates; footprints extending beyond the grid are clipped.
    ///
    /// # Panics
    ///
    /// Panics if `grid_w` or `grid_h` is zero.
    pub fn rasterize(&self, grid_w: u32, grid_h: u32) -> BlockageMap {
        let mut map = BlockageMap::new(grid_w, grid_h);
        for block in &self.blocks {
            match block.kind {
                BlockKind::Hard => {
                    map.block_nodes(&block.rect);
                    map.block_edges(&block.rect);
                }
                BlockKind::Obstacle => map.block_nodes(&block.rect),
                BlockKind::WiringOnly => map.block_edges(&block.rect),
                BlockKind::RegisterKeepout => map.block_registers(&block.rect),
            }
        }
        map
    }

    /// Total grid-point area covered by blocks (overlaps double-counted).
    pub fn blocked_area(&self) -> u64 {
        self.blocks.iter().map(|b| b.rect.area()).sum()
    }

    /// `true` if point `p` lies inside any block of the given kind.
    pub fn covered_by(&self, p: Point, kind: BlockKind) -> bool {
        self.blocks
            .iter()
            .any(|b| b.kind == kind && b.rect.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Floorplan {
        Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0))
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_die_rejected() {
        let _ = Floorplan::new(Length::from_mm(0.0), Length::from_mm(1.0));
    }

    #[test]
    fn pitch_matches_paper_resolutions() {
        let fp = die();
        let (px, _) = fp.pitch(200, 200);
        assert!((px.mm() - 0.125).abs() < 1e-12);
        let (px, _) = fp.pitch(100, 100);
        assert!((px.mm() - 0.25).abs() < 1e-12);
        let (px, _) = fp.pitch(50, 50);
        assert!((px.mm() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hard_block_blocks_nodes_and_edges() {
        let mut fp = die();
        fp.add_block(Rect::new(Point::new(5, 5), Point::new(8, 8)), BlockKind::Hard);
        let map = fp.rasterize(20, 20);
        assert!(map.is_node_blocked(Point::new(6, 6)));
        assert!(map.is_edge_blocked(Point::new(6, 6), Point::new(7, 6)));
        assert!(!map.is_edge_blocked(Point::new(8, 8), Point::new(9, 8)));
    }

    #[test]
    fn obstacle_keeps_wiring() {
        let mut fp = die();
        fp.add_block(
            Rect::new(Point::new(5, 5), Point::new(8, 8)),
            BlockKind::Obstacle,
        );
        let map = fp.rasterize(20, 20);
        assert!(map.is_node_blocked(Point::new(6, 6)));
        assert!(!map.is_edge_blocked(Point::new(6, 6), Point::new(7, 6)));
    }

    #[test]
    fn wiring_only_keeps_placement() {
        let mut fp = die();
        fp.add_block(
            Rect::new(Point::new(5, 5), Point::new(8, 8)),
            BlockKind::WiringOnly,
        );
        let map = fp.rasterize(20, 20);
        assert!(!map.is_node_blocked(Point::new(6, 6)));
        assert!(map.is_edge_blocked(Point::new(6, 6), Point::new(7, 6)));
    }

    #[test]
    fn register_keepout_only_blocks_registers() {
        let mut fp = die();
        fp.add_block(
            Rect::new(Point::new(5, 5), Point::new(8, 8)),
            BlockKind::RegisterKeepout,
        );
        let map = fp.rasterize(20, 20);
        let p = Point::new(6, 6);
        assert!(map.is_register_blocked(p));
        assert!(!map.is_node_blocked(p));
        assert!(!map.is_edge_blocked(p, Point::new(7, 6)));
    }

    #[test]
    fn covered_by_and_area() {
        let mut fp = die();
        fp.add_block(Rect::new(Point::new(0, 0), Point::new(1, 1)), BlockKind::Hard)
            .add_block(
                Rect::new(Point::new(3, 3), Point::new(3, 3)),
                BlockKind::Obstacle,
            );
        assert_eq!(fp.blocks().len(), 2);
        assert_eq!(fp.blocked_area(), 5);
        assert!(fp.covered_by(Point::new(0, 1), BlockKind::Hard));
        assert!(!fp.covered_by(Point::new(0, 1), BlockKind::Obstacle));
        assert!(fp.covered_by(Point::new(3, 3), BlockKind::Obstacle));
    }
}
