//! Service cache latency table: per-request wall-clock for the three
//! `crserve` answer paths — cold solve, exact-match cache hit, and
//! near-miss warm start — on growing grids.
//!
//! Before any time is reported, every path's response is asserted
//! byte-identical (modulo the `cache` label) to a cold solve on a fresh
//! service, so the table can never trade correctness for speed. The
//! run fails loudly if a cache hit is not at least 10× faster than the
//! cold solve it replays.
//!
//! Usage: `cargo run --release -p clockroute-bench --bin servebench [max_grid]`
//! (default 100; pass 200 to add the paper-sized grid).

use clockroute_service::{Service, ServiceConfig};
use std::time::Instant;

/// A scenario with `nets` short registered nets alternating between the
/// left and right die edges, plus one hard block in the right-middle
/// whose position is the only variable. A search footprint is the
/// arena's bounding box — roughly the cost-`len` diamond around the
/// net — so moving the block dirties only the right-middle corridors:
/// left-band nets and far right-band nets replay from the cached solve,
/// the few near the block re-route.
fn scenario_text(grid: u32, nets: u32, block_x: u32) -> String {
    let mut text = format!("die 25mm 25mm\ngrid {grid} {grid}\n");
    text.push_str(&format!(
        "block hard {block_x} {} {} {}\n",
        grid / 2 - 2,
        block_x + 3,
        grid / 2 + 1
    ));
    let len = grid / 5;
    for i in 0..nets {
        let y = 2 + i * (grid - 4) / nets;
        let (x0, x1) = if i % 2 == 0 {
            (1, 1 + len)
        } else {
            (grid - 2 - len, grid - 2)
        };
        text.push_str(&format!(
            "net reg name=n{i} src={x0},{y} dst={x1},{y} period=400\n"
        ));
    }
    text
}

fn route_line(text: &str) -> String {
    format!(
        "{{\"id\":\"b\",\"op\":\"route\",\"scenario\":{}}}",
        clockroute_core::telemetry::json_string(text)
    )
}

fn normalize(response: &str) -> String {
    response
        .replace("\"cache\":\"hit\"", "\"cache\":\"cold\"")
        .replace("\"cache\":\"warm\"", "\"cache\":\"cold\"")
}

/// Times one request on `service`, asserting the response took the
/// expected cache path and matches `reference` byte-for-byte after
/// label normalization.
fn timed(service: &Service, line: &str, path: &str, reference: &str) -> f64 {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = Instant::now();
    let response = service.handle_line(line);
    let seconds = start.elapsed().as_secs_f64();
    assert!(
        response.contains(&format!("\"cache\":\"{path}\"")),
        "expected a {path} response, got: {response}"
    );
    assert_eq!(
        normalize(&response),
        normalize(reference),
        "{path} response diverged from the cold reference"
    );
    seconds
}

fn main() {
    let max_grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    println!("# Service cache latency (cold / hit / warm)");
    println!();
    println!(
        "Each row: one scenario solved cold, replayed as an exact-match hit \
         (best of 5), then re-requested with the hard block moved (warm \
         start: only nets whose search footprints intersect the blockage \
         delta re-route). All responses asserted byte-identical to a fresh \
         cold solve before timing is reported."
    );
    println!();
    println!("| grid | nets | cold s | hit s | warm s | hit speedup | warm speedup |");
    println!("|------|------|--------|-------|--------|-------------|--------------|");

    for &(grid, nets) in [(60u32, 8u32), (100, 10), (200, 10)]
        .iter()
        .filter(|&&(g, _)| g <= max_grid)
    {
        let a = scenario_text(grid, nets, grid * 5 / 8);
        let b = scenario_text(grid, nets, grid * 3 / 4);
        let line_a = route_line(&a);
        let line_b = route_line(&b);

        // Fresh-service cold solves are the byte-identity references.
        let ref_a = Service::new(ServiceConfig::default()).handle_line(&line_a);
        let ref_b = Service::new(ServiceConfig::default()).handle_line(&line_b);

        let service = Service::new(ServiceConfig::default());
        let cold = timed(&service, &line_a, "cold", &ref_a);
        let hit = (0..5)
            .map(|_| timed(&service, &line_a, "hit", &ref_a))
            .fold(f64::INFINITY, f64::min);
        let warm = timed(&service, &line_b, "warm", &ref_b);

        let hit_speedup = cold / hit;
        let warm_speedup = cold / warm;
        println!(
            "| {grid}×{grid} | {nets} | {cold:.4} | {hit:.6} | {warm:.4} | {hit_speedup:.0}× | {warm_speedup:.2}× |"
        );
        assert!(
            hit_speedup >= 10.0,
            "cache hit must be ≥10× faster than cold (got {hit_speedup:.1}×)"
        );
    }

    println!();
    println!(
        "Interpretation: a hit replays stored bytes (no planning), so its \
         speedup is orders of magnitude and bounded only by hashing and \
         response assembly. Warm starts still pay for re-routing the nets \
         whose footprints intersect the moved block — footprints are \
         conservative over-approximations (arena bounding boxes), so the \
         warm win grows with die size and shrinks as the delta cuts \
         through more traffic."
    );
}
