// Fixture: CR005 — search loops must charge the budget meter.
// Linted under an impersonated path inside the four search modules.

fn search(queue: &mut Q, meter: &mut M) -> Option<u32> {
    // BAD (line 6): pops the queue, never charges the meter.
    while let Some(cand) = queue.pop() {
        if cand.done() {
            return Some(cand.value());
        }
        queue.push(cand.expand());
    }
    None
}

fn charged_search(queue: &mut Q, meter: &mut M) -> Option<u32> {
    // GOOD: the canonical loop shape — pop, charge, expand.
    while let Some(cand) = queue.pop() {
        meter.charge_pop(queue.len())?;
        for next in cand.successors() {
            meter.charge_expand()?;
            queue.push(next);
        }
    }
    None
}

fn rebuild(points: &mut Vec<u32>) {
    // GOOD: a plain Vec loop is not a queue loop.
    while let Some(p) = points.pop() {
        let _ = p;
    }
}
