//! Library side of the `clockroute` CLI: the scenario file format and
//! the shared plan report renderer.
//!
//! See [`scenario`] for the format specification and parser and
//! [`report`] for the per-net report text. The `crplan` binary
//! (`src/main.rs`) reads a scenario, plans every net through
//! [`clockroute_plan::Planner`], and prints the report; `crserve`
//! (crates/service) parses the same format off the wire and returns
//! the same report bytes.

pub mod report;
pub mod scenario;
