//! Library side of the `clockroute` CLI: the scenario file format.
//!
//! See [`scenario`] for the format specification and parser. The binary
//! (`src/main.rs`) reads a scenario, plans every net through
//! [`clockroute_plan::Planner`], and prints a report.

pub mod scenario;
