# Congested spread: three identical-terminal nets over a channel whose
# every edge carries at most one net. Order-driven planning stacks all
# three on the same centre row (each per-net search is independently
# optimal), overflowing the shared edges; `--flow` spreads them onto
# three distinct rows with zero overflow:
#
#   crplan scenarios/flow_spread.cr --flow
#
# `reserve off` so the sequential baseline is allowed to overlap —
# this scenario measures congestion awareness, not reservation.
die 7mm 5mm
grid 7 5
tech paper
reserve off

capacity default 1

net comb name=s0 src=0,2 dst=6,2
net comb name=s1 src=0,2 dst=6,2
net comb name=s2 src=0,2 dst=6,2
