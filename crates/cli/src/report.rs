//! The textual plan report, shared between `crplan` and `crserve`.
//!
//! Byte-identity is a contract, not a convenience: the service's cache
//! hit / warm-start / cold paths all promise to return exactly what a
//! cold `crplan --quiet` run prints for the same scenario, and the
//! property tests compare the bytes. Keeping the renderer in one place
//! makes that promise structural — there is no second formatter to
//! drift.

use clockroute_plan::Plan;
use std::fmt::Write;

/// Renders the per-net result lines — one [`clockroute_plan::NetResult`]
/// `Display` line per net, in planning order, each newline-terminated.
/// This is precisely what `crplan --quiet` writes to stdout.
pub fn plan_report(plan: &Plan) -> String {
    let mut out = String::new();
    for r in plan.results() {
        // Infallible: `fmt::Write` for `String` never errors.
        let _ = writeln!(out, "{r}");
    }
    out
}

/// The aggregate summary line `crplan` prints below the per-net report
/// (suppressed by `--quiet`, so not part of the byte-identity surface —
/// but shared so both binaries describe a plan the same way).
pub fn summary_line(plan: &Plan) -> String {
    format!(
        "# routed {}/{} nets ({} degraded), {:.1} mm total wire, {} synchronizers, max depth {} cycles",
        plan.routed().count(),
        plan.results().len(),
        plan.degraded().count(),
        plan.total_wirelength().mm(),
        plan.total_synchronizers(),
        plan.max_cycles().unwrap_or(0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_elmore::{GateLibrary, Technology};
    use clockroute_geom::units::{Length, Time};
    use clockroute_geom::Point;
    use clockroute_grid::GridGraph;
    use clockroute_plan::{NetSpec, Planner};

    fn small_plan() -> Plan {
        let g = GridGraph::open(10, 10, Length::from_um(500.0));
        let nets = vec![
            NetSpec::combinational("a", Point::new(0, 0), Point::new(9, 0)),
            NetSpec::registered("b", Point::new(0, 5), Point::new(9, 5), Time::from_ps(400.0)),
        ];
        Planner::new(g, Technology::paper_070nm(), GateLibrary::paper_library()).plan(&nets)
    }

    #[test]
    fn report_is_one_display_line_per_net() {
        let plan = small_plan();
        let report = plan_report(&plan);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], plan.results()[0].to_string());
        assert_eq!(lines[1], plan.results()[1].to_string());
        assert!(report.ends_with('\n'));
    }

    #[test]
    fn summary_counts_match_plan() {
        let plan = small_plan();
        let s = summary_line(&plan);
        assert!(s.starts_with("# routed 2/2 nets"), "{s}");
        assert!(s.contains("synchronizers"), "{s}");
    }
}
