//! Full two-domain link simulation (paper Fig. 9): source-domain relay
//! chain → MCFIFO → sink-domain relay chain, each side on its own clock.

use crate::mcfifo::McFifo;
use crate::pipeline::StallPattern;
use clockroute_geom::units::Time;
use serde::{Deserialize, Serialize};

/// Simulation results for a GALS link run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GalsLinkReport {
    /// Arrival time of the first token at the sink.
    pub first_arrival: Time,
    /// Arrival time of the last token.
    pub last_arrival: Time,
    /// Tokens delivered (must equal the tokens sent).
    pub delivered: usize,
    /// Steady-state delivery rate in tokens per nanosecond.
    pub throughput_tokens_per_ns: f64,
    /// Highest FIFO occupancy observed.
    pub fifo_max_occupancy: usize,
    /// Puts rejected by a full FIFO (back-pressure events).
    pub fifo_rejected_puts: u64,
    /// `true` if any relay station exceeded its capacity (protocol bug).
    pub overflowed: bool,
}

/// A complete sender→receiver link across two clock domains.
///
/// This is the hardware a [`GalsSolution`] describes: `Reg_s` relay
/// stations on the sender side (period `T_s`), the MCFIFO, and `Reg_t`
/// relay stations on the receiver side (period `T_t`).
///
/// ```
/// use clockroute_sim::{GalsLink, StallPattern};
/// use clockroute_geom::units::Time;
///
/// let link = GalsLink::new(2, 3, Time::from_ps(300.0), Time::from_ps(400.0), 4);
/// let report = link.simulate(100, StallPattern::None);
/// assert_eq!(report.delivered, 100);
/// assert!(!report.overflowed);
/// ```
///
/// [`GalsSolution`]: ../clockroute_core/struct.GalsSolution.html
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GalsLink {
    regs_source_side: usize,
    regs_sink_side: usize,
    t_s: Time,
    t_t: Time,
    fifo_capacity: usize,
}

impl GalsLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if a period is not strictly positive and finite or the FIFO
    /// capacity is zero.
    pub fn new(
        regs_source_side: usize,
        regs_sink_side: usize,
        t_s: Time,
        t_t: Time,
        fifo_capacity: usize,
    ) -> GalsLink {
        for t in [t_s, t_t] {
            assert!(t.ps() > 0.0 && t.is_finite(), "period must be positive and finite");
        }
        assert!(fifo_capacity > 0, "fifo capacity must be non-zero");
        GalsLink {
            regs_source_side,
            regs_sink_side,
            t_s,
            t_t,
            fifo_capacity,
        }
    }

    /// Analytic empty-FIFO latency `T_s·(Reg_s+1) + T_t·(Reg_t+1)`
    /// (paper §IV, Fig. 10).
    pub fn analytic_latency(&self) -> Time {
        self.t_s * (self.regs_source_side as f64 + 1.0)
            + self.t_t * (self.regs_sink_side as f64 + 1.0)
    }

    /// Ideal steady-state throughput: one token per cycle of the slower
    /// clock (tokens per nanosecond).
    pub fn analytic_throughput_tokens_per_ns(&self) -> f64 {
        1.0e3 / self.t_s.ps().max(self.t_t.ps())
    }

    /// Simulates delivery of `tokens` tokens; the sink applies `stalls`
    /// on its own clock.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    pub fn simulate(&self, tokens: usize, stalls: StallPattern) -> GalsLinkReport {
        assert!(tokens > 0, "need at least one token");
        let n_s = self.regs_source_side;
        let n_t = self.regs_sink_side;
        let mut src: Vec<Vec<usize>> = vec![Vec::new(); n_s];
        let mut src_stop: Vec<bool> = vec![false; n_s];
        let mut dst: Vec<Vec<usize>> = vec![Vec::new(); n_t];
        let mut dst_stop: Vec<bool> = vec![false; n_t];
        let mut fifo = McFifo::new(self.fifo_capacity);

        let mut launched = 0usize;
        let mut delivered = 0usize;
        let mut first_arrival = Time::ZERO;
        let mut last_arrival = Time::ZERO;
        let mut overflowed = false;

        let mut k_s: u64 = 1; // next sender edge index
        let mut k_t: u64 = 1; // next receiver edge index
        let mut rx_cycles: u64 = 0;
        let guard = (tokens as u64 + (n_s + n_t) as u64 + self.fifo_capacity as u64 + 32) * 32;
        let mut steps: u64 = 0;

        while delivered < tokens {
            steps += 1;
            if steps > guard {
                break; // protocol deadlock — reported via delivered < sent
            }
            let t_next_s = self.t_s.ps() * k_s as f64;
            let t_next_t = self.t_t.ps() * k_t as f64;
            // Process the earlier edge; ties go to the receiver so space
            // frees up before the sender pushes.
            if t_next_t <= t_next_s {
                let now = Time::from_ps(t_next_t);
                rx_cycles += 1;
                let sink_stalled = stalled(stalls, k_t);
                // Sink capture.
                if !sink_stalled {
                    let tok = if n_t > 0 {
                        pop_front(&mut dst[n_t - 1])
                    } else {
                        fifo.try_get()
                    };
                    if let Some(tok) = tok {
                        if tok == 0 {
                            first_arrival = now;
                        }
                        delivered += 1;
                        last_arrival = now;
                    }
                }
                // Inter-station moves, downstream first.
                for i in (0..n_t.saturating_sub(1)).rev() {
                    if !dst_stop[i + 1] {
                        if let Some(tok) = pop_front(&mut dst[i]) {
                            dst[i + 1].push(tok);
                        }
                    }
                }
                // First sink-side station pulls from the FIFO.
                if n_t > 0 && !dst_stop[0] {
                    if let Some(tok) = fifo.try_get() {
                        dst[0].push(tok);
                    }
                }
                for (i, st) in dst.iter().enumerate() {
                    if st.len() > 2 {
                        overflowed = true;
                    }
                    dst_stop[i] = st.len() >= 2;
                }
                k_t += 1;
            } else {
                // Sender edge.
                // Last source-side station puts into the FIFO.
                if n_s > 0 {
                    if let Some(&tok) = src[n_s - 1].first() {
                        if fifo.try_put(tok) {
                            pop_front(&mut src[n_s - 1]);
                        }
                    }
                } else if launched < tokens && fifo.try_put(launched) {
                    launched += 1;
                }
                // Inter-station moves, downstream first.
                for i in (0..n_s.saturating_sub(1)).rev() {
                    if !src_stop[i + 1] {
                        if let Some(tok) = pop_front(&mut src[i]) {
                            src[i + 1].push(tok);
                        }
                    }
                }
                // Source injects.
                if n_s > 0 && launched < tokens && !src_stop[0] {
                    src[0].push(launched);
                    launched += 1;
                }
                for (i, st) in src.iter().enumerate() {
                    if st.len() > 2 {
                        overflowed = true;
                    }
                    src_stop[i] = st.len() >= 2;
                }
                k_s += 1;
            }
        }

        let elapsed_ns = last_arrival.ns().max(self.t_t.ns() * rx_cycles as f64);
        GalsLinkReport {
            first_arrival,
            last_arrival,
            delivered,
            throughput_tokens_per_ns: delivered as f64 / elapsed_ns.max(1e-12),
            fifo_max_occupancy: fifo.max_occupancy(),
            fifo_rejected_puts: fifo.rejected_puts(),
            overflowed,
        }
    }
}

fn stalled(p: StallPattern, cycle: u64) -> bool {
    match p {
        StallPattern::None => false,
        StallPattern::EveryKth(k) => cycle.is_multiple_of(u64::from(k.max(2))),
        StallPattern::Burst { start, len } => cycle >= start && cycle < start + len,
    }
}

fn pop_front(v: &mut Vec<usize>) -> Option<usize> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: f64) -> Time {
        Time::from_ps(v)
    }

    #[test]
    fn latency_close_to_analytic_formula() {
        // Table III configurations.
        for &(ts, tt, rs, rt) in &[
            (300.0, 300.0, 0usize, 8usize),
            (200.0, 300.0, 10, 1),
            (300.0, 200.0, 1, 10),
            (300.0, 400.0, 3, 3),
            (250.0, 300.0, 2, 6),
        ] {
            let link = GalsLink::new(rs, rt, ps(ts), ps(tt), 4);
            let r = link.simulate(5, StallPattern::None);
            let analytic = link.analytic_latency().ps();
            let sim = r.first_arrival.ps();
            // Clock-phase misalignment can cost up to one cycle per
            // domain; it can never be faster than the analytic bound
            // minus one receiver cycle of capture alignment.
            assert!(
                sim >= analytic - tt - 1e-6 && sim <= analytic + ts + tt + 1e-6,
                "({ts},{tt},{rs},{rt}): sim {sim} vs analytic {analytic}"
            );
            assert!(!r.overflowed);
            assert_eq!(r.delivered, 5);
        }
    }

    #[test]
    fn aligned_equal_clocks_match_exactly() {
        let link = GalsLink::new(2, 3, ps(300.0), ps(300.0), 4);
        let r = link.simulate(3, StallPattern::None);
        // Equal aligned clocks: receiver edges process first at ties, so
        // the token advances one stage per 300 ps on each side.
        assert_eq!(r.first_arrival, link.analytic_latency());
    }

    #[test]
    fn throughput_limited_by_slower_clock() {
        for &(ts, tt) in &[(200.0, 300.0), (300.0, 200.0), (250.0, 250.0)] {
            let link = GalsLink::new(2, 2, ps(ts), ps(tt), 8);
            let r = link.simulate(500, StallPattern::None);
            assert_eq!(r.delivered, 500);
            let ideal = link.analytic_throughput_tokens_per_ns();
            assert!(
                (r.throughput_tokens_per_ns - ideal).abs() / ideal < 0.05,
                "({ts},{tt}): throughput {} vs ideal {ideal}",
                r.throughput_tokens_per_ns
            );
        }
    }

    #[test]
    fn fast_sender_fills_fifo_and_backpressures() {
        // Sender 3× faster than receiver: the FIFO must fill and puts
        // must be rejected, yet nothing is lost.
        let link = GalsLink::new(2, 2, ps(100.0), ps(300.0), 4);
        let r = link.simulate(100, StallPattern::None);
        assert_eq!(r.delivered, 100, "tokens lost under rate mismatch");
        assert_eq!(r.fifo_max_occupancy, 4);
        assert!(r.fifo_rejected_puts > 0);
        assert!(!r.overflowed);
    }

    #[test]
    fn sink_stalls_do_not_lose_tokens() {
        let link = GalsLink::new(3, 3, ps(200.0), ps(250.0), 4);
        let r = link.simulate(80, StallPattern::EveryKth(3));
        assert_eq!(r.delivered, 80);
        assert!(!r.overflowed);
        // Throughput degraded roughly to 2/3 of a receiver cycle rate.
        let ideal = 1.0e3 / 250.0 * (2.0 / 3.0);
        assert!(
            (r.throughput_tokens_per_ns - ideal).abs() / ideal < 0.15,
            "throughput {} vs ideal {ideal}",
            r.throughput_tokens_per_ns
        );
    }

    #[test]
    fn zero_relay_degenerate_link() {
        let link = GalsLink::new(0, 0, ps(300.0), ps(400.0), 2);
        let r = link.simulate(10, StallPattern::None);
        assert_eq!(r.delivered, 10);
        let analytic = link.analytic_latency().ps();
        assert!(r.first_arrival.ps() <= analytic + 300.0 + 400.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = GalsLink::new(1, 1, ps(100.0), ps(100.0), 0);
    }
}
