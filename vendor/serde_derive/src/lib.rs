//! Offline stub of `serde_derive`.
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. Nothing in this workspace actually serializes
//! values (there is no `serde_json` or similar), so the derives only
//! need to *exist*: they expand to an empty token stream. Swap the
//! `vendor/` stubs for the real crates when a registry is available.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
