//! Cross-crate consistency: the incremental delay accounting inside the
//! searches must agree exactly with the ground-truth Elmore evaluator,
//! and the solution objects' derived quantities must be self-consistent.

use clockroute::core::{RbpVariant, TieBreak};
use clockroute::prelude::*;
use clockroute_geom::gen::FloorplanGenerator;

fn scenario(seed: u64, grid: u32) -> GridGraph {
    let fp = FloorplanGenerator::new(grid, grid)
        .blocks(5)
        .block_size(2, grid / 4)
        .keepout(Point::new(0, 0))
        .keepout(Point::new(grid - 1, grid - 1))
        .generate(seed);
    GridGraph::from_floorplan(&fp, grid, grid)
}

#[test]
fn fastpath_delay_equals_ground_truth() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for seed in 0..6 {
        let g = scenario(seed, 24);
        let sol = FastPathSpec::new(&g, &tech, &lib)
            .source(Point::new(0, 0))
            .sink(Point::new(23, 23))
            .solve()
            .expect("feasible");
        let report = sol.path().report(&g, &tech, &lib);
        assert!(
            (report.total_delay().ps() - sol.delay().ps()).abs() < 1e-6,
            "seed {seed}: search said {}, evaluator {}",
            sol.delay(),
            report.total_delay()
        );
    }
}

#[test]
fn rbp_stages_equal_ground_truth_and_fit_period() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for seed in 0..6 {
        let g = scenario(seed, 24);
        for period in [200.0, 350.0, 700.0] {
            let t = Time::from_ps(period);
            let sol = RbpSpec::new(&g, &tech, &lib)
                .source(Point::new(0, 0))
                .sink(Point::new(23, 23))
                .period(t)
                .solve()
                .expect("feasible");
            let report = sol.path().report(&g, &tech, &lib);
            // Every stage within the period (exact arithmetic agreement).
            assert!(
                report.max_stage_delay().ps() <= period + 1e-9,
                "seed {seed} @{period}: stage {}",
                report.max_stage_delay()
            );
            // Stage count = registers + 1, latency formula holds.
            assert_eq!(report.stages.len(), sol.register_count() + 1);
            assert_eq!(
                sol.latency(),
                t * (sol.register_count() as f64 + 1.0)
            );
            // Source/sink slack figures agree with the evaluator.
            let first = report.stages[0].delay;
            let last = report.stages[report.stages.len() - 1].delay;
            assert!((t - first - sol.source_slack()).abs().ps() < 1e-6);
            assert!((t - last - sol.sink_slack()).abs().ps() < 1e-6);
        }
    }
}

#[test]
fn gals_stages_equal_ground_truth_and_fit_domains() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for seed in 0..6 {
        let g = scenario(seed, 24);
        let (ts, tt) = (Time::from_ps(260.0), Time::from_ps(380.0));
        let sol = GalsSpec::new(&g, &tech, &lib)
            .source(Point::new(0, 0))
            .sink(Point::new(23, 23))
            .periods(ts, tt)
            .solve()
            .expect("feasible");
        let report = sol.path().report(&g, &tech, &lib);
        assert!(report.is_feasible_gals(
            Time::from_ps(ts.ps() + 1e-9),
            Time::from_ps(tt.ps() + 1e-9)
        ));
        assert_eq!(report.fifo_count, 1);
        let lat = report
            .latency_gals(Time::from_ps(ts.ps() + 1e-9), Time::from_ps(tt.ps() + 1e-9))
            .expect("feasible");
        assert!((lat.ps() - sol.latency().ps()).abs() < 1e-3, "seed {seed}");
        assert_eq!(report.registers_before_fifo(), sol.regs_source_side());
    }
}

#[test]
fn queue_variants_and_tiebreaks_share_the_optimum() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for seed in 0..4 {
        let g = scenario(seed, 20);
        for period in [250.0, 500.0] {
            let t = Time::from_ps(period);
            let base = RbpSpec::new(&g, &tech, &lib)
                .source(Point::new(0, 0))
                .sink(Point::new(19, 19))
                .period(t);
            let two = base.clone().variant(RbpVariant::TwoQueue).solve().unwrap();
            let arr = base.clone().variant(RbpVariant::QueueArray).solve().unwrap();
            let slack = base
                .clone()
                .tie_break(TieBreak::MaxEndpointSlack)
                .solve()
                .unwrap();
            let nobound = base.clone().wire_bound(false).solve().unwrap();
            assert_eq!(two.latency(), arr.latency(), "seed {seed} @{period}");
            assert_eq!(two.latency(), slack.latency());
            assert_eq!(two.latency(), nobound.latency());
        }
    }
}

#[test]
fn routes_respect_blockage_maps() {
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for seed in 10..16 {
        let g = scenario(seed, 24);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(Point::new(0, 0))
            .sink(Point::new(23, 23))
            .period(Time::from_ps(300.0))
            .solve()
            .expect("feasible");
        // Geometric validity: adjacency and no blocked edges.
        sol.path().grid_path().validate(&g).expect("valid route");
        // Label validity: every inserted gate on an insertable node.
        for (pt, gate) in sol.path().gates() {
            if pt == sol.path().source() || pt == sol.path().sink() {
                continue;
            }
            assert!(!g.blockage().is_node_blocked(pt), "seed {seed}: gate at {pt}");
            if lib.gate(gate).kind().is_sequential() {
                assert!(!g.blockage().is_register_blocked(pt));
            }
        }
    }
}

#[test]
fn separations_reconstruct_path_length() {
    // The separation reports partition the path's edges.
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    let g = scenario(3, 24);
    let sol = RbpSpec::new(&g, &tech, &lib)
        .source(Point::new(0, 0))
        .sink(Point::new(23, 23))
        .period(Time::from_ps(250.0))
        .solve()
        .unwrap();
    let total: usize = sol.path().register_separations(&lib).iter().sum();
    assert_eq!(total, sol.path().edge_count());
    let total_rb: usize = sol.path().element_separations().iter().sum();
    assert_eq!(total_rb, sol.path().edge_count());
}
