#!/usr/bin/env sh
# Chaos smoke test for the crash-safe crserve (DESIGN.md §13): drive a
# burst of route requests over TCP against a --state directory, kill
# the process with SIGKILL mid-flight, restart it on the same state,
# and verify (a) every entry answered before the kill is recovered and
# answers byte-identically, (b) a deliberately corrupted snapshot is
# dropped — the service re-solves instead of serving bad bytes, and
# (c) SIGTERM drains gracefully with exit 0. Run from the repo root;
# the in-depth fault-schedule assertions live in
# crates/service/tests/service_chaos.rs — this is the shell-level gate
# wired into scripts/check.sh.
set -eu

cargo build --release -q -p clockroute-service
BIN=target/release/crserve
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; kill "$pid" 2>/dev/null || true' EXIT
pid=""

fail() {
    echo "chaos_smoke: FAIL: $1" >&2
    exit 1
}

# Starts crserve --tcp --state and records $pid and $addr.
start_server() {
    "$BIN" --tcp 127.0.0.1:0 --state "$tmp/state" --quiet 2> "$tmp/banner" &
    pid=$!
    # The stderr banner carries the bound address.
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$tmp/banner")
        [ -n "$addr" ] && return 0
        kill -0 "$pid" 2>/dev/null || fail "crserve died on startup"
        sleep 0.05
    done
    fail "no listening banner"
}

# Sends one request line over a fresh TCP connection and prints the
# one response line. Prints nothing if the connection is cut before a
# complete line arrives (a SIGKILL mid-burst may cost the response —
# it must never surface a torn one).
ask() {
    python3 - "$addr" "$1" <<'EOF'
import socket, sys
host, port = sys.argv[1].rsplit(":", 1)
buf = b""
try:
    s = socket.create_connection((host, int(port)), timeout=30)
    s.sendall((sys.argv[2] + "\n").encode())
    while not buf.endswith(b"\n"):
        chunk = s.recv(4096)
        if not chunk:
            break
        buf += chunk
except OSError:
    pass
if buf.endswith(b"\n"):
    sys.stdout.write(buf.decode())
EOF
}

SCEN1='die 25mm 25mm\ngrid 12 12\nblock hard 4 4 6 6\nnet comb name=a src=0,0 dst=11,11\nnet reg name=b src=0,6 dst=11,6 period=2000\n'
SCEN2='die 25mm 25mm\ngrid 12 12\nblock hard 7 4 9 6\nnet comb name=a src=0,0 dst=11,11\nnet reg name=b src=0,6 dst=11,6 period=2000\n'

route() {
    printf '{"id":"%s","op":"route","scenario":"%s"}' "$1" "$2"
}

# --- Burst, then SIGKILL. --------------------------------------------
start_server
r1=$(ask "$(route c1 "$SCEN1")")
r2=$(ask "$(route c2 "$SCEN2")")
echo "$r1" | grep -q '"status":"ok"' || fail "burst request 1 failed: $r1"
echo "$r2" | grep -q '"status":"ok"' || fail "burst request 2 failed: $r2"
kill -9 "$pid" || fail "SIGKILL"
wait "$pid" 2>/dev/null || true

# --- Restart: answered entries recovered, bytes identical. -----------
start_server
g1=$(ask "$(route c1 "$SCEN1")")
g2=$(ask "$(route c2 "$SCEN2")")
echo "$g1" | grep -q '"cache":"hit"' || fail "entry 1 lost across SIGKILL: $g1"
echo "$g2" | grep -q '"cache":"hit"' || fail "entry 2 lost across SIGKILL: $g2"
norm() { printf '%s' "$1" | sed 's/"cache":"[a-z]*"/"cache":"X"/'; }
[ "$(norm "$r1")" = "$(norm "$g1")" ] || fail "bytes changed across crash: $g1"
[ "$(norm "$r2")" = "$(norm "$g2")" ] || fail "bytes changed across crash: $g2"
stats=$(ask '{"op":"stats"}')
echo "$stats" | grep -q '"service.persist.recovered":2' \
    || fail "recovery count wrong: $stats"

# --- SIGTERM: graceful drain, exit 0, snapshot intact. ---------------
kill -TERM "$pid" || fail "SIGTERM"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || fail "SIGTERM drain exited $rc, want 0"
[ -f "$tmp/state/cache.snap" ] || fail "snapshot missing after drain"

# --- Corruption: flipped byte is dropped, never served. --------------
python3 - "$tmp/state/cache.snap" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x40
open(path, "wb").write(data)
EOF
start_server
c1=$(ask "$(route c1 "$SCEN1")")
echo "$c1" | grep -q '"status":"ok"' || fail "post-corruption request failed: $c1"
[ "$(norm "$r1")" = "$(norm "$c1")" ] || fail "corrupt state changed bytes: $c1"
stats=$(ask '{"op":"stats"}')
echo "$stats" | grep -q '"service.persist.dropped":[1-9]' \
    || fail "corrupt record not counted dropped: $stats"
bye=$(ask '{"op":"shutdown"}')
echo "$bye" | grep -q '"bye":true' || fail "shutdown not acknowledged: $bye"
wait "$pid" || fail "clean shutdown exited non-zero"
pid=""

# --- Concurrent burst, SIGKILL mid-flight, recover (DESIGN.md §14). --
# Eight parallel clients over two scenarios (duplicates exercise the
# single-flight path); answered ⟹ durable must hold for every response
# that completed before the kill, regardless of interleaving.
rm -rf "$tmp/state"
start_server
for i in 1 2 3 4 5 6 7 8; do
    case $i in 1|3|5|7) scen=$SCEN1 ;; *) scen=$SCEN2 ;; esac
    ask "$(route x "$scen")" > "$tmp/burst.$i" &
done
# Kill once at least two answers are out, so the SIGKILL lands with
# responses both before and (likely) still in flight.
for _ in $(seq 1 200); do
    landed=$(grep -l '"status":"ok"' "$tmp"/burst.* 2>/dev/null | wc -l)
    [ "$landed" -ge 2 ] && break
    sleep 0.05
done
kill -9 "$pid" || fail "SIGKILL mid-burst"
wait "$pid" 2>/dev/null || true
wait || true # collect the client jobs; cut connections print nothing

start_server
answered=0
for i in 1 2 3 4 5 6 7 8; do
    case $i in 1|3|5|7) scen=$SCEN1 ;; *) scen=$SCEN2 ;; esac
    line=$(cat "$tmp/burst.$i" 2>/dev/null || true)
    case $line in
        *'"status":"ok"'*)
            answered=$((answered + 1))
            again=$(ask "$(route x "$scen")")
            echo "$again" | grep -q '"cache":"hit"' \
                || fail "burst answer $i lost across SIGKILL: $again"
            [ "$(norm "$line")" = "$(norm "$again")" ] \
                || fail "burst bytes changed across crash: $again"
            ;;
    esac
done
[ "$answered" -ge 1 ] || fail "no burst response completed before SIGKILL"
bye=$(ask '{"op":"shutdown"}')
echo "$bye" | grep -q '"bye":true' || fail "shutdown not acknowledged: $bye"
wait "$pid" || fail "clean shutdown exited non-zero"
pid=""

echo "chaos_smoke: OK"
