//! Client-side retry policy for `busy` responses: bounded exponential
//! backoff with **deterministic** jitter.
//!
//! A `busy` response carries a server-computed `retry_after_ms` hint
//! (see [`crate::admission`]); the policy treats it as a floor — the
//! server knows its own budget, the client only knows how often it has
//! been told no. Jitter exists so a thundering herd of identical
//! clients decorrelates, but it is *seeded* (splitmix64 over
//! `seed ^ attempt`), so a given client's schedule is a pure function
//! of its seed: tests assert exact delay sequences, no wall clock and
//! no RNG state anywhere.
//!
//! Jitter stays **within the step**: each attempt's random spread is
//! clipped so it can never reach the next attempt's base delay, which
//! makes every schedule non-decreasing — a client never backs off
//! *less* after being told no one more time. (An earlier version
//! jittered by up to a quarter of the step unconditionally, which let
//! attempt 1's delay land below attempt 0's when the server hint
//! flattened the early steps; `BENCH_serve.json` pins the corrected
//! schedule.)
//!
//! Used by `servebench`'s request loop and intended for any future
//! client; the server side never sleeps — it answers `busy`
//! immediately and lets clients pace themselves.

use clockroute_core::canon::mix64;

/// Deterministic bounded-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-attempt backoff in milliseconds.
    pub base_ms: u64,
    /// Ceiling applied before jitter.
    pub cap_ms: u64,
    /// Attempts before giving up.
    pub max_attempts: u32,
    /// Jitter seed; two clients with different seeds decorrelate.
    pub seed: u64,
}

impl RetryPolicy {
    /// A conservative default schedule: 8 attempts, 25 ms base,
    /// 2 s cap.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            base_ms: 25,
            cap_ms: 2_000,
            max_attempts: 8,
            seed,
        }
    }

    /// The delay before retry number `attempt` (0-based), or `None`
    /// when the attempt budget is spent.
    ///
    /// `server_hint_ms` is the `retry_after_ms` from the rejecting
    /// `busy` response; the exponential term never goes below it. The
    /// returned delay is the step `min(cap, max(hint, base << attempt))`
    /// plus deterministic jitter of at most a quarter of the step —
    /// clipped to the gap before the *next* step, so the schedule is
    /// non-decreasing in `attempt` for any fixed hint.
    pub fn backoff_ms(&self, attempt: u32, server_hint_ms: Option<u64>) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let step = |a: u32| {
            let exponential = self.base_ms.checked_shl(a).unwrap_or(u64::MAX).max(self.base_ms);
            exponential.max(server_hint_ms.unwrap_or(0)).min(self.cap_ms)
        };
        let this = step(attempt);
        let headroom = if attempt + 1 < self.max_attempts {
            (this / 4).min(step(attempt + 1) - this)
        } else {
            this / 4 // final attempt: nothing after it to stay under
        };
        let jitter = mix64(self.seed ^ u64::from(attempt)) % (headroom + 1);
        Some(this + jitter)
    }

    /// The full schedule under a constant hint, for logs and tests.
    pub fn schedule(&self, server_hint_ms: Option<u64>) -> Vec<u64> {
        (0..self.max_attempts)
            .filter_map(|a| self.backoff_ms(a, server_hint_ms))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::new(42);
        assert_eq!(p.schedule(None), p.schedule(None));
        assert_ne!(
            p.schedule(None),
            RetryPolicy::new(43).schedule(None),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            base_ms: 10,
            cap_ms: 100,
            max_attempts: 6,
            seed: 7,
        };
        let raw: Vec<u64> = (0..6)
            .map(|a| {
                let d = p.backoff_ms(a, None).unwrap();
                // Strip jitter: the pre-jitter value is deterministic.
                let capped = (10u64 << a).min(100);
                assert!(d >= capped && d <= capped + capped / 4, "attempt {a}: {d}");
                capped
            })
            .collect();
        assert_eq!(raw, [10, 20, 40, 80, 100, 100]);
    }

    #[test]
    fn server_hint_is_a_floor_not_a_ceiling() {
        let p = RetryPolicy {
            base_ms: 10,
            cap_ms: 10_000,
            max_attempts: 3,
            seed: 0,
        };
        let with_hint = p.backoff_ms(0, Some(500)).unwrap();
        assert!(with_hint >= 500, "{with_hint}");
        let late = p.backoff_ms(2, Some(5)).unwrap();
        assert!(late >= 40, "exponential term still applies: {late}");
    }

    #[test]
    fn attempts_are_bounded() {
        let p = RetryPolicy::new(1);
        assert!(p.backoff_ms(p.max_attempts, None).is_none());
        assert_eq!(p.schedule(None).len(), p.max_attempts as usize);
    }

    #[test]
    fn jitter_never_exceeds_a_quarter() {
        for seed in 0..64u64 {
            let p = RetryPolicy::new(seed);
            for attempt in 0..p.max_attempts {
                let d = p.backoff_ms(attempt, Some(100)).unwrap();
                let capped = (p.base_ms << attempt).max(100).min(p.cap_ms);
                assert!(d >= capped && d <= capped + capped / 4);
            }
        }
    }

    #[test]
    fn schedules_are_non_decreasing_for_any_hint() {
        // Regression: jitter used to span a quarter of the step even
        // when the hint flattened successive steps, so attempt 1 could
        // back off less than attempt 0 (the pinned [59, 52, 110] row).
        for seed in 0..256u64 {
            let p = RetryPolicy::new(seed);
            for hint in [None, Some(5), Some(25), Some(50), Some(300), Some(10_000)] {
                let schedule = p.schedule(hint);
                for pair in schedule.windows(2) {
                    assert!(
                        pair[0] <= pair[1],
                        "seed {seed} hint {hint:?}: schedule decreases: {schedule:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pinned_servebench_schedule_under_the_busy_hint() {
        // Exactly the walk servebench records: seed 0xC10C, hint 50 ms
        // (a saturated 1-slot gate with a 50 ms budget), three busy
        // rejections. Steps are 50, 50, 100: attempt 0 has zero
        // headroom (the next step is equal), attempt 1 jitters within
        // the 50→100 gap, attempt 2 within a quarter of 100.
        let p = RetryPolicy::new(0xC10C);
        let delays: Vec<u64> = (0..3).map(|a| p.backoff_ms(a, Some(50)).unwrap()).collect();
        assert_eq!(delays, [50, 52, 110]);
    }

    #[test]
    fn shift_overflow_saturates_at_the_cap() {
        let p = RetryPolicy {
            base_ms: 1,
            cap_ms: 50,
            max_attempts: 80,
            seed: 3,
        };
        let d = p.backoff_ms(70, None).unwrap();
        assert!(d >= 50 && d <= 62, "{d}");
    }
}
