//! CR010 fixture: condvar waits while other guards are live.
use clockroute_core::lockcheck::{LockRank, OrderedCondvar, OrderedMutex};

pub fn bad_wait_with_extra(a: &OrderedMutex<u32>, b: &OrderedMutex<u32>, cv: &OrderedCondvar) {
    let outer = a.lock();
    let mut inner = b.lock();
    while *inner == 0 {
        inner = cv.wait(inner);
    }
    drop(outer);
}

pub fn good_wait_alone(b: &OrderedMutex<u32>, cv: &OrderedCondvar) {
    let mut inner = b.lock();
    while *inner == 0 {
        inner = cv.wait(inner);
    }
}

pub fn good_drop_before_wait(a: &OrderedMutex<u32>, b: &OrderedMutex<u32>, cv: &OrderedCondvar) {
    let outer = a.lock();
    drop(outer);
    let inner = b.lock();
    let (guard, _timeout) = cv.wait_timeout(inner, timeout_ms());
    drop(guard);
}

pub fn bad_wait_timeout(a: &OrderedMutex<u32>, cv: &OrderedCondvar, b: &OrderedMutex<u32>) {
    let held = a.lock();
    let parked = b.lock();
    let _ = cv.wait_timeout(parked, timeout_ms());
    drop(held);
}
