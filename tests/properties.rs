//! Property-based tests (proptest) over randomly generated instances.
//!
//! Each case builds a random small grid with random node blockages
//! (node blockages never disconnect the grid, so feasibility failures can
//! only come from timing), then checks algebraic invariants of the
//! solutions and agreement with the exhaustive oracles.

use clockroute::core::latch::LatchSpec;
use clockroute::core::reference;
use clockroute::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    width: u32,
    height: u32,
    pitch_um: f64,
    blocked: Vec<(u32, u32)>,
    period_ps: f64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (3u32..7, 3u32..6, 300.0f64..2000.0, 60.0f64..800.0).prop_flat_map(
        |(width, height, pitch_um, period_ps)| {
            let blocked = proptest::collection::vec(
                ((0..width), (0..height)),
                0..((width * height / 3) as usize),
            );
            blocked.prop_map(move |blocked| Instance {
                width,
                height,
                pitch_um,
                blocked,
                period_ps,
            })
        },
    )
}

impl Instance {
    fn graph(&self) -> GridGraph {
        let mut blk = BlockageMap::new(self.width, self.height);
        for &(x, y) in &self.blocked {
            let p = Point::new(x, y);
            // Keep the terminals insertable.
            if p != self.source() && p != self.sink() {
                blk.block_node(p);
            }
        }
        GridGraph::new(
            blk,
            Length::from_um(self.pitch_um),
            Length::from_um(self.pitch_um),
        )
    }

    fn source(&self) -> Point {
        Point::new(0, 0)
    }

    fn sink(&self) -> Point {
        Point::new(self.width - 1, self.height - 1)
    }
}

fn cfg() -> ProptestConfig {
    ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(cfg())]

    #[test]
    fn rbp_solutions_are_valid_and_optimal(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let t = Time::from_ps(inst.period_ps);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .solve();
        let oracle = reference::min_registers_exhaustive(
            &g, &tech, &lib, inst.source(), inst.sink(), t, 14,
        );
        match (sol, oracle) {
            (Ok(sol), Ok(best)) => {
                // Optimal register count.
                prop_assert_eq!(sol.register_count(), best);
                // Geometrically valid.
                prop_assert!(sol.path().grid_path().validate(&g).is_ok());
                // Ground-truth feasible.
                let report = sol.path().report(&g, &tech, &lib);
                prop_assert!(report.max_stage_delay().ps() <= inst.period_ps + 1e-9);
                // Latency formula.
                prop_assert_eq!(
                    sol.latency().ps(),
                    inst.period_ps * (sol.register_count() as f64 + 1.0)
                );
                // Labels on legal nodes only.
                for (pt, _) in sol.path().gates() {
                    if pt != inst.source() && pt != inst.sink() {
                        prop_assert!(!g.blockage().is_node_blocked(pt));
                    }
                }
            }
            (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => {}
            (s, o) => prop_assert!(false, "solver {s:?} vs oracle {o:?}"),
        }
    }

    #[test]
    fn fastpath_is_optimal_and_consistent(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let sol = FastPathSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .solve()
            .expect("node blockages never disconnect the grid");
        let report = sol.path().report(&g, &tech, &lib);
        prop_assert!((report.total_delay().ps() - sol.delay().ps()).abs() < 1e-6);
        let oracle = reference::min_delay_exhaustive(
            &g, &tech, &lib, inst.source(), inst.sink(), 14,
        ).expect("connected");
        prop_assert!((sol.delay().ps() - oracle.ps()).abs() < 1e-6,
            "fastpath {} vs oracle {}", sol.delay(), oracle);
    }

    #[test]
    fn registers_monotone_in_period(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let tight = Time::from_ps(inst.period_ps);
        let loose = Time::from_ps(inst.period_ps * 1.7);
        let spec = |t: Time| {
            RbpSpec::new(&g, &tech, &lib)
                .source(inst.source())
                .sink(inst.sink())
                .period(t)
                .solve()
        };
        match (spec(tight), spec(loose)) {
            (Ok(a), Ok(b)) => prop_assert!(b.register_count() <= a.register_count()),
            (Err(_), Ok(_)) => {} // tight infeasible, loose feasible: fine
            (Ok(_), Err(_)) => prop_assert!(false, "loosening broke feasibility"),
            (Err(_), Err(_)) => {}
        }
    }

    #[test]
    fn latch_zero_borrow_equals_rbp(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let t = Time::from_ps(inst.period_ps);
        let rbp = RbpSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .solve();
        let lat = LatchSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .solve();
        match (rbp, lat) {
            (Ok(r), Ok(l)) => prop_assert_eq!(r.register_count(), l.latch_count()),
            (Err(_), Err(_)) => {}
            (r, l) => prop_assert!(false, "rbp {r:?} vs latch {l:?}"),
        }
    }

    #[test]
    fn latch_borrowing_never_increases_stages(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let t = Time::from_ps(inst.period_ps);
        let without = LatchSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .solve();
        let with = LatchSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .borrow_window(Time::from_ps(inst.period_ps * 0.25))
            .solve();
        match (without, with) {
            (Ok(a), Ok(b)) => prop_assert!(b.latch_count() <= a.latch_count()),
            (Err(_), Ok(_)) => {} // borrowing rescued an infeasible case
            (Ok(_), Err(_)) => prop_assert!(false, "borrowing broke feasibility"),
            (Err(_), Err(_)) => {}
        }
    }

    #[test]
    fn gals_solutions_are_valid(inst in instance()) {
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let ts = Time::from_ps(inst.period_ps);
        let tt = Time::from_ps(inst.period_ps * 1.3);
        if let Ok(sol) = GalsSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .periods(ts, tt)
            .solve()
        {
            prop_assert_eq!(sol.path().fifo_count(), 1);
            prop_assert!(sol.path().grid_path().validate(&g).is_ok());
            let report = sol.path().report(&g, &tech, &lib);
            prop_assert!(report.is_feasible_gals(
                Time::from_ps(ts.ps() + 1e-9),
                Time::from_ps(tt.ps() + 1e-9)
            ));
            prop_assert_eq!(
                sol.latency().ps(),
                ts.ps() * (sol.regs_source_side() as f64 + 1.0)
                    + tt.ps() * (sol.regs_sink_side() as f64 + 1.0)
            );
        }
    }
}

#[derive(Debug, Clone)]
struct TinyInstance {
    width: u32,
    height: u32,
    pitch_um: f64,
    period_ps: f64,
}

fn tiny_instance() -> impl Strategy<Value = TinyInstance> {
    (3u32..5, 2u32..4, 400.0f64..1500.0, 100.0f64..500.0).prop_map(
        |(width, height, pitch_um, period_ps)| TinyInstance {
            width,
            height,
            pitch_um,
            period_ps,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn gals_matches_oracle_on_tiny_grids(inst in tiny_instance()) {
        let g = GridGraph::open(inst.width, inst.height, Length::from_um(inst.pitch_um));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let (s, t) = (
            Point::new(0, 0),
            Point::new(inst.width - 1, inst.height - 1),
        );
        let ts = Time::from_ps(inst.period_ps);
        let tt = Time::from_ps(inst.period_ps * 1.4);
        let sol = GalsSpec::new(&g, &tech, &lib)
            .source(s)
            .sink(t)
            .periods(ts, tt)
            .solve();
        let oracle = reference::min_gals_latency_exhaustive(&g, &tech, &lib, s, t, ts, tt, 12);
        match (sol, oracle) {
            (Ok(sol), Ok(best)) => prop_assert!(
                (sol.latency().ps() - best.ps()).abs() < 1e-6,
                "GALS {} vs oracle {}", sol.latency(), best
            ),
            (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => {}
            (a, b) => prop_assert!(false, "solver {a:?} vs oracle {b:?}"),
        }
    }

    #[test]
    fn tree_on_a_line_matches_rbp(
        len in 6u32..20,
        pitch in 400.0f64..1200.0,
        period in 120.0f64..600.0,
    ) {
        use clockroute::tree::{RoutingTree, TreeInsertionSpec};
        let g = GridGraph::open(len, 1, Length::from_um(pitch));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let (s, t) = (Point::new(0, 0), Point::new(len - 1, 0));
        let tp = Time::from_ps(period);
        let tree = RoutingTree::rectilinear(&g, s, &[t]).expect("line tree");
        let tree_sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
            .period(tp)
            .solve();
        let rbp = RbpSpec::new(&g, &tech, &lib)
            .source(s)
            .sink(t)
            .period(tp)
            .solve();
        match (tree_sol, rbp) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.register_count(), b.register_count());
                prop_assert!(a.verify_on(&tree, &g, &tech, &lib));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "tree {a:?} vs rbp {b:?}"),
        }
    }

    #[test]
    fn drc_accepts_every_solver_output(inst in instance()) {
        use clockroute::core::drc;
        let g = inst.graph();
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let t = Time::from_ps(inst.period_ps);
        if let Ok(sol) = RbpSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .period(t)
            .solve()
        {
            let v = drc::check(sol.path(), &g, &tech, &lib, drc::ClockRule::SingleDomain(t));
            prop_assert!(v.is_empty(), "violations: {v:?}");
        }
        let fast = FastPathSpec::new(&g, &tech, &lib)
            .source(inst.source())
            .sink(inst.sink())
            .solve()
            .expect("connected");
        let v = drc::check(fast.path(), &g, &tech, &lib, drc::ClockRule::Unconstrained);
        prop_assert!(v.is_empty(), "violations: {v:?}");
    }
}
