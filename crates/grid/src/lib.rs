//! Routing-grid substrate: the grid graph `G(V, E)` the search algorithms
//! explore, plus baseline maze-routing and rendering utilities.
//!
//! Following Hassoun & Alpert §II (and the modelling of Alpert et al.,
//! Cong et al. and Zhou et al. they cite), a uniform grid is laid over the
//! routing area:
//!
//! * each **node** is a potential insertion point for a buffer or
//!   synchronization element;
//! * each **edge** is a piece of potential route of known physical length;
//! * edges overlapping wiring blockages are **deleted**;
//! * nodes overlapping physical obstacles are labelled **blocked**
//!   (`p(v) = 0`) — routes may pass, gates may not be inserted.
//!
//! # Example
//!
//! ```
//! use clockroute_grid::GridGraph;
//! use clockroute_geom::{Point, BlockageMap, units::Length};
//!
//! let mut blk = BlockageMap::new(8, 8);
//! blk.block_node(Point::new(3, 3));
//! let g = GridGraph::new(blk, Length::from_um(125.0), Length::from_um(125.0));
//! assert_eq!(g.node_count(), 64);
//! assert!(!g.is_insertable(g.node(Point::new(3, 3))));
//! assert!(g.is_insertable(g.node(Point::new(0, 0))));
//! ```

pub mod capacity;
pub mod dijkstra;
pub mod graph;
pub mod path;
pub mod render;

pub use capacity::{edge_key, EdgeCapacities, EdgeKey};
pub use dijkstra::{bfs_hops, shortest_path, ShortestPathError};
pub use graph::{GridGraph, NodeId};
pub use path::{GridPath, ValidatePathError};
pub use render::{render_grid, RenderOptions};
