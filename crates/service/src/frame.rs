//! The one bounded frame reader every untrusted stream goes through.
//!
//! `crserve` speaks JSONL, so a *frame* is one `\n`-terminated line.
//! Before this module the stdio and TCP front-ends read lines ad hoc
//! (`BufRead::lines`), which is unbounded in both length and time: a
//! client writing an endless line ties up unbounded memory, and one
//! that stops mid-frame parks the connection thread forever. crlint
//! CR007 now bans the bare read methods in this crate; everything
//! funnels through [`FrameReader`], which enforces:
//!
//! * a **length bound** — a line longer than `max_line` bytes yields
//!   [`Frame::Oversized`] exactly once and the rest of the offending
//!   line is discarded without buffering it;
//! * a **time bound** — the reader never blocks longer than the
//!   underlying stream's read timeout (set by the TCP front-end); a
//!   timed-out read surfaces as [`Frame::Idle`] so the serve loop can
//!   poll the shutdown flag between frames;
//! * **torn-frame hygiene** — EOF with a buffered partial line hands
//!   the tail back ([`Frame::Eof`]) so the caller can answer it (the
//!   parser rejects a truncated request with one `malformed` response)
//!   and close cleanly instead of dying mid-loop.
//!
//! The reader also hosts the `serve::read` / `serve::write` failpoint
//! sites, so chaos tests can inject short reads, short writes, and
//! `io::Error`s on the exact syscall boundary production traffic uses.

use clockroute_core::failpoint::{self, FailAction};
use std::io::{self, Read, Write};

/// Read-chunk size; bounds per-call syscall traffic, not line length.
const CHUNK: usize = 4096;

/// One event from a [`FrameReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, `\n` (and any `\r`) stripped. May be blank.
    /// Invalid UTF-8 is replaced lossily — the request parser rejects
    /// the mangled line with a `malformed` response, which is the
    /// contract for garbage bytes.
    Line(String),
    /// The stream ended. `partial` carries an unterminated tail line,
    /// if any (`None` after a clean final `\n`).
    Eof {
        /// Bytes after the last `\n`, lossily decoded.
        partial: Option<String>,
    },
    /// A read timed out or would block; no frame is available yet.
    /// Buffered partial data is kept for the next call.
    Idle,
    /// A line exceeded the length bound. Emitted once per offending
    /// line; the line's remaining bytes are discarded as they arrive.
    Oversized {
        /// The configured bound, for the error message.
        limit: usize,
    },
}

/// Bounded line reader over any byte stream (see the module docs).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    max_line: usize,
    /// Discarding the rest of an oversized line (until `\n`).
    skipping: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`, bounding lines at `max_line` bytes (a zero bound
    /// is treated as 1 — a bound that admits nothing would livelock).
    pub fn new(inner: R, max_line: usize) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            max_line: max_line.max(1),
            skipping: false,
        }
    }

    /// Returns the next frame, blocking at most one underlying read.
    ///
    /// # Errors
    ///
    /// Real I/O errors from the stream (timeouts are [`Frame::Idle`],
    /// not errors). The reader is unusable after an error.
    pub fn next_frame(&mut self) -> io::Result<Frame> {
        loop {
            // Serve a complete buffered line first.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if self.skipping {
                    // Tail of an already-reported oversized line.
                    self.skipping = false;
                    continue;
                }
                if pos > self.max_line {
                    // The whole line arrived in one buffered chunk, so
                    // nothing is left to skip.
                    return Ok(Frame::Oversized {
                        limit: self.max_line,
                    });
                }
                return Ok(Frame::Line(decode(&line[..pos])));
            }
            if self.skipping {
                // Drop the partial oversized line we have so far.
                self.buf.clear();
            } else if self.buf.len() > self.max_line {
                self.buf.clear();
                self.skipping = true;
                return Ok(Frame::Oversized {
                    limit: self.max_line,
                });
            }
            let mut chunk = [0u8; CHUNK];
            let want = match failpoint::hit("serve::read") {
                Some(FailAction::IoError) => {
                    return Err(io::Error::other("injected fault at serve::read"));
                }
                // A short read: the kernel returned one byte. Never an
                // error — the loop simply comes back for more.
                Some(FailAction::ShortIo) => 1,
                Some(FailAction::Panic) => panic!("failpoint serve::read: forced panic"),
                _ => CHUNK,
            };
            match self.inner.read(&mut chunk[..want]) {
                Ok(0) => {
                    let partial = if self.buf.is_empty() || self.skipping {
                        None
                    } else {
                        Some(decode(&std::mem::take(&mut self.buf)))
                    };
                    return Ok(Frame::Eof { partial });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    return Ok(Frame::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // A signal landed mid-read (e.g. SIGTERM during
                    // drain); let the serve loop poll its flags.
                    return Ok(Frame::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Strips a trailing `\r` and decodes lossily (see [`Frame::Line`]).
fn decode(bytes: &[u8]) -> String {
    let bytes = match bytes {
        [head @ .., b'\r'] => head,
        other => other,
    };
    String::from_utf8_lossy(bytes).into_owned()
}

/// Writes one response line plus `\n` and flushes — the single exit
/// point for response bytes, hosting the `serve::write` failpoint.
///
/// # Errors
///
/// Stream write errors, injected faults included. A short-write fault
/// transfers a prefix and then fails, simulating a torn frame; callers
/// treat any error as connection-fatal (the invariant covers completed
/// responses only).
pub fn write_line<W: Write>(writer: &mut W, line: &str) -> io::Result<()> {
    match failpoint::hit("serve::write") {
        Some(FailAction::IoError) => {
            return Err(io::Error::other("injected fault at serve::write"));
        }
        Some(FailAction::ShortIo) => {
            let half = line.len() / 2;
            writer.write_all(&line.as_bytes()[..half])?;
            let _ = writer.flush();
            return Err(io::Error::other("injected short write at serve::write"));
        }
        Some(FailAction::Panic) => panic!("failpoint serve::write: forced panic"),
        _ => {}
    }
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(input: &[u8], max_line: usize) -> Vec<Frame> {
        let mut reader = FrameReader::new(input, max_line);
        let mut out = Vec::new();
        loop {
            let frame = reader.next_frame().unwrap();
            let eof = matches!(frame, Frame::Eof { .. });
            out.push(frame);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_strips_cr() {
        let got = frames(b"a\nbb\r\n\nccc", 100);
        assert_eq!(
            got,
            [
                Frame::Line("a".into()),
                Frame::Line("bb".into()),
                Frame::Line(String::new()),
                Frame::Eof {
                    partial: Some("ccc".into())
                },
            ]
        );
    }

    #[test]
    fn clean_eof_has_no_partial() {
        assert_eq!(
            frames(b"x\n", 100),
            [Frame::Line("x".into()), Frame::Eof { partial: None }]
        );
        assert_eq!(frames(b"", 100), [Frame::Eof { partial: None }]);
    }

    #[test]
    fn oversized_line_is_reported_once_and_skipped() {
        let mut input = vec![b'y'; 9000];
        input.extend_from_slice(b"\nok\n");
        let got = frames(&input, 16);
        assert_eq!(
            got,
            [
                Frame::Oversized { limit: 16 },
                Frame::Line("ok".into()),
                Frame::Eof { partial: None },
            ]
        );
    }

    #[test]
    fn oversized_line_at_eof_stays_silent_after_report() {
        let input = vec![b'z'; 50];
        let got = frames(&input, 16);
        assert_eq!(
            got,
            [Frame::Oversized { limit: 16 }, Frame::Eof { partial: None }]
        );
    }

    #[test]
    fn oversized_line_arriving_with_its_newline_is_still_bounded() {
        let got = frames(b"aaaaaaaaaaaaaaaaaaaaaaaa\nok\n", 16);
        assert_eq!(
            got,
            [
                Frame::Oversized { limit: 16 },
                Frame::Line("ok".into()),
                Frame::Eof { partial: None },
            ]
        );
    }

    #[test]
    fn exact_bound_is_not_oversized() {
        let mut input = vec![b'a'; 16];
        input.push(b'\n');
        assert_eq!(
            frames(&input, 16),
            [
                Frame::Line("a".repeat(16)),
                Frame::Eof { partial: None }
            ]
        );
    }

    #[test]
    fn invalid_utf8_is_decoded_lossily_not_fatal() {
        let got = frames(b"\xff\xfe{\n", 100);
        match &got[0] {
            Frame::Line(l) => assert!(l.contains('\u{fffd}') && l.contains('{')),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn would_block_surfaces_as_idle() {
        struct Blocky(u8);
        impl Read for Blocky {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.0 += 1;
                match self.0 {
                    1 => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                    2 => {
                        buf[..2].copy_from_slice(b"p\n");
                        Ok(2)
                    }
                    _ => Ok(0),
                }
            }
        }
        let mut reader = FrameReader::new(Blocky(0), 100);
        assert_eq!(reader.next_frame().unwrap(), Frame::Idle);
        assert_eq!(reader.next_frame().unwrap(), Frame::Line("p".into()));
        assert_eq!(reader.next_frame().unwrap(), Frame::Eof { partial: None });
    }

    #[test]
    fn injected_read_fault_is_an_error_short_read_is_not() {
        clockroute_core::failpoint::disarm_all();
        clockroute_core::failpoint::arm("serve::read", FailAction::IoError, 1);
        let mut reader = FrameReader::new(&b"q\n"[..], 100);
        assert!(reader.next_frame().is_err());
        clockroute_core::failpoint::arm("serve::read", FailAction::ShortIo, 1);
        let mut reader = FrameReader::new(&b"q\n"[..], 100);
        // The short read trickles in one byte at a time but still
        // assembles the full frame.
        assert_eq!(reader.next_frame().unwrap(), Frame::Line("q".into()));
        clockroute_core::failpoint::disarm_all();
    }

    #[test]
    fn injected_write_faults() {
        clockroute_core::failpoint::disarm_all();
        let mut out = Vec::new();
        write_line(&mut out, "hello").unwrap();
        assert_eq!(out, b"hello\n");
        clockroute_core::failpoint::arm("serve::write", FailAction::ShortIo, 1);
        let mut torn = Vec::new();
        assert!(write_line(&mut torn, "hello").is_err());
        assert_eq!(torn, b"he", "prefix written, frame torn");
        clockroute_core::failpoint::arm("serve::write", FailAction::IoError, 1);
        let mut none = Vec::new();
        assert!(write_line(&mut none, "hello").is_err());
        assert!(none.is_empty());
        clockroute_core::failpoint::disarm_all();
    }
}
