//! Regenerates **Table III** (E3): GALS results for different clock
//! domain period pairs on the 200×200 grid, followed by a protocol-level
//! simulation cross-check of every row (the `clockroute-sim` GALS link
//! must reach the analytic latency to within clock-alignment slack).
//!
//! Usage: `cargo run --release -p clockroute-bench --bin table3 [grid]`

use clockroute_bench::{format_table3, table3, PAPER_TABLE3};
use clockroute_geom::units::Time;
use clockroute_sim::{GalsLink, StallPattern};

fn main() {
    let grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let pairs: Vec<(f64, f64)> = PAPER_TABLE3.iter().map(|&(ts, tt, ..)| (ts, tt)).collect();
    eprintln!("# Table III reproduction — {grid}×{grid} grid, terminals 40 mm apart\n");
    let rows = table3(grid, &pairs);
    println!("{}", format_table3(&rows));

    println!("\n## Protocol simulation cross-check (clockroute-sim)");
    println!("| T_s | T_t | analytic (ps) | simulated first token (ps) | within slack |");
    println!("|---|---|---|---|---|");
    for row in &rows {
        let link = GalsLink::new(
            row.reg_s,
            row.reg_t,
            Time::from_ps(row.t_s),
            Time::from_ps(row.t_t),
            4,
        );
        let sim = link.simulate(10, StallPattern::None);
        let ok = (sim.first_arrival.ps() - row.latency).abs() <= row.t_s + row.t_t;
        println!(
            "| {:.0} | {:.0} | {:.0} | {:.0} | {} |",
            row.t_s,
            row.t_t,
            row.latency,
            sim.first_arrival.ps(),
            if ok { "yes" } else { "NO" }
        );
    }

    // The paper's qualitative conclusion: total latency is never far from
    // the single-domain minimum source-sink delay (2739 ps).
    let worst = rows.iter().map(|r| r.latency).fold(0.0f64, f64::max);
    println!(
        "\nObservation: worst latency {worst:.0} ps vs minimum source-sink delay ≈ 2739 ps — {}",
        if worst < 2739.0 * 1.5 {
            "REPRODUCED (not significantly higher)"
        } else {
            "NOT reproduced"
        }
    );
}
