//! GALS bridge: route between two independently-clocked IPs and verify
//! the synthesized link by protocol simulation.
//!
//! A hard IP (fixed 400 ps clock) must receive data from the SoC fabric
//! (300 ps). The example synthesises the minimum-latency MCFIFO route for
//! several sender frequencies (Table III style), then *simulates* each
//! link cycle-by-cycle — relay stations, MCFIFO back-pressure, stalling
//! receiver — and compares measured latency/throughput against the
//! analytic claims.
//!
//! Run with: `cargo run --release --example gals_bridge`

use clockroute::prelude::*;
use clockroute_sim::{GalsLink, StallPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 15 mm fabric span on a 0.5 mm grid.
    let graph = GridGraph::open(40, 40, Length::from_um(500.0));
    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    let (s, t) = (Point::new(2, 2), Point::new(37, 32));

    println!(
        "{:>5} {:>5} | {:>5} {:>5} {:>5} {:>9} | {:>11} {:>12} {:>9}",
        "T_s", "T_t", "Reg-s", "Reg-t", "bufs", "latency", "sim latency", "sim thrpt", "fifo max"
    );
    for ts in [200.0, 250.0, 300.0, 400.0] {
        let tt = 400.0; // the hard IP's fixed period
        let sol = GalsSpec::new(&graph, &tech, &lib)
            .source(s)
            .sink(t)
            .periods(Time::from_ps(ts), Time::from_ps(tt))
            .solve()?;

        // Build the protocol model of exactly this link and run it.
        let link = GalsLink::new(
            sol.regs_source_side(),
            sol.regs_sink_side(),
            sol.t_s(),
            sol.t_t(),
            4,
        );
        let run = link.simulate(200, StallPattern::None);
        assert_eq!(run.delivered, 200, "protocol lost tokens");
        assert!(!run.overflowed, "relay station overflow");

        println!(
            "{:>5} {:>5} | {:>5} {:>5} {:>5} {:>6.0} ps | {:>8.0} ps {:>9.3}/ns {:>9}",
            ts,
            tt,
            sol.regs_source_side(),
            sol.regs_sink_side(),
            sol.buffer_count(),
            sol.latency().ps(),
            run.first_arrival.ps(),
            run.throughput_tokens_per_ns,
            run.fifo_max_occupancy,
        );
    }

    // Back-pressure study: the receiver stalls every 3rd cycle.
    println!("\nback-pressure (receiver stalls every 3rd cycle, T_s = 200, T_t = 400):");
    let sol = GalsSpec::new(&graph, &tech, &lib)
        .source(s)
        .sink(t)
        .periods(Time::from_ps(200.0), Time::from_ps(400.0))
        .solve()?;
    let link = GalsLink::new(
        sol.regs_source_side(),
        sol.regs_sink_side(),
        sol.t_s(),
        sol.t_t(),
        4,
    );
    let run = link.simulate(300, StallPattern::EveryKth(3));
    println!(
        "  delivered {} / 300, throughput {:.3} tokens/ns, {} puts rejected by full FIFO",
        run.delivered, run.throughput_tokens_per_ns, run.fifo_rejected_puts
    );
    assert_eq!(run.delivered, 300);
    println!("  → no tokens lost: the relay/MCFIFO flow control absorbs the mismatch");
    Ok(())
}
