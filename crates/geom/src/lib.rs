//! Physical units, planar geometry and floorplan modelling for `clockroute`.
//!
//! This crate is the bottom layer of the `clockroute` workspace. It provides:
//!
//! * [`units`] — zero-cost newtypes for the physical quantities that appear in
//!   Elmore delay computations ([`Time`], [`Resistance`], [`Capacitance`],
//!   [`Length`]) with dimension-checked arithmetic (`Ω × fF → ps`,
//!   `Ω/µm × µm → Ω`, …).
//! * [`Point`] / [`Rect`] — integer grid coordinates and axis-aligned
//!   rectangles used to describe chip floorplans.
//! * [`BlockageMap`] — which grid nodes are covered by *placement obstacles*
//!   (no gate may be inserted there) and which grid edges are removed by
//!   *wiring blockages* (no route may pass), exactly as modelled in
//!   Hassoun & Alpert, §II.
//! * [`Floorplan`] — a chip outline plus a set of IP / macro blocks that
//!   induce a [`BlockageMap`] on a routing grid of a chosen pitch.
//! * [`gen`] — seeded, reproducible random floorplan generators used by the
//!   test-suite and the benchmark harness.
//!
//! # Example
//!
//! ```
//! use clockroute_geom::{Floorplan, Rect, Point, BlockKind, units::Length};
//!
//! // A 25 mm × 25 mm die with one hard IP block that blocks both
//! // placement and wiring, rasterised on a 0.125 mm routing grid.
//! let mut fp = Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0));
//! fp.add_block(
//!     Rect::new(Point::new(40, 40), Point::new(80, 90)),
//!     BlockKind::Hard,
//! );
//! let map = fp.rasterize(200, 200);
//! assert!(map.is_node_blocked(Point::new(50, 50)));
//! assert!(!map.is_node_blocked(Point::new(5, 5)));
//! ```

pub mod blockage;
pub mod floorplan;
pub mod gen;
pub mod point;
pub mod rect;
pub mod units;

pub use blockage::{BlockageMap, EdgeDir};
pub use floorplan::{BlockKind, Floorplan, PlacedBlock};
pub use point::Point;
pub use rect::Rect;
pub use units::{Capacitance, CapPerLength, Length, ResPerLength, Resistance, Time};
