//! The routing grid graph.

use clockroute_geom::units::Length;
use clockroute_geom::{BlockageMap, Floorplan, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a grid node: `index = y · width + x`.
///
/// `NodeId`s are only meaningful relative to the [`GridGraph`] that issued
/// them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index, suitable for indexing per-node side arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The routing grid graph `G(V, E)`.
///
/// Wraps a [`BlockageMap`] together with the physical pitch of the grid,
/// and exposes the adjacency and labelling queries the search algorithms
/// need. Degree is at most 4, so `|E| ≤ 4n` (the bound the paper's
/// complexity analysis relies on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridGraph {
    blockage: BlockageMap,
    pitch_x: Length,
    pitch_y: Length,
}

impl GridGraph {
    /// Creates a grid graph from an explicit blockage map and pitch.
    ///
    /// # Panics
    ///
    /// Panics if either pitch is not strictly positive.
    pub fn new(blockage: BlockageMap, pitch_x: Length, pitch_y: Length) -> GridGraph {
        assert!(
            pitch_x.um() > 0.0 && pitch_y.um() > 0.0,
            "grid pitch must be positive"
        );
        GridGraph {
            blockage,
            pitch_x,
            pitch_y,
        }
    }

    /// Creates an unblocked `width × height` grid with uniform pitch.
    pub fn open(width: u32, height: u32, pitch: Length) -> GridGraph {
        GridGraph::new(BlockageMap::new(width, height), pitch, pitch)
    }

    /// Rasterises a floorplan onto a `grid_w × grid_h` grid, deriving the
    /// pitch from the die dimensions (paper §V: a 25 mm die at 50/100/200
    /// grid nodes per side gives 0.5/0.25/0.125 mm separations).
    pub fn from_floorplan(fp: &Floorplan, grid_w: u32, grid_h: u32) -> GridGraph {
        let (px, py) = fp.pitch(grid_w, grid_h);
        GridGraph::new(fp.rasterize(grid_w, grid_h), px, py)
    }

    /// Grid width in nodes.
    #[inline]
    pub fn width(&self) -> u32 {
        self.blockage.width()
    }

    /// Grid height in nodes.
    #[inline]
    pub fn height(&self) -> u32 {
        self.blockage.height()
    }

    /// Number of nodes `n = width × height`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.blockage.node_count()
    }

    /// Horizontal pitch (physical length of east–west edges).
    #[inline]
    pub fn pitch_x(&self) -> Length {
        self.pitch_x
    }

    /// Vertical pitch (physical length of north–south edges).
    #[inline]
    pub fn pitch_y(&self) -> Length {
        self.pitch_y
    }

    /// The underlying blockage map.
    #[inline]
    pub fn blockage(&self) -> &BlockageMap {
        &self.blockage
    }

    /// Mutable access to the blockage map (for incremental scenario
    /// construction).
    #[inline]
    pub fn blockage_mut(&mut self) -> &mut BlockageMap {
        &mut self.blockage
    }

    /// `true` if `p` lies on the grid.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x < self.width() && p.y < self.height()
    }

    /// The node at grid point `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the grid.
    #[inline]
    pub fn node(&self, p: Point) -> NodeId {
        assert!(self.contains(p), "{p} outside {}×{} grid", self.width(), self.height());
        NodeId(p.y * self.width() + p.x)
    }

    /// The grid point of node `id`.
    #[inline]
    pub fn point(&self, id: NodeId) -> Point {
        let w = self.width();
        Point::new(id.0 % w, id.0 / w)
    }

    /// `p(v) = 1` in the paper: a gate may be inserted at this node.
    #[inline]
    pub fn is_insertable(&self, id: NodeId) -> bool {
        !self.blockage.is_node_blocked(self.point(id))
    }

    /// `true` if a register/synchronizer may be inserted at this node
    /// (insertable and not covered by a register keep-out).
    #[inline]
    pub fn is_register_allowed(&self, id: NodeId) -> bool {
        !self.blockage.is_register_blocked(self.point(id))
    }

    /// Physical length of the edge between adjacent nodes `a` and `b`.
    #[inline]
    pub fn edge_length(&self, a: NodeId, b: NodeId) -> Length {
        let pa = self.point(a);
        let pb = self.point(b);
        debug_assert!(pa.is_adjacent(pb), "{pa} and {pb} not adjacent");
        if pa.y == pb.y {
            self.pitch_x
        } else {
            self.pitch_y
        }
    }

    /// Iterates over the unblocked neighbours of `id` (degree ≤ 4),
    /// in deterministic west/east/south/north order.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let p = self.point(id);
        p.neighbors(self.width(), self.height()).filter_map(move |q| {
            if self.blockage.is_edge_blocked(p, q) {
                None
            } else {
                Some(self.node(q))
            }
        })
    }

    /// Number of usable (unblocked) edges in the graph.
    pub fn edge_count(&self) -> usize {
        let mut count = 0;
        for y in 0..self.height() {
            for x in 0..self.width() {
                let p = Point::new(x, y);
                if x + 1 < self.width() && !self.blockage.is_edge_blocked(p, Point::new(x + 1, y))
                {
                    count += 1;
                }
                if y + 1 < self.height() && !self.blockage.is_edge_blocked(p, Point::new(x, y + 1))
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// Iterates over every node of the grid, row-major.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::Rect;

    fn pitch() -> Length {
        Length::from_um(125.0)
    }

    #[test]
    fn node_point_roundtrip() {
        let g = GridGraph::open(7, 5, pitch());
        for y in 0..5 {
            for x in 0..7 {
                let p = Point::new(x, y);
                assert_eq!(g.point(g.node(p)), p);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn node_out_of_bounds_panics() {
        let g = GridGraph::open(4, 4, pitch());
        let _ = g.node(Point::new(4, 0));
    }

    #[test]
    fn open_grid_degrees() {
        let g = GridGraph::open(3, 3, pitch());
        assert_eq!(g.neighbors(g.node(Point::new(1, 1))).count(), 4);
        assert_eq!(g.neighbors(g.node(Point::new(0, 0))).count(), 2);
        assert_eq!(g.neighbors(g.node(Point::new(1, 0))).count(), 3);
    }

    #[test]
    fn edge_count_open_grid() {
        // w×h grid: h·(w−1) horizontal + w·(h−1) vertical edges.
        let g = GridGraph::open(5, 4, pitch());
        assert_eq!(g.edge_count(), 4 * 4 + 5 * 3);
        // |E| ≤ 4n as the complexity analysis requires.
        assert!(g.edge_count() <= 4 * g.node_count());
    }

    #[test]
    fn blocked_edges_hidden_from_adjacency() {
        let mut blk = BlockageMap::new(4, 4);
        blk.block_edge(Point::new(1, 1), Point::new(2, 1));
        let g = GridGraph::new(blk, pitch(), pitch());
        let n: Vec<_> = g
            .neighbors(g.node(Point::new(1, 1)))
            .map(|id| g.point(id))
            .collect();
        assert!(!n.contains(&Point::new(2, 1)));
        assert_eq!(n.len(), 3);
        assert_eq!(g.edge_count(), 24 - 1);
    }

    #[test]
    fn blocked_nodes_remain_routable() {
        // p(v) = 0 blocks insertion, not routing (paper §II).
        let mut blk = BlockageMap::new(4, 4);
        blk.block_node(Point::new(2, 2));
        let g = GridGraph::new(blk, pitch(), pitch());
        let id = g.node(Point::new(2, 2));
        assert!(!g.is_insertable(id));
        assert!(!g.is_register_allowed(id));
        assert_eq!(g.neighbors(id).count(), 4);
    }

    #[test]
    fn register_keepout_allows_buffers() {
        let mut blk = BlockageMap::new(4, 4);
        blk.block_register(Point::new(1, 2));
        let g = GridGraph::new(blk, pitch(), pitch());
        let id = g.node(Point::new(1, 2));
        assert!(g.is_insertable(id));
        assert!(!g.is_register_allowed(id));
    }

    #[test]
    fn rectangular_pitch_edge_lengths() {
        let g = GridGraph::new(
            BlockageMap::new(4, 4),
            Length::from_um(100.0),
            Length::from_um(200.0),
        );
        let a = g.node(Point::new(1, 1));
        let east = g.node(Point::new(2, 1));
        let north = g.node(Point::new(1, 2));
        assert_eq!(g.edge_length(a, east), Length::from_um(100.0));
        assert_eq!(g.edge_length(a, north), Length::from_um(200.0));
        // Symmetric.
        assert_eq!(g.edge_length(east, a), Length::from_um(100.0));
    }

    #[test]
    fn from_floorplan_pitch_and_blockages() {
        let mut fp = Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0));
        fp.add_block(
            Rect::new(Point::new(10, 10), Point::new(12, 12)),
            clockroute_geom::BlockKind::Obstacle,
        );
        let g = GridGraph::from_floorplan(&fp, 200, 200);
        assert!((g.pitch_x().um() - 125.0).abs() < 1e-9);
        assert!(!g.is_insertable(g.node(Point::new(11, 11))));
        assert!(g.is_insertable(g.node(Point::new(20, 20))));
    }

    #[test]
    fn nodes_iterator_covers_grid() {
        let g = GridGraph::open(6, 3, pitch());
        assert_eq!(g.nodes().count(), 18);
        let last = g.nodes().last().unwrap();
        assert_eq!(g.point(last), Point::new(5, 2));
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = GridGraph::new(BlockageMap::new(2, 2), Length::ZERO, pitch());
    }
}
