//! Paths on the routing grid.

use crate::{GridGraph, NodeId};
use clockroute_geom::units::Length;
use clockroute_geom::Point;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A path on the grid: a sequence of grid points
/// `(s = v₁, v₂, …, v_k = t)` (paper §II).
///
/// `GridPath` does not itself guarantee validity; call
/// [`validate`](GridPath::validate) against a [`GridGraph`] to check
/// adjacency and blockage constraints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPath {
    points: Vec<Point>,
}

/// Errors reported by [`GridPath::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidatePathError {
    /// The path contains fewer than one point.
    Empty,
    /// A point lies outside the grid.
    OutOfBounds { index: usize, point: Point },
    /// Consecutive points are not grid-adjacent.
    NotAdjacent { index: usize },
    /// The path uses a blocked (deleted) edge.
    BlockedEdge { index: usize },
}

impl fmt::Display for ValidatePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidatePathError::Empty => write!(f, "path is empty"),
            ValidatePathError::OutOfBounds { index, point } => {
                write!(f, "path point #{index} {point} is outside the grid")
            }
            ValidatePathError::NotAdjacent { index } => {
                write!(f, "path points #{index} and #{} are not adjacent", index + 1)
            }
            ValidatePathError::BlockedEdge { index } => {
                write!(f, "path edge #{index} is blocked")
            }
        }
    }
}

impl Error for ValidatePathError {}

impl GridPath {
    /// Creates a path from a point sequence.
    pub fn new(points: Vec<Point>) -> GridPath {
        GridPath { points }
    }

    /// The point sequence.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the path has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of edges (`len − 1`, saturating).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// The first point.
    pub fn source(&self) -> Option<Point> {
        self.points.first().copied()
    }

    /// The last point.
    pub fn sink(&self) -> Option<Point> {
        self.points.last().copied()
    }

    /// Total physical length of the path on `graph`.
    pub fn length(&self, graph: &GridGraph) -> Length {
        self.points
            .windows(2)
            .map(|w| graph.edge_length(graph.node(w[0]), graph.node(w[1])))
            .sum()
    }

    /// Checks that every point is on the grid, consecutive points are
    /// adjacent, and no traversed edge is blocked.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, in path order.
    pub fn validate(&self, graph: &GridGraph) -> Result<(), ValidatePathError> {
        if self.points.is_empty() {
            return Err(ValidatePathError::Empty);
        }
        for (i, &p) in self.points.iter().enumerate() {
            if !graph.contains(p) {
                return Err(ValidatePathError::OutOfBounds { index: i, point: p });
            }
        }
        for (i, w) in self.points.windows(2).enumerate() {
            if !w[0].is_adjacent(w[1]) {
                return Err(ValidatePathError::NotAdjacent { index: i });
            }
            if graph.blockage().is_edge_blocked(w[0], w[1]) {
                return Err(ValidatePathError::BlockedEdge { index: i });
            }
        }
        Ok(())
    }

    /// Iterates over the node ids of the path on `graph`.
    pub fn node_ids<'a>(&'a self, graph: &'a GridGraph) -> impl Iterator<Item = NodeId> + 'a {
        self.points.iter().map(move |&p| graph.node(p))
    }
}

impl FromIterator<Point> for GridPath {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> GridPath {
        GridPath::new(iter.into_iter().collect())
    }
}

impl fmt::Display for GridPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path[")?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::BlockageMap;

    fn open_graph() -> GridGraph {
        GridGraph::open(5, 5, Length::from_um(100.0))
    }

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn valid_path() {
        let g = open_graph();
        let path: GridPath = [p(0, 0), p(1, 0), p(1, 1), p(2, 1)].into_iter().collect();
        assert!(path.validate(&g).is_ok());
        assert_eq!(path.edge_count(), 3);
        assert_eq!(path.length(&g), Length::from_um(300.0));
        assert_eq!(path.source(), Some(p(0, 0)));
        assert_eq!(path.sink(), Some(p(2, 1)));
    }

    #[test]
    fn empty_path_invalid() {
        let g = open_graph();
        let path = GridPath::new(vec![]);
        assert_eq!(path.validate(&g), Err(ValidatePathError::Empty));
        assert!(path.is_empty());
        assert_eq!(path.edge_count(), 0);
    }

    #[test]
    fn single_point_path_valid() {
        let g = open_graph();
        let path = GridPath::new(vec![p(2, 2)]);
        assert!(path.validate(&g).is_ok());
        assert_eq!(path.length(&g), Length::ZERO);
    }

    #[test]
    fn out_of_bounds_detected() {
        let g = open_graph();
        let path = GridPath::new(vec![p(0, 0), p(0, 7)]);
        assert_eq!(
            path.validate(&g),
            Err(ValidatePathError::OutOfBounds {
                index: 1,
                point: p(0, 7)
            })
        );
    }

    #[test]
    fn non_adjacent_detected() {
        let g = open_graph();
        let path = GridPath::new(vec![p(0, 0), p(2, 0)]);
        assert_eq!(path.validate(&g), Err(ValidatePathError::NotAdjacent { index: 0 }));
    }

    #[test]
    fn blocked_edge_detected() {
        let mut blk = BlockageMap::new(5, 5);
        blk.block_edge(p(1, 0), p(2, 0));
        let g = GridGraph::new(blk, Length::from_um(100.0), Length::from_um(100.0));
        let path = GridPath::new(vec![p(0, 0), p(1, 0), p(2, 0)]);
        assert_eq!(path.validate(&g), Err(ValidatePathError::BlockedEdge { index: 1 }));
    }

    #[test]
    fn node_ids_round_trip() {
        let g = open_graph();
        let path: GridPath = [p(0, 0), p(0, 1)].into_iter().collect();
        let ids: Vec<_> = path.node_ids(&g).collect();
        assert_eq!(g.point(ids[0]), p(0, 0));
        assert_eq!(g.point(ids[1]), p(0, 1));
    }

    #[test]
    fn display() {
        let path: GridPath = [p(0, 0), p(1, 0)].into_iter().collect();
        assert_eq!(path.to_string(), "path[(0, 0) → (1, 0)]");
    }
}
