//! Fixture-based rule tests: every rule CR000–CR007 must fire on its
//! known-bad snippet at the documented file:line, and stay silent on
//! the good patterns embedded in the same fixtures.
//!
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! walk — they are data, not code) and are linted under an
//! *impersonated* workspace-relative path so each rule's scope logic
//! is exercised too.

use clockroute_lint::lint_source;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"))
}

/// Lints fixture `name` as if it lived at `rel`, returning
/// `(rule, line)` pairs in report order.
fn run(name: &str, rel: &str) -> Vec<(String, u32)> {
    lint_source(rel, &fixture(name))
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn cr001_fires_on_nan_unsound_orderings() {
    // Anywhere in non-test code; impersonate a core source file.
    let got = run("cr001.rs", "crates/core/src/engine.rs");
    assert_eq!(
        got,
        [
            ("CR001".to_string(), 15), // impl PartialOrd without delegation
            ("CR001".to_string(), 18), // .partial_cmp( inside it
            ("CR001".to_string(), 24), // sort_by footgun
        ],
        "{got:?}"
    );
}

#[test]
fn cr001_is_silent_once_the_delegation_exists() {
    // The same fixture keeps a canonical `Good` impl: no findings for it.
    let src = fixture("cr001.rs");
    let good_only = &src[src.find("struct Good").expect("fixture marker")..];
    assert!(lint_source("crates/core/src/engine.rs", good_only).is_empty());
}

#[test]
fn cr002_fires_in_core_crates_only() {
    let got = run("cr002.rs", "crates/elmore/src/gate.rs");
    assert_eq!(
        got,
        [("CR002".to_string(), 5), ("CR002".to_string(), 7)],
        "{got:?}"
    );
    // The flow crate joined the unwrap-free set in PR 10.
    let flow = run("cr002.rs", "crates/flow/src/lib.rs");
    assert_eq!(flow.len(), 2, "{flow:?}");
    // Same file outside the algorithmic crates: out of scope.
    assert!(run("cr002.rs", "crates/bench/src/lib.rs").is_empty());
    // Same file in a tests/ directory: test scope.
    assert!(run("cr002.rs", "crates/core/tests/x.rs").is_empty());
}

#[test]
fn cr003_fires_outside_the_clock_seams() {
    let got = run("cr003.rs", "crates/core/src/rbp.rs");
    assert_eq!(
        got,
        [("CR003".to_string(), 6), ("CR003".to_string(), 8)],
        "{got:?}"
    );
    // The three allowlisted files may read clocks.
    assert!(run("cr003.rs", "crates/core/src/budget.rs").is_empty());
    assert!(run("cr003.rs", "crates/core/src/telemetry.rs").is_empty());
    assert!(run("cr003.rs", "crates/service/src/admission.rs").is_empty());
    // The rest of the service crate stays clock-free.
    let got = run("cr003.rs", "crates/service/src/server.rs");
    assert_eq!(got.len(), 2, "{got:?}");
}

#[test]
fn cr004_fires_on_threads_and_static_mut() {
    let got = run("cr004.rs", "crates/core/src/fastpath.rs");
    assert_eq!(
        got,
        [
            ("CR004".to_string(), 5),  // static mut
            ("CR004".to_string(), 9),  // thread::spawn
            ("CR004".to_string(), 12), // thread::scope
        ],
        "{got:?}"
    );
    // The planner and the service connection loop may create threads —
    // but static mut stays banned in both.
    let plan = run("cr004.rs", "crates/plan/src/lib.rs");
    assert_eq!(plan, [("CR004".to_string(), 5)], "{plan:?}");
    let server = run("cr004.rs", "crates/service/src/server.rs");
    assert_eq!(server, [("CR004".to_string(), 5)], "{server:?}");
    // The bounded worker pool is an allowed spawn site too.
    let pool = run("cr004.rs", "crates/service/src/pool.rs");
    assert_eq!(pool, [("CR004".to_string(), 5)], "{pool:?}");
    // Other service modules stay thread-free.
    let cache = run("cr004.rs", "crates/service/src/cache.rs");
    assert_eq!(cache.len(), 3, "{cache:?}");
}

#[test]
fn cr005_fires_on_uncharged_queue_loops() {
    let got = run("cr005.rs", "crates/core/src/gals.rs");
    // Line 6: the classic uncharged loop. Line 52: the arena-substrate
    // shape (pop → dead-skip → expand) without a charge — the dead-skip
    // alone must not read as cancellable. The charged arena loop and the
    // suppressed bounded drain in the same fixture must stay clean.
    assert_eq!(
        got,
        [("CR005".to_string(), 6), ("CR005".to_string(), 52)],
        "{got:?}"
    );
    // The flow oracle's priced Dijkstra is held to the same bar.
    let flow = run("cr005.rs", "crates/flow/src/price.rs");
    assert_eq!(
        flow,
        [("CR005".to_string(), 6), ("CR005".to_string(), 52)],
        "{flow:?}"
    );
    // Outside the search modules the rule is out of scope.
    assert!(run("cr005.rs", "crates/core/src/engine.rs").is_empty());
}

#[test]
fn cr006_fires_on_unordered_collections_in_report_modules() {
    let got = run("cr006.rs", "crates/grid/src/render.rs");
    assert_eq!(
        got,
        [
            ("CR006".to_string(), 3),
            ("CR006".to_string(), 5),
            ("CR006".to_string(), 11),
        ],
        "{got:?}"
    );
    // The service's response-building modules are held to the same bar.
    let got = run("cr006.rs", "crates/service/src/protocol.rs");
    assert_eq!(got.len(), 3, "{got:?}");
    // So are the flow crate's plan/report modules (PR 10): their
    // congestion section is byte-compared across runs and --jobs.
    assert_eq!(run("cr006.rs", "crates/flow/src/lib.rs").len(), 3);
    assert_eq!(run("cr006.rs", "crates/flow/src/report.rs").len(), 3);
    // A non-report module may use HashMap (e.g. the reference oracles).
    assert!(run("cr006.rs", "crates/core/src/reference.rs").is_empty());
}

#[test]
fn cr007_fires_on_unbounded_service_reads() {
    let got = run("cr007.rs", "crates/service/src/server.rs");
    assert_eq!(
        got,
        [
            ("CR007".to_string(), 4),  // BufRead::lines
            ("CR007".to_string(), 13), // read_line
            ("CR007".to_string(), 19), // UFCS read_to_string
        ],
        "{got:?}"
    );
    // The bounded reader itself is the exemption.
    assert!(run("cr007.rs", "crates/service/src/frame.rs").is_empty());
    // Outside the service crate the rule is out of scope.
    assert!(run("cr007.rs", "crates/cli/src/lib.rs").is_empty());
    // Integration tests of the service crate are test scope by path.
    assert!(run("cr007.rs", "crates/service/tests/x.rs").is_empty());
}

#[test]
fn cr008_fires_on_raw_sync_primitives_in_threaded_crates() {
    let got = run("cr008.rs", "crates/core/src/engine.rs");
    assert_eq!(
        got,
        [
            ("CR008".to_string(), 6), // Mutex::new
            ("CR008".to_string(), 7), // RwLock::new
            ("CR008".to_string(), 8), // Condvar::new
        ],
        "{got:?}"
    );
    // The checked-lock module itself is the one exemption.
    assert!(run("cr008.rs", "crates/core/src/lockcheck.rs").is_empty());
    // Outside the threaded crates the rule is out of scope.
    assert!(run("cr008.rs", "crates/cli/src/lib.rs").is_empty());
    // Integration tests are test scope by path.
    assert!(run("cr008.rs", "crates/service/tests/x.rs").is_empty());
}

#[test]
fn cr009_fires_on_computed_ranks_and_escaping_guards() {
    let got = run("cr009.rs", "crates/service/src/shard.rs");
    assert_eq!(
        got,
        [
            ("CR009".to_string(), 9),  // computed rank argument
            ("CR009".to_string(), 13), // returning a .lock( guard
            ("CR009".to_string(), 17), // MutexGuard named in a field
        ],
        "{got:?}"
    );
    assert!(run("cr009.rs", "crates/core/src/lockcheck.rs").is_empty());
    assert!(run("cr009.rs", "crates/bench/src/lib.rs").is_empty());
}

#[test]
fn cr010_fires_on_waits_with_extra_guards_live() {
    let got = run("cr010.rs", "crates/service/src/pool.rs");
    assert_eq!(
        got,
        [
            ("CR010".to_string(), 8),  // wait while `outer` is live
            ("CR010".to_string(), 31), // wait_timeout while `held` is live
        ],
        "{got:?}"
    );
    assert!(run("cr010.rs", "crates/core/src/lockcheck.rs").is_empty());
    assert!(run("cr010.rs", "crates/cli/src/main.rs").is_empty());
}

#[test]
fn cr000_requires_reason_and_known_rule() {
    let got = run("cr000.rs", "crates/core/src/x.rs");
    assert_eq!(
        got,
        [
            ("CR000".to_string(), 4),  // allow without reason…
            ("CR002".to_string(), 5),  // …suppresses nothing
            ("CR000".to_string(), 14), // unknown rule id
        ],
        "{got:?}"
    );
}

// ---------------------------------------------------------------------
// Acceptance: mutating the *real* sources must fail the gate.
// ---------------------------------------------------------------------

fn real_source(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {rel}: {e}"))
}

#[test]
fn deleting_the_total_cmp_delegation_fails_cr001() {
    for rel in ["crates/core/src/engine.rs", "crates/grid/src/dijkstra.rs"] {
        let src = real_source(rel);
        // The file as shipped is clean.
        assert!(
            lint_source(rel, &src).is_empty(),
            "{rel} should be crlint-clean as shipped"
        );
        // Delete the total-order delegation, as a careless refactor would.
        let broken = src.replace("Some(self.cmp(other))", "None");
        assert_ne!(src, broken, "{rel} lost its delegation anchor");
        let findings = lint_source(rel, &broken);
        assert!(
            findings.iter().any(|f| f.rule == "CR001"),
            "removing total_cmp from {rel} must trip CR001: {findings:?}"
        );
    }
}

#[test]
fn deleting_a_budget_charge_fails_cr005() {
    for rel in [
        "crates/core/src/fastpath.rs",
        "crates/core/src/rbp.rs",
        "crates/core/src/gals.rs",
        "crates/core/src/latch.rs",
        "crates/flow/src/price.rs",
    ] {
        let src = real_source(rel);
        assert!(
            lint_source(rel, &src).is_empty(),
            "{rel} should be crlint-clean as shipped"
        );
        // Strip every charge call the way a careless refactor would.
        let broken = src
            .replace("charge_pop(", "uncharged_pop_stub(")
            .replace("charge_expand(", "uncharged_expand_stub(");
        assert_ne!(src, broken, "{rel} lost its charge anchors");
        let findings = lint_source(rel, &broken);
        assert!(
            findings.iter().any(|f| f.rule == "CR005"),
            "removing charges from {rel} must trip CR005: {findings:?}"
        );
    }
}

#[test]
fn reverting_a_ranked_lock_to_std_mutex_fails_cr008() {
    for rel in [
        "crates/service/src/shard.rs",
        "crates/service/src/pool.rs",
        "crates/core/src/telemetry.rs",
    ] {
        let src = real_source(rel);
        assert!(
            lint_source(rel, &src).is_empty(),
            "{rel} should be crlint-clean as shipped"
        );
        // Undo the lockcheck migration the way a careless revert would.
        let broken = src.replace("OrderedMutex::new(", "Mutex::new(");
        assert_ne!(src, broken, "{rel} lost its OrderedMutex anchor");
        let findings = lint_source(rel, &broken);
        assert!(
            findings.iter().any(|f| f.rule == "CR008"),
            "reverting {rel} to raw Mutex must trip CR008: {findings:?}"
        );
    }
}

#[test]
fn computing_a_lock_rank_fails_cr009() {
    let rel = "crates/service/src/shard.rs";
    let src = real_source(rel);
    assert!(lint_source(rel, &src).is_empty());
    // Route the rank through a helper call instead of a literal.
    let broken = src.replace(
        "OrderedMutex::new(LockRank::",
        "OrderedMutex::new(rank_of(LockRank::",
    );
    assert_ne!(src, broken, "{rel} lost its literal-rank anchor");
    let findings = lint_source(rel, &broken);
    assert!(
        findings.iter().any(|f| f.rule == "CR009"),
        "computing a rank in {rel} must trip CR009: {findings:?}"
    );
}

#[test]
fn deleting_a_lock_rank_argument_fails_cr009() {
    let rel = "crates/core/src/telemetry.rs";
    let src = real_source(rel);
    assert!(lint_source(rel, &src).is_empty());
    // Drop the rank argument entirely, as if OrderedMutex had a
    // one-argument constructor.
    let broken = src.replace("OrderedMutex::new(LockRank::Telemetry, ", "OrderedMutex::new(");
    assert_ne!(src, broken, "{rel} lost its rank-argument anchor");
    let findings = lint_source(rel, &broken);
    assert!(
        findings.iter().any(|f| f.rule == "CR009"),
        "deleting the rank argument in {rel} must trip CR009: {findings:?}"
    );
}

#[test]
fn hoisting_a_guard_across_a_wait_fails_cr010() {
    let rel = "crates/service/src/shard.rs";
    let src = real_source(rel);
    assert!(lint_source(rel, &src).is_empty());
    // Seed a second live guard around the single-flight wait loop, the
    // shape a "just peek at the cache while we wait" patch would take.
    let anchor = "pending = shard.done.wait(pending);";
    assert!(src.contains(anchor), "{rel} lost its wait-loop anchor");
    let broken = src.replace(
        anchor,
        "let peek = shard.cache.lock();\n                pending = shard.done.wait(pending);",
    );
    let findings = lint_source(rel, &broken);
    assert!(
        findings.iter().any(|f| f.rule == "CR010"),
        "waiting with a second guard live in {rel} must trip CR010: {findings:?}"
    );
}
