//! Baseline maze routing: physically-shortest paths and hop counts.
//!
//! These are the classic single-criterion routers the paper's algorithms
//! generalise. They serve as baselines in the benchmark harness (a
//! shortest path ignores delay and insertion entirely) and as oracles in
//! tests (on an open grid the fast path route length must match the
//! shortest-path length, since detours only add delay).

use crate::{GridGraph, GridPath, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Error returned when no route exists between the requested terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathError;

impl fmt::Display for ShortestPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("no route exists between source and sink")
    }
}

impl Error for ShortestPathError {}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by node id for determinism.
        // `total_cmp` keeps the heap invariant even for non-finite
        // distances instead of collapsing them to "equal".
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

// The canonical CR001 pattern: `PartialOrd` delegates to the total
// `Ord` above, so NaN can never corrupt the heap invariant. crlint
// accepts exactly this shape (see crates/lint, rule CR001).
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path by physical wire length.
///
/// # Errors
///
/// Returns [`ShortestPathError`] if the sink is unreachable (wiring
/// blockages disconnect the terminals).
///
/// # Example
///
/// ```
/// use clockroute_grid::{GridGraph, shortest_path};
/// use clockroute_geom::{Point, units::Length};
///
/// let g = GridGraph::open(10, 10, Length::from_um(100.0));
/// let path = shortest_path(&g, Point::new(0, 0), Point::new(9, 9))?;
/// assert_eq!(path.edge_count(), 18);
/// # Ok::<(), clockroute_grid::ShortestPathError>(())
/// ```
pub fn shortest_path(
    graph: &GridGraph,
    source: clockroute_geom::Point,
    sink: clockroute_geom::Point,
) -> Result<GridPath, ShortestPathError> {
    let s = graph.node(source);
    let t = graph.node(sink);
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: s });

    // Edge lengths are finite by construction (GridGraph validates the
    // pitch), so every relaxed distance stays finite; the debug assert
    // below guards the total order the heap relies on.

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if u == t {
            break;
        }
        for v in graph.neighbors(u) {
            let nd = d + graph.edge_length(u, v).um();
            debug_assert!(nd.is_finite(), "non-finite heap key {nd}");
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    if dist[t.index()].is_infinite() {
        return Err(ShortestPathError);
    }
    let mut points = vec![graph.point(t)];
    let mut cur = t;
    while let Some(p) = prev[cur.index()] {
        points.push(graph.point(p));
        cur = p;
    }
    points.reverse();
    Ok(GridPath::new(points))
}

/// Breadth-first hop distances from `source` to every node (`u32::MAX` for
/// unreachable nodes). Useful for wavefront studies and reachability
/// checks.
pub fn bfs_hops(graph: &GridGraph, source: clockroute_geom::Point) -> Vec<u32> {
    let s = graph.node(source);
    let mut hops = vec![u32::MAX; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    hops[s.index()] = 0;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        let d = hops[u.index()];
        for v in graph.neighbors(u) {
            if hops[v.index()] == u32::MAX {
                hops[v.index()] = d + 1;
                queue.push_back(v);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;
    use clockroute_geom::{BlockageMap, Point, Rect};

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn straight_line_on_open_grid() {
        let g = GridGraph::open(10, 10, Length::from_um(100.0));
        let path = shortest_path(&g, p(0, 5), p(9, 5)).unwrap();
        assert_eq!(path.edge_count(), 9);
        assert!(path.validate(&g).is_ok());
        assert_eq!(path.length(&g), Length::from_um(900.0));
    }

    #[test]
    fn manhattan_optimal_on_open_grid() {
        let g = GridGraph::open(20, 20, Length::from_um(50.0));
        let path = shortest_path(&g, p(2, 3), p(15, 17)).unwrap();
        assert_eq!(path.edge_count() as u32, p(2, 3).manhattan(p(15, 17)));
    }

    #[test]
    fn detours_around_wall() {
        // Vertical wall of blocked edges with a single gap.
        let mut blk = BlockageMap::new(9, 9);
        for y in 0..9 {
            if y != 8 {
                blk.block_edge(p(4, y), p(5, y));
            }
        }
        let g = GridGraph::new(blk, Length::from_um(100.0), Length::from_um(100.0));
        let path = shortest_path(&g, p(0, 0), p(8, 0)).unwrap();
        assert!(path.validate(&g).is_ok());
        // Must climb to row 8 and back: 8 + 8 extra edges over the direct 8.
        assert_eq!(path.edge_count(), 8 + 16);
    }

    #[test]
    fn disconnected_reports_error() {
        let mut blk = BlockageMap::new(5, 5);
        // Sever column 2 completely.
        for y in 0..5 {
            blk.block_edge(p(1, y), p(2, y));
        }
        let g = GridGraph::new(blk, Length::from_um(100.0), Length::from_um(100.0));
        let err = shortest_path(&g, p(0, 0), p(4, 4)).unwrap_err();
        assert_eq!(err, ShortestPathError);
        assert_eq!(err.to_string(), "no route exists between source and sink");
    }

    #[test]
    fn source_equals_sink() {
        let g = GridGraph::open(4, 4, Length::from_um(100.0));
        let path = shortest_path(&g, p(1, 1), p(1, 1)).unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path.edge_count(), 0);
    }

    #[test]
    fn rectangular_pitch_prefers_cheap_axis() {
        // Vertical edges are 4× longer; going around horizontally can win.
        let g = GridGraph::new(
            BlockageMap::new(10, 3),
            Length::from_um(100.0),
            Length::from_um(400.0),
        );
        let path = shortest_path(&g, p(0, 0), p(9, 2)).unwrap();
        // Any monotone path has the same length here (9·100 + 2·400); just
        // confirm optimality value.
        assert_eq!(path.length(&g), Length::from_um(1700.0));
    }

    #[test]
    fn bfs_hops_open_grid() {
        let g = GridGraph::open(5, 5, Length::from_um(100.0));
        let hops = bfs_hops(&g, p(0, 0));
        assert_eq!(hops[g.node(p(0, 0)).index()], 0);
        assert_eq!(hops[g.node(p(4, 4)).index()], 8);
        assert_eq!(hops[g.node(p(2, 1)).index()], 3);
    }

    #[test]
    fn bfs_hops_unreachable() {
        let mut blk = BlockageMap::new(5, 5);
        blk.block_edges(&Rect::new(p(0, 0), p(4, 4)));
        let g = GridGraph::new(blk, Length::from_um(100.0), Length::from_um(100.0));
        let hops = bfs_hops(&g, p(0, 0));
        assert_eq!(hops[g.node(p(4, 4)).index()], u32::MAX);
    }

    #[test]
    fn deterministic_route() {
        let g = GridGraph::open(15, 15, Length::from_um(100.0));
        let a = shortest_path(&g, p(0, 0), p(14, 14)).unwrap();
        let b = shortest_path(&g, p(0, 0), p(14, 14)).unwrap();
        assert_eq!(a, b);
    }
}
