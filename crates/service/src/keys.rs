//! Canonical scenario fingerprints and near-miss deltas.
//!
//! Two fingerprints per scenario (DESIGN.md §12):
//!
//! * the **scenario key** — die, grid, technology, reservation mode,
//!   nets (in order) *and* the blockage set. Equal keys mean "the same
//!   routing problem"; the cache answers these byte-for-byte.
//! * the **base key** — everything except the blockage set. Equal base
//!   keys with different blocks are warm-start candidates: same die,
//!   same grid, same nets, only the obstacle landscape moved.
//!
//! Both are built from the *parsed* [`Scenario`], so comment, spacing,
//! line-ending and blockage-order differences in the `.cr` text
//! vanish. Net order is deliberately load-bearing (sequential
//! reservation is order-sensitive) and hashed in sequence. Hashes are
//! fingerprints, not proofs: every cache decision re-verifies with the
//! structural equality helpers below before trusting a match.

use clockroute_cli::scenario::Scenario;
use clockroute_core::canon::{combine_unordered, CanonHasher};
use clockroute_geom::{BlockKind, PlacedBlock, Point};
use clockroute_plan::{NetKind, NetSpec};
use std::collections::BTreeSet;

/// Full canonical fingerprint: base + blockage set.
pub fn scenario_key(s: &Scenario) -> u64 {
    let mut h = CanonHasher::new();
    write_base(&mut h, s);
    h.write_u64(blocks_key(s));
    h.finish()
}

/// Blockage-independent fingerprint (die, grid, tech, reserve, nets).
pub fn base_key(s: &Scenario) -> u64 {
    let mut h = CanonHasher::new();
    write_base(&mut h, s);
    h.finish()
}

/// Order-insensitive fingerprint of the blockage multiset.
pub fn blocks_key(s: &Scenario) -> u64 {
    combine_unordered(s.floorplan.blocks().iter().map(block_hash))
}

fn write_base(h: &mut CanonHasher, s: &Scenario) {
    h.write_str("clockroute.scenario.v2");
    h.write_f64(s.floorplan.die_width().mm());
    h.write_f64(s.floorplan.die_height().mm());
    h.write_u32(s.grid.0);
    h.write_u32(s.grid.1);
    h.write_f64(s.tech.unit_res().ohms_per_um());
    h.write_f64(s.tech.unit_cap().ff_per_um());
    h.write_u8(u8::from(s.reserve));
    match s.capacities.default_cap() {
        None => h.write_u8(0),
        Some(c) => {
            h.write_u8(1);
            h.write_u32(c);
        }
    }
    h.write_u64(s.capacities.override_count() as u64);
    for ((ax, ay, bx, by), c) in s.capacities.overrides() {
        h.write_u32(ax);
        h.write_u32(ay);
        h.write_u32(bx);
        h.write_u32(by);
        h.write_u32(c);
    }
    h.write_u64(s.nets.len() as u64);
    for net in &s.nets {
        write_net(h, net);
    }
}

fn write_net(h: &mut CanonHasher, net: &NetSpec) {
    h.write_str(&net.name);
    h.write_u32(net.source.x);
    h.write_u32(net.source.y);
    h.write_u32(net.sink.x);
    h.write_u32(net.sink.y);
    match net.kind {
        NetKind::Combinational => h.write_u8(0),
        NetKind::Registered { period } => {
            h.write_u8(1);
            h.write_f64(period.ps());
        }
        NetKind::Gals { t_s, t_t } => {
            h.write_u8(2);
            h.write_f64(t_s.ps());
            h.write_f64(t_t.ps());
        }
    }
}

fn block_hash(b: &PlacedBlock) -> u64 {
    let mut h = CanonHasher::new();
    h.write_u8(kind_tag(b.kind));
    h.write_u32(b.rect.lo().x);
    h.write_u32(b.rect.lo().y);
    h.write_u32(b.rect.hi().x);
    h.write_u32(b.rect.hi().y);
    h.finish()
}

fn kind_tag(k: BlockKind) -> u8 {
    match k {
        BlockKind::Hard => 0,
        BlockKind::Obstacle => 1,
        BlockKind::WiringOnly => 2,
        BlockKind::RegisterKeepout => 3,
    }
}

/// A block as a sortable tuple, for multiset comparison.
fn block_tuple(b: &PlacedBlock) -> (u8, u32, u32, u32, u32) {
    (
        kind_tag(b.kind),
        b.rect.lo().x,
        b.rect.lo().y,
        b.rect.hi().x,
        b.rect.hi().y,
    )
}

fn sorted_blocks(s: &Scenario) -> Vec<(u8, u32, u32, u32, u32)> {
    let mut v: Vec<_> = s.floorplan.blocks().iter().map(block_tuple).collect();
    v.sort_unstable();
    v
}

/// Structural equality of everything the base key hashes — the
/// collision guard behind every base-key match.
pub fn same_base(a: &Scenario, b: &Scenario) -> bool {
    a.grid == b.grid
        && a.reserve == b.reserve
        && a.tech == b.tech
        && a.floorplan.die_width() == b.floorplan.die_width()
        && a.floorplan.die_height() == b.floorplan.die_height()
        && a.capacities == b.capacities
        && a.nets == b.nets
}

/// Structural equality of the blockage multisets (declaration order
/// ignored).
pub fn same_blocks(a: &Scenario, b: &Scenario) -> bool {
    sorted_blocks(a) == sorted_blocks(b)
}

/// The grid points dirtied by moving from blockage set `a` to `b`: the
/// union of the rasterized footprints of every block present in exactly
/// one of the two multisets. Feeding these to
/// [`clockroute_plan::Planner::plan_warm`] is sound because a block's
/// grid effect (node/edge/register blocking) is confined to the grid
/// points of its rect — incident-edge reads are covered by the
/// footprint check's one-step dilation.
pub fn block_delta(a: &Scenario, b: &Scenario) -> Vec<Point> {
    let sa = sorted_blocks(a);
    let sb = sorted_blocks(b);
    let mut delta_rects: Vec<(u8, u32, u32, u32, u32)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < sa.len() || j < sb.len() {
        match (sa.get(i), sb.get(j)) {
            (Some(x), Some(y)) if x == y => {
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                delta_rects.push(*x);
                i += 1;
            }
            (Some(_), Some(y)) => {
                delta_rects.push(*y);
                j += 1;
            }
            (Some(x), None) => {
                delta_rects.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                delta_rects.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    let mut points = BTreeSet::new();
    for (_, x0, y0, x1, y1) in delta_rects {
        for y in y0..=y1 {
            for x in x0..=x1 {
                points.insert((x, y));
            }
        }
    }
    points.into_iter().map(|(x, y)| Point::new(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_cli::scenario::parse;

    const BASE: &str = "die 10mm 10mm\ngrid 20 20\nblock hard 2 2 4 4\nblock obstacle 10 10 12 12\nnet comb name=a src=0,0 dst=19,19\nnet reg name=b src=0,5 dst=19,5 period=400\n";

    #[test]
    fn whitespace_comments_and_crlf_do_not_change_the_key() {
        let noisy = "# a comment\r\n\r\ndie 10mm 10mm   \r\ngrid 20 20\t\r\nblock hard 2 2 4 4 # cpu\r\nblock obstacle 10 10 12 12\r\nnet comb name=a src=0,0 dst=19,19\r\nnet reg name=b src=0,5 dst=19,5 period=400\r\n";
        let a = parse(BASE).unwrap();
        let b = parse(noisy).unwrap();
        assert_eq!(scenario_key(&a), scenario_key(&b));
        assert_eq!(base_key(&a), base_key(&b));
        assert!(same_base(&a, &b) && same_blocks(&a, &b));
    }

    #[test]
    fn block_order_does_not_change_the_key() {
        let swapped = BASE.replace(
            "block hard 2 2 4 4\nblock obstacle 10 10 12 12",
            "block obstacle 10 10 12 12\nblock hard 2 2 4 4",
        );
        let a = parse(BASE).unwrap();
        let b = parse(&swapped).unwrap();
        assert_eq!(scenario_key(&a), scenario_key(&b));
        assert!(same_blocks(&a, &b));
    }

    #[test]
    fn net_order_changes_the_key() {
        let swapped = BASE.replace(
            "net comb name=a src=0,0 dst=19,19\nnet reg name=b src=0,5 dst=19,5 period=400",
            "net reg name=b src=0,5 dst=19,5 period=400\nnet comb name=a src=0,0 dst=19,19",
        );
        let a = parse(BASE).unwrap();
        let b = parse(&swapped).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&b), "net order is semantic");
        assert_ne!(base_key(&a), base_key(&b));
        assert!(!same_base(&a, &b));
    }

    #[test]
    fn block_changes_move_only_the_block_component() {
        let moved = BASE.replace("block hard 2 2 4 4", "block hard 3 2 5 4");
        let a = parse(BASE).unwrap();
        let b = parse(&moved).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&b));
        assert_eq!(base_key(&a), base_key(&b), "base ignores blocks");
        assert!(same_base(&a, &b) && !same_blocks(&a, &b));
    }

    #[test]
    fn every_scalar_field_reaches_the_key() {
        let a = parse(BASE).unwrap();
        for (from, to) in [
            ("die 10mm 10mm", "die 10mm 11mm"),
            ("grid 20 20", "grid 20 21"),
            ("period=400", "period=401"),
            ("src=0,0", "src=1,0"),
            ("name=a", "name=aa"),
        ] {
            let b = parse(&BASE.replace(from, to)).unwrap();
            assert_ne!(scenario_key(&a), scenario_key(&b), "{from} -> {to}");
        }
        let b = parse(&format!("{BASE}reserve off\n")).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&b), "reserve mode");
        let b = parse(&BASE.replace("grid 20 20", "grid 20 20\ntech r=2.0 c=0.02")).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&b), "technology");
    }

    #[test]
    fn capacities_reach_the_key() {
        let a = parse(BASE).unwrap();
        let capped = parse(&format!("{BASE}capacity default 2\n")).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&capped), "default capacity");
        assert_ne!(base_key(&a), base_key(&capped));
        assert!(!same_base(&a, &capped));
        // A different default, an override, and a tighter override all
        // move the key again.
        let tighter = parse(&format!("{BASE}capacity default 1\n")).unwrap();
        assert_ne!(base_key(&capped), base_key(&tighter));
        let edged = parse(&format!(
            "{BASE}capacity default 2\ncapacity edge 0,0 1,0 1\n"
        ))
        .unwrap();
        assert_ne!(base_key(&capped), base_key(&edged));
        assert!(!same_base(&capped, &edged));
        // Equal capacity sections agree regardless of how they were
        // written (rect vs per-edge declarations).
        let rect = parse(&format!("{BASE}capacity rect 0 3 3 3 1\n")).unwrap();
        let edges = parse(&format!(
            "{BASE}capacity edge 0,3 1,3 1\ncapacity edge 1,3 2,3 1\ncapacity edge 2,3 3,3 1\n"
        ))
        .unwrap();
        assert_eq!(base_key(&rect), base_key(&edges));
        assert!(same_base(&rect, &edges));
    }

    #[test]
    fn block_kind_reaches_the_key() {
        let a = parse(BASE).unwrap();
        let b = parse(&BASE.replace("block hard 2 2 4 4", "block wiring 2 2 4 4")).unwrap();
        assert_ne!(scenario_key(&a), scenario_key(&b));
        assert!(!same_blocks(&a, &b));
    }

    #[test]
    fn delta_is_the_symmetric_difference_footprint() {
        let a = parse(BASE).unwrap();
        let b = parse(&BASE.replace("block hard 2 2 4 4", "block hard 2 2 4 5")).unwrap();
        let delta = block_delta(&a, &b);
        // Old rect 2..=4 × 2..=4 (9 points) ∪ new rect 2..=4 × 2..=5
        // (12 points) — union is the new rect's 12 points.
        assert_eq!(delta.len(), 12);
        assert!(delta.contains(&Point::new(2, 2)));
        assert!(delta.contains(&Point::new(4, 5)));
        assert!(!delta.contains(&Point::new(10, 10)), "shared block is clean");
        // Identical scenarios have an empty delta.
        assert!(block_delta(&a, &a).is_empty());
    }

    #[test]
    fn delta_respects_multiplicity() {
        let doubled = BASE.replace(
            "block hard 2 2 4 4",
            "block hard 2 2 4 4\nblock hard 2 2 4 4",
        );
        let a = parse(BASE).unwrap();
        let b = parse(&doubled).unwrap();
        assert!(!same_blocks(&a, &b), "multiplicity differs");
        let delta = block_delta(&a, &b);
        assert_eq!(delta.len(), 9, "the extra copy's footprint is dirty");
    }
}
