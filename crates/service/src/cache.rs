//! Bounded LRU cache of solved scenarios, keyed by canonical hash.
//!
//! Each entry keeps the parsed [`Scenario`] alongside its solve so
//! lookups can be verified *structurally* — a canonical-hash collision
//! degrades to a miss, it never serves a wrong answer. Entries are
//! also indexed by their blockage-independent base key, which is what
//! makes near-miss warm-starting possible: a request whose base
//! matches a cached entry but whose blocks differ re-routes only the
//! nets whose footprints intersect the blockage delta (see
//! [`crate::keys::block_delta`]).
//!
//! The map is a `BTreeMap`, not a hash map, so iteration order — and
//! therefore which base-key candidate wins when several match — is
//! deterministic across runs and platforms.

use crate::keys::{block_delta, same_base, same_blocks};
use clockroute_cli::scenario::Scenario;
use clockroute_plan::TracedPlan;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything a `route` response needs, as produced by a cold solve.
/// A cache hit replays these fields verbatim, which is what makes hit
/// responses byte-identical to cold ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Solved {
    /// The plan plus per-net footprints (for warm-starting later).
    pub traced: TracedPlan,
    /// Rendered per-net report — byte-identical to `crplan --quiet`.
    pub report: String,
    /// Nets routed (possibly degraded).
    pub routed: usize,
    /// Nets that failed outright.
    pub failed: usize,
    /// Nets routed by a fallback ladder rung.
    pub degraded: usize,
}

/// One cached scenario.
#[derive(Debug, Clone)]
struct Entry {
    base: u64,
    scenario: Scenario,
    solved: Solved,
    last_used: u64,
}

/// A warm-start candidate pulled from the cache.
#[derive(Debug, Clone)]
pub struct WarmPrior {
    /// The cached solve to reuse nets from.
    pub traced: TracedPlan,
    /// Grid points invalidated by the blockage delta.
    pub dirty: Vec<clockroute_geom::Point>,
}

/// Bounded LRU over canonical scenario keys.
///
/// Recency ticks come from a shared atomic clock so several caches —
/// the per-shard LRUs of [`crate::shard::ShardedCache`] — order their
/// entries on one global timeline: exports merged across shards sort
/// identically no matter how the keyspace was partitioned.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    clock: Arc<AtomicU64>,
    entries: BTreeMap<u64, Entry>,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache holding at most `cap` solves (`cap == 0` disables
    /// caching entirely), with its own private recency clock.
    pub fn new(cap: usize) -> ResultCache {
        ResultCache::with_clock(cap, Arc::new(AtomicU64::new(0)))
    }

    /// An empty cache drawing recency ticks from `clock`, shared with
    /// sibling shards.
    pub fn with_clock(cap: usize, clock: Arc<AtomicU64>) -> ResultCache {
        ResultCache {
            cap,
            clock,
            entries: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Number of cached solves.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries evicted to honour the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn next_tick(&mut self) -> u64 {
        // Relaxed is enough: ticks only need to be unique and roughly
        // monotonic per entry touch; entry state itself is guarded by
        // the shard lock the caller holds.
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Exact lookup: the stored solve for `scenario` if an entry with
    /// this `key` exists *and* structurally matches. Bumps recency.
    pub fn lookup(&mut self, key: u64, scenario: &Scenario) -> Option<Solved> {
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&key)?;
        if !(same_base(&entry.scenario, scenario) && same_blocks(&entry.scenario, scenario)) {
            // A 64-bit collision: treat as a miss; the insert after the
            // cold solve will replace this slot.
            return None;
        }
        entry.last_used = tick;
        Some(entry.solved.clone())
    }

    /// Near-miss lookup: the most recently used entry sharing
    /// `scenario`'s base (same die, grid, tech, nets, reservation) with
    /// a blockage delta of at most `max_dirty` grid points. Bumps the
    /// chosen entry's recency.
    pub fn find_warm(
        &mut self,
        base: u64,
        scenario: &Scenario,
        max_dirty: usize,
    ) -> Option<WarmPrior> {
        let (key, _) = self.best_warm_candidate(base, scenario)?;
        self.warm_prior_for(key, scenario, max_dirty)
    }

    /// Phase one of a (possibly cross-shard) warm search: the most
    /// recently used entry sharing `scenario`'s base, as
    /// `(key, last_used)`. Read-only — recency is bumped only when the
    /// winning candidate is actually taken via
    /// [`warm_prior_for`](Self::warm_prior_for).
    pub fn best_warm_candidate(&self, base: u64, scenario: &Scenario) -> Option<(u64, u64)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.base == base && same_base(&e.scenario, scenario))
            .max_by_key(|(_, e)| e.last_used)
            .map(|(k, e)| (*k, e.last_used))
    }

    /// Phase two: the warm prior from entry `key`, if its blockage
    /// delta stays within `max_dirty` grid points. Bumps recency on
    /// success.
    pub fn warm_prior_for(
        &mut self,
        key: u64,
        scenario: &Scenario,
        max_dirty: usize,
    ) -> Option<WarmPrior> {
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&key)?;
        let dirty = block_delta(&entry.scenario, scenario);
        if dirty.len() > max_dirty {
            return None;
        }
        entry.last_used = tick;
        Some(WarmPrior {
            traced: entry.solved.traced.clone(),
            dirty,
        })
    }

    /// Every entry in LRU order (least recently used first), as
    /// `(key, base, scenario, solved)` — the snapshot writer's view.
    /// Replaying the list through [`insert`](Self::insert) in order
    /// reproduces both the contents and the eviction order.
    pub fn export(&self) -> Vec<(u64, u64, &Scenario, &Solved)> {
        self.export_ticked()
            .into_iter()
            .map(|(_, k, b, s, v)| (k, b, s, v))
            .collect()
    }

    /// Like [`export`](Self::export) but with each entry's recency tick
    /// leading the tuple, so rows from several shards can be merged
    /// into one global LRU order (ticks come from the shared clock and
    /// are unique across shards).
    pub fn export_ticked(&self) -> Vec<(u64, u64, u64, &Scenario, &Solved)> {
        let mut rows: Vec<(&u64, &Entry)> = self.entries.iter().collect();
        rows.sort_by_key(|(_, e)| e.last_used);
        rows.into_iter()
            .map(|(k, e)| (e.last_used, *k, e.base, &e.scenario, &e.solved))
            .collect()
    }

    /// Stores a solve, evicting the least recently used entry if the
    /// cache is full. A no-op when the capacity is zero.
    pub fn insert(&mut self, key: u64, base: u64, scenario: Scenario, solved: Solved) {
        if self.cap == 0 {
            return;
        }
        let tick = self.next_tick();
        self.entries.insert(
            key,
            Entry {
                base,
                scenario,
                solved,
                last_used: tick,
            },
        );
        while self.entries.len() > self.cap {
            // Oldest tick loses; ties are impossible (ticks are unique).
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{base_key, scenario_key};
    use clockroute_cli::scenario::parse;

    fn scenario(block_x: u32) -> Scenario {
        parse(&format!(
            "die 10mm 10mm\ngrid 20 20\nblock hard {block_x} 2 {} 4\nnet comb name=a src=0,0 dst=19,19\n",
            block_x + 2
        ))
        .unwrap()
    }

    fn solved(tag: &str) -> Solved {
        Solved {
            report: tag.to_owned(),
            ..Solved::default()
        }
    }

    fn report_of(cache: &mut ResultCache, s: &Scenario) -> Option<String> {
        cache.lookup(scenario_key(s), s).map(|v| v.report)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        let (s1, s2, s3) = (scenario(2), scenario(5), scenario(8));
        for (s, tag) in [(&s1, "one"), (&s2, "two")] {
            cache.insert(scenario_key(s), base_key(s), s.clone(), solved(tag));
        }
        // Touch s1 so s2 becomes the eviction victim.
        assert_eq!(report_of(&mut cache, &s1).as_deref(), Some("one"));
        cache.insert(scenario_key(&s3), base_key(&s3), s3.clone(), solved("three"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(report_of(&mut cache, &s2).is_none(), "s2 evicted");
        assert!(report_of(&mut cache, &s1).is_some());
        assert!(report_of(&mut cache, &s3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        let s = scenario(2);
        cache.insert(scenario_key(&s), base_key(&s), s.clone(), solved("x"));
        assert!(cache.is_empty());
        assert!(report_of(&mut cache, &s).is_none());
    }

    #[test]
    fn warm_candidate_requires_matching_base() {
        let mut cache = ResultCache::new(4);
        let s1 = scenario(2);
        cache.insert(scenario_key(&s1), base_key(&s1), s1.clone(), solved("one"));
        // Same base, moved block: warm candidate with a bounded delta.
        let s2 = scenario(5);
        let warm = cache.find_warm(base_key(&s2), &s2, 1024).unwrap();
        assert!(!warm.dirty.is_empty());
        assert!(cache.find_warm(base_key(&s2), &s2, 1).is_none(), "delta cap");
        // Different nets: no candidate despite sharing the die.
        let s3 = parse(
            "die 10mm 10mm\ngrid 20 20\nblock hard 2 2 4 4\nnet comb name=zz src=0,0 dst=19,19\n",
        )
        .unwrap();
        assert!(cache.find_warm(base_key(&s3), &s3, 1024).is_none());
    }

    #[test]
    fn export_is_in_lru_order() {
        let mut cache = ResultCache::new(4);
        let (s1, s2) = (scenario(2), scenario(5));
        cache.insert(scenario_key(&s1), base_key(&s1), s1.clone(), solved("one"));
        cache.insert(scenario_key(&s2), base_key(&s2), s2.clone(), solved("two"));
        // Touch s1: it becomes most recent, so it exports last.
        assert!(report_of(&mut cache, &s1).is_some());
        let order: Vec<String> = cache
            .export()
            .into_iter()
            .map(|(_, _, _, v)| v.report.clone())
            .collect();
        assert_eq!(order, ["two", "one"]);
    }

    #[test]
    fn capacities_separate_cache_entries() {
        // Two scenarios equal in every respect except the capacity
        // section must hash to distinct keys and keep distinct cached
        // answers — a capacitated solve must never serve an
        // unconstrained request or vice versa.
        const BASE: &str = "die 10mm 10mm\ngrid 20 20\nnet comb name=a src=0,0 dst=19,19\n";
        let open = parse(BASE).unwrap();
        let capped = parse(&format!("{BASE}capacity default 1\n")).unwrap();
        assert_ne!(scenario_key(&open), scenario_key(&capped));

        let mut cache = ResultCache::new(4);
        cache.insert(scenario_key(&open), base_key(&open), open.clone(), solved("open"));
        cache.insert(
            scenario_key(&capped),
            base_key(&capped),
            capped.clone(),
            solved("capped"),
        );
        assert_eq!(report_of(&mut cache, &open).as_deref(), Some("open"));
        assert_eq!(report_of(&mut cache, &capped).as_deref(), Some("capped"));
        // Even a forged key cross-lookup is rejected structurally:
        // same_base compares the capacity sections.
        assert!(cache.lookup(scenario_key(&open), &capped).is_none());
        // And warm-start never crosses a capacity change either — a
        // capacitated request falls back to a cold solve.
        let mut fresh = ResultCache::new(4);
        fresh.insert(scenario_key(&open), base_key(&open), open, solved("open"));
        assert!(fresh.find_warm(base_key(&capped), &capped, 1024).is_none());
    }

    #[test]
    fn collision_degrades_to_miss() {
        let mut cache = ResultCache::new(4);
        let s1 = scenario(2);
        let s2 = scenario(5);
        // Deliberately file s1's solve under s2's key.
        cache.insert(scenario_key(&s2), base_key(&s1), s1, solved("wrong"));
        assert!(
            report_of(&mut cache, &s2).is_none(),
            "structural verification rejects the colliding entry"
        );
    }
}
