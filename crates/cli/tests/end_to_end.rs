//! End-to-end CLI-layer tests: scenario text → parser → planner →
//! validated results, plus parser robustness fuzzing.

use clockroute_cli::scenario;
use clockroute_core::drc;
use clockroute_elmore::GateLibrary;
use clockroute_grid::GridGraph;
use clockroute_plan::{NetKind, Planner};
use proptest::prelude::*;

const SCENARIO: &str = "\
die 12mm 12mm
grid 24 24
tech paper

block hard 8 8 14 14
block regkeepout 2 16 8 22

net reg  name=east src=0,11 dst=23,11 period=400
net gals name=south src=11,0 dst=11,23 ts=300 tt=350
net comb name=diag src=0,0 dst=23,23
";

#[test]
fn scenario_plans_and_passes_drc() {
    let s = scenario::parse(SCENARIO).expect("valid scenario");
    let (gw, gh) = s.grid;
    let graph = GridGraph::from_floorplan(&s.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    let plan = Planner::new(graph.clone(), s.tech, lib.clone()).plan(&s.nets);
    assert_eq!(plan.routed().count(), 3, "{:?}", plan.failed().collect::<Vec<_>>());

    // Every routed net passes the full design-rule check for its kind.
    // (Check against the *pre-reservation* grid: reservation mutates the
    // planner's private copy to exclude other nets, not this one.)
    for (net, result) in s.nets.iter().zip(plan.results()) {
        let path = result.path.as_ref().expect("routed");
        let rule = match net.kind {
            NetKind::Combinational => drc::ClockRule::Unconstrained,
            NetKind::Registered { period } => drc::ClockRule::SingleDomain(period),
            NetKind::Gals { t_s, t_t } => drc::ClockRule::TwoDomain { t_s, t_t },
        };
        let violations = drc::check(path, &graph, &s.tech, &lib, rule);
        assert!(
            violations.is_empty(),
            "net {}: {:?}",
            net.name,
            violations
        );
    }
}

#[test]
fn reservation_respected_between_scenario_nets() {
    let s = scenario::parse(SCENARIO).expect("valid scenario");
    let (gw, gh) = s.grid;
    let graph = GridGraph::from_floorplan(&s.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    let plan = Planner::new(graph, s.tech, lib).plan(&s.nets);
    // No two routed nets share an (undirected) edge.
    let mut used = std::collections::HashSet::new();
    for result in plan.routed() {
        for w in result.path.as_ref().expect("routed").points().windows(2) {
            let key = if (w[0].x, w[0].y) <= (w[1].x, w[1].y) {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            assert!(used.insert(key), "edge {key:?} used twice");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The parser must never panic, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(text in "\\PC*") {
        let _ = scenario::parse(&text);
    }

    /// Structured-ish garbage: random directives with random arguments.
    #[test]
    fn parser_never_panics_on_directive_soup(
        lines in proptest::collection::vec(
            (
                prop_oneof![
                    Just("die"), Just("grid"), Just("tech"), Just("block"),
                    Just("net"), Just("reserve"), Just("bogus")
                ],
                proptest::collection::vec("[a-z0-9=,.m-]{0,8}", 0..6),
            ),
            0..12,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(d, args)| format!("{d} {}\n", args.join(" ")))
            .collect();
        let _ = scenario::parse(&text);
    }
}
