#!/usr/bin/env sh
# Full local gate: release build, the whole test suite in both profiles
# (debug catches debug_assert guards; release catches what CI ships), and
# clippy with warnings promoted to errors. Run from the repo root.
set -eu

cargo build --release
# crlint first: the invariant gate (NaN-safe orderings, cancellable
# search loops, deterministic reports — see DESIGN.md §11) is cheaper
# than the test suite and its findings explain later failures.
cargo run --release -p clockroute-lint -- --workspace
cargo test --workspace -q
cargo test --workspace --release -q
# Lock-discipline gate: the service concurrency and chaos suites in the
# debug profile, where every OrderedMutex asserts rank monotonicity at
# runtime (lockcheck::ENABLED; see DESIGN.md §16). The workspace run
# above already covers these, but name them so a rank violation fails
# here with an obvious label rather than deep in a generic test wall.
cargo test -p clockroute-service -q --test service_concurrent --test service_chaos
# ThreadSanitizer pass when a nightly toolchain is available; a no-op
# with a notice otherwise (offline containers ship stable only).
sh scripts/tsan.sh
# Differential fuzz suite against the exhaustive oracles (fixed seeds,
# so a failure here reproduces exactly; see tests/differential.rs).
cargo test --release -q --test differential
# Flow-mode differential/metamorphic suite: uncongested scenarios must
# delegate byte-identically to the sequential planner, and the
# capacity-relaxation and net-permutation invariants must hold (see
# crates/flow/tests/flow_differential.rs and DESIGN.md §17).
cargo test --release -q -p clockroute-flow --test flow_differential
# Substrate performance gate: re-run the arena engine on small grids and
# fail if pops regressed >10% against the last BENCH_core.json rows
# (bootstrap runs with no baseline pass; see DESIGN.md §15).
cargo run --release -p clockroute-bench --bin corebench -- --check
# Flow quality gate: on every shipped congested scenario the flow
# planner must route all nets with strictly less overflow than the
# order-driven sequential plan (see DESIGN.md §17).
cargo run --release -p clockroute-bench --bin flowbench -- --check
# Service smoke: one crserve session through every answer path, JSONL
# validation, and the exit-code contract (see DESIGN.md §12).
sh scripts/serve_smoke.sh
# Chaos smoke: SIGKILL mid-burst + restart on the same --state dir,
# SIGTERM graceful drain, snapshot corruption, and a concurrent-client
# burst SIGKILLed mid-flight (see DESIGN.md §13–14).
sh scripts/chaos_smoke.sh
cargo clippy --all-targets -- -D warnings
