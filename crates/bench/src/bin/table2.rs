//! Regenerates **Table II** (E2): RBP performance as a function of clock
//! period and grid size (0.5 / 0.25 / 0.125 mm separations), plus the
//! §V-B observation verdicts (E7).
//!
//! Usage: `cargo run --release -p clockroute-bench --bin table2 [max_grid]`
//! (default 200; pass 100 to skip the largest grid).

use clockroute_bench::{format_regpath_table, paper_reference, table1, RegPathRow, PAPER_PERIODS};

fn main() {
    let max_grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let grids: Vec<u32> = [50u32, 100, 200]
        .into_iter()
        .filter(|&g| g <= max_grid)
        .collect();
    let mut all: Vec<(u32, Vec<RegPathRow>)> = Vec::new();
    for &grid in &grids {
        let sep_mm = 25.0 / f64::from(grid);
        println!("\n## Grid separation {sep_mm} mm: {grid}×{grid} grid\n");
        let rows = table1(grid, &PAPER_PERIODS);
        println!("{}", format_regpath_table(&rows, paper_reference(grid)));
        all.push((grid, rows));
    }

    println!("\n## §V-B observation verdicts (E7)");
    // Obs. 1/2: a finer grid achieves latency ≤ the coarser grid's at
    // every period (strictly better somewhere).
    let mut finer_never_worse = true;
    let mut finer_sometimes_better = false;
    for w in all.windows(2) {
        let (_, coarse) = &w[0];
        let (_, fine) = &w[1];
        for (c, f) in coarse.iter().zip(fine.iter()) {
            match (c.latency, f.latency) {
                (Some(cl), Some(fl)) => {
                    if fl > cl + 1e-6 {
                        finer_never_worse = false;
                    }
                    if fl < cl - 1e-6 {
                        finer_sometimes_better = true;
                    }
                }
                (Some(_), None) => finer_never_worse = false,
                (None, Some(_)) => finer_sometimes_better = true,
                (None, None) => {}
            }
        }
    }
    println!(
        "- obs.1/2 finer grid never worse, sometimes better ....... {}",
        verdict(finer_never_worse && finer_sometimes_better)
    );
    // Obs. 3: coarse grids infeasible at very small periods while the
    // finest grid still routes.
    let coarse_infeasible = all.first().is_some_and(|(_, rows)| {
        rows.iter()
            .any(|r| r.period.is_some_and(|p| p < 60.0) && r.latency.is_none())
    });
    let fine_feasible = all.last().is_some_and(|(_, rows)| {
        rows.iter()
            .any(|r| r.period.is_some_and(|p| p < 60.0) && r.latency.is_some())
    });
    println!(
        "- obs.3 coarse grid fails at small periods, fine succeeds  {}",
        verdict(coarse_infeasible && (all.len() < 2 || fine_feasible))
    );
    // Obs. 4: at periods above ~84 ps the latency stays within one period
    // of the optimal fast-path delay (finest grid).
    if let Some((_, rows)) = all.last() {
        let fast = rows.iter().find(|r| r.period.is_none()).and_then(|r| r.latency);
        let ok = match fast {
            Some(d0) => rows
                .iter()
                .filter(|r| r.period.is_some_and(|p| p > 84.0))
                .filter_map(|r| r.latency.map(|l| (r.period.unwrap_or(0.0), l)))
                .all(|(p, l)| l <= d0 + p + 1e-6),
            None => false,
        };
        println!(
            "- obs.4 latency within one period of optimal (T > 84) .... {}",
            verdict(ok)
        );
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "REPRODUCED"
    } else {
        "NOT reproduced"
    }
}
