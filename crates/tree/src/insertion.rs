//! Bottom-up register/repeater insertion on a routing tree.
//!
//! Van Ginneken's classic buffer-insertion DP, extended with register
//! insertion under a clock-period constraint (after Cocchini). States
//! are `(c, d)` pairs — downstream capacitance and worst delay to the
//! nearest downstream synchronizer — kept as Pareto fronts **per
//! register-count bucket** (the tree analogue of RBP's rule that only
//! equal-register candidates may be compared). The objective is the
//! minimum total number of inserted registers, with root delay as the
//! tie-break.

use crate::topology::RoutingTree;
use clockroute_core::RouteError;
use clockroute_elmore::{GateId, GateKind, GateLibrary, Technology};
use clockroute_geom::units::Time;
use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use serde::{Deserialize, Serialize};

#[derive(Clone, Copy)]
struct State {
    cap: f64,
    delay: f64,
    trace: u32,
}

enum Trace {
    Nil,
    Insert { node: usize, gate: GateId, rest: u32 },
    Join { a: u32, b: u32 },
}

const NIL: u32 = 0;

struct TraceArena {
    nodes: Vec<Trace>,
}

impl TraceArena {
    fn new() -> TraceArena {
        TraceArena {
            nodes: vec![Trace::Nil],
        }
    }

    fn insert(&mut self, node: usize, gate: GateId, rest: u32) -> u32 {
        let id = u32::try_from(self.nodes.len()).expect("trace arena overflow");
        self.nodes.push(Trace::Insert { node, gate, rest });
        id
    }

    fn join(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let id = u32::try_from(self.nodes.len()).expect("trace arena overflow");
        self.nodes.push(Trace::Join { a, b });
        id
    }

    fn collect(&self, root: u32) -> Vec<(usize, GateId)> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match self.nodes[id as usize] {
                Trace::Nil => {}
                Trace::Insert { node, gate, rest } => {
                    out.push((node, gate));
                    stack.push(rest);
                }
                Trace::Join { a, b } => {
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        out
    }
}

fn pareto_push(bucket: &mut Vec<State>, s: State) {
    if bucket
        .iter()
        .any(|e| e.cap <= s.cap && e.delay <= s.delay)
    {
        return;
    }
    bucket.retain(|e| !(s.cap <= e.cap && s.delay <= e.delay));
    bucket.push(s);
}

/// Per-node DP table: Pareto fronts indexed by register count.
type Buckets = Vec<Vec<State>>;

/// Specification for register/repeater insertion on a fixed tree.
///
/// # Example
///
/// ```
/// use clockroute_tree::{RoutingTree, TreeInsertionSpec};
/// use clockroute_grid::GridGraph;
/// use clockroute_elmore::{Technology, GateLibrary};
/// use clockroute_geom::{Point, units::{Length, Time}};
///
/// let graph = GridGraph::open(30, 30, Length::from_um(500.0));
/// let tech = Technology::paper_070nm();
/// let lib = GateLibrary::paper_library();
/// let tree = RoutingTree::rectilinear(
///     &graph,
///     Point::new(0, 0),
///     &[Point::new(29, 5), Point::new(20, 29)],
/// )?;
/// let sol = TreeInsertionSpec::new(&tree, &graph, &tech, &lib)
///     .period(Time::from_ps(400.0))
///     .solve()
///     .expect("feasible");
/// assert!(sol.register_count() > 0);
/// assert!(sol.verify_on(&tree, &graph, &tech, &lib));
/// # Ok::<(), clockroute_tree::BuildTreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TreeInsertionSpec<'a> {
    tree: &'a RoutingTree,
    graph: &'a GridGraph,
    tech: &'a Technology,
    lib: &'a GateLibrary,
    period: Option<Time>,
    source_gate: GateId,
    sink_gate: GateId,
}

impl<'a> TreeInsertionSpec<'a> {
    /// Creates a spec with register terminals (as in RBP).
    pub fn new(
        tree: &'a RoutingTree,
        graph: &'a GridGraph,
        tech: &'a Technology,
        lib: &'a GateLibrary,
    ) -> Self {
        TreeInsertionSpec {
            tree,
            graph,
            tech,
            lib,
            period: None,
            source_gate: lib.register(),
            sink_gate: lib.register(),
        }
    }

    /// Sets the clock period.
    pub fn period(mut self, t: Time) -> Self {
        self.period = Some(t);
        self
    }

    /// Runs the DP.
    ///
    /// # Errors
    ///
    /// [`RouteError::InvalidPeriod`] for a missing/non-positive period;
    /// [`RouteError::NoFeasibleRoute`] when no insertion meets it.
    pub fn solve(&self) -> Result<TreeSolution, RouteError> {
        let t_phi = self.period.ok_or(RouteError::InvalidPeriod)?;
        if t_phi.ps() <= 0.0 || !t_phi.is_finite() {
            return Err(RouteError::InvalidPeriod);
        }
        let t = t_phi.ps();
        let tree = self.tree;
        let lib = self.lib;
        let reg = lib.gate(lib.register());
        let (reg_res, reg_cap, reg_k, reg_setup) = (
            reg.driver_res().ohms(),
            reg.input_cap().ff(),
            reg.intrinsic().ps(),
            reg.setup().ps(),
        );
        let gt = lib.gate(self.sink_gate);
        let gs = lib.gate(self.source_gate);
        let sink_set: std::collections::HashSet<usize> = tree.sinks().iter().copied().collect();

        let mut arena = TraceArena::new();
        let mut tables: Vec<Option<Buckets>> = vec![None; tree.len()];

        for i in tree.bottom_up() {
            // 1. Merge children (each child's table is taken at *this*
            //    node: child states + the connecting wire).
            let mut merged: Buckets = vec![Vec::new()];
            let mut first = true;
            for &c in tree.children(i) {
                let child_table = tables[c].take().expect("children processed first");
                // Wire from child to i.
                let len = self
                    .graph
                    .edge_length(self.graph.node(tree.point(c)), self.graph.node(tree.point(i)));
                let (rw, cw) = {
                    let r = (self.tech.unit_res() * len).ohms() * 1.0e-3;
                    let c = (self.tech.unit_cap() * len).ff();
                    (r, c)
                };
                let mut wired: Buckets = vec![Vec::new(); child_table.len()];
                for (r_count, bucket) in child_table.iter().enumerate() {
                    for st in bucket {
                        pareto_push(
                            &mut wired[r_count],
                            State {
                                cap: st.cap + cw,
                                delay: st.delay + rw * (st.cap + cw / 2.0),
                                trace: st.trace,
                            },
                        );
                    }
                }
                if first {
                    merged = wired;
                    first = false;
                } else {
                    let mut combined: Buckets =
                        vec![Vec::new(); merged.len() + wired.len() - 1];
                    for (ra, ba) in merged.iter().enumerate() {
                        for (rb, bb) in wired.iter().enumerate() {
                            for sa in ba {
                                for sb in bb {
                                    let trace = arena.join(sa.trace, sb.trace);
                                    pareto_push(
                                        &mut combined[ra + rb],
                                        State {
                                            cap: sa.cap + sb.cap,
                                            delay: sa.delay.max(sb.delay),
                                            trace,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    merged = combined;
                }
            }

            // 2. Sink tap at this node (leaf sinks start fresh; interior
            //    sinks add their capture load to the merged subtree).
            if sink_set.contains(&i) {
                if merged.len() == 1 && merged[0].is_empty() {
                    merged[0].push(State {
                        cap: gt.input_cap().ff(),
                        delay: gt.setup().ps(),
                        trace: NIL,
                    });
                } else {
                    for bucket in &mut merged {
                        for st in bucket.iter_mut() {
                            st.cap += gt.input_cap().ff();
                            st.delay = st.delay.max(gt.setup().ps());
                        }
                    }
                }
            }

            // 3. Gate insertion options at this node.
            let is_terminal = i == tree.root() || sink_set.contains(&i);
            if !is_terminal && self.graph.is_insertable(self.graph.node(tree.point(i))) {
                let mut extended: Buckets = vec![Vec::new(); merged.len() + 1];
                for (r_count, bucket) in merged.iter().enumerate() {
                    for st in bucket {
                        // (a) keep as-is
                        pareto_push(&mut extended[r_count], *st);
                        // (b) buffers
                        for b in lib.buffers() {
                            let g = lib.gate(b);
                            let delay =
                                st.delay + g.driver_res().ohms() * st.cap * 1.0e-3
                                    + g.intrinsic().ps();
                            if delay <= t - reg_k {
                                let trace = arena.insert(i, b, st.trace);
                                pareto_push(
                                    &mut extended[r_count],
                                    State {
                                        cap: g.input_cap().ff(),
                                        delay,
                                        trace,
                                    },
                                );
                            }
                        }
                        // (c) register (clock feasibility, next bucket)
                        if self
                            .graph
                            .is_register_allowed(self.graph.node(tree.point(i)))
                        {
                            let stage = st.delay + reg_res * st.cap * 1.0e-3 + reg_k;
                            if stage <= t {
                                let trace = arena.insert(i, lib.register(), st.trace);
                                pareto_push(
                                    &mut extended[r_count + 1],
                                    State {
                                        cap: reg_cap,
                                        delay: reg_setup,
                                        trace,
                                    },
                                );
                            }
                        }
                    }
                }
                // Drop a trailing empty bucket if no register fit.
                while extended.len() > 1 && extended.last().is_some_and(Vec::is_empty) {
                    extended.pop();
                }
                merged = extended;
            }
            tables[i] = Some(merged);
        }

        // 4. Root: add the source gate delay; pick the smallest feasible
        //    register count, tie-break on delay.
        let root_table = tables[tree.root()].take().expect("root processed");
        for (r_count, bucket) in root_table.iter().enumerate() {
            let mut best: Option<&State> = None;
            for st in bucket {
                let total =
                    st.delay + gs.driver_res().ohms() * st.cap * 1.0e-3 + gs.intrinsic().ps();
                if total <= t && best.is_none_or(|b| st.delay < b.delay) {
                    best = Some(st);
                }
            }
            if let Some(st) = best {
                let insertions: Vec<(Point, GateId)> = arena
                    .collect(st.trace)
                    .into_iter()
                    .map(|(n, g)| (tree.point(n), g))
                    .collect();
                return Ok(TreeSolution::assemble(
                    tree, lib, t_phi, r_count, insertions,
                ));
            }
        }
        Err(RouteError::NoFeasibleRoute)
    }
}

/// A register/repeater assignment on a routing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeSolution {
    period: Time,
    insertions: Vec<(Point, GateId)>,
    register_count: usize,
    buffer_count: usize,
    sink_latencies: Vec<(Point, Time)>,
}

impl TreeSolution {
    fn assemble(
        tree: &RoutingTree,
        lib: &GateLibrary,
        period: Time,
        register_count: usize,
        insertions: Vec<(Point, GateId)>,
    ) -> TreeSolution {
        let buffer_count = insertions
            .iter()
            .filter(|(_, g)| lib.gate(*g).kind() == GateKind::Buffer)
            .count();
        let reg_points: std::collections::HashSet<Point> = insertions
            .iter()
            .filter(|(_, g)| lib.gate(*g).kind().is_sequential())
            .map(|&(p, _)| p)
            .collect();
        let sink_latencies = tree
            .sinks()
            .iter()
            .map(|&s| {
                let regs_on_path = tree
                    .path_from_root(s)
                    .iter()
                    .filter(|&&n| reg_points.contains(&tree.point(n)))
                    .count();
                (tree.point(s), period * (regs_on_path as f64 + 1.0))
            })
            .collect();
        TreeSolution {
            period,
            insertions,
            register_count,
            buffer_count,
            sink_latencies,
        }
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// All inserted gates as `(point, gate)` pairs.
    pub fn insertions(&self) -> &[(Point, GateId)] {
        &self.insertions
    }

    /// Total registers inserted (the minimised objective).
    pub fn register_count(&self) -> usize {
        self.register_count
    }

    /// Total buffers inserted.
    pub fn buffer_count(&self) -> usize {
        self.buffer_count
    }

    /// Cycle latency per sink: `T·(registers on its root path + 1)`.
    pub fn sink_latencies(&self) -> &[(Point, Time)] {
        &self.sink_latencies
    }

    /// Worst sink latency.
    pub fn max_latency(&self) -> Time {
        self.sink_latencies
            .iter()
            .map(|&(_, l)| l)
            .fold(Time::ZERO, Time::max)
    }

    /// Independently re-verifies the assignment: recomputes every stage
    /// delay on the tree (including side-branch loading) with the gates
    /// fixed, and checks each against the period.
    ///
    /// This must be called with the same tree the solution was built for.
    pub fn verify_on(
        &self,
        tree: &RoutingTree,
        graph: &GridGraph,
        tech: &Technology,
        lib: &GateLibrary,
    ) -> bool {
        let t = self.period.ps();
        let gate_at: std::collections::HashMap<Point, GateId> =
            self.insertions.iter().copied().collect();
        let reg = lib.gate(lib.register());
        let sink_set: std::collections::HashSet<usize> = tree.sinks().iter().copied().collect();
        // Bottom-up single pass with fixed labels.
        let mut state: Vec<(f64, f64)> = vec![(0.0, 0.0); tree.len()];
        for i in tree.bottom_up() {
            let mut cap = 0.0f64;
            let mut delay = 0.0f64;
            for &c in tree.children(i) {
                let len = graph.edge_length(graph.node(tree.point(c)), graph.node(tree.point(i)));
                let rw = (tech.unit_res() * len).ohms() * 1.0e-3;
                let cw = (tech.unit_cap() * len).ff();
                let (cc, cd) = state[c];
                cap += cc + cw;
                delay = delay.max(cd + rw * (cc + cw / 2.0));
            }
            if sink_set.contains(&i) {
                let gt = lib.gate(lib.register());
                cap += gt.input_cap().ff();
                delay = delay.max(gt.setup().ps());
            }
            if let Some(&g) = gate_at.get(&tree.point(i)) {
                let gate = lib.gate(g);
                let gd = delay + gate.driver_res().ohms() * cap * 1.0e-3 + gate.intrinsic().ps();
                if gate.kind().is_sequential() {
                    if gd > t + 1e-9 {
                        return false;
                    }
                    cap = gate.input_cap().ff();
                    delay = gate.setup().ps();
                } else {
                    cap = gate.input_cap().ff();
                    delay = gd;
                }
            }
            state[i] = (cap, delay);
        }
        let (cap, delay) = state[tree.root()];
        let total = delay + reg.driver_res().ohms() * cap * 1.0e-3 + reg.intrinsic().ps();
        total <= t + 1e-9
    }

    /// Checks that every insertion sits on a legal (unblocked) node.
    /// For full timing verification use [`verify_on`](Self::verify_on).
    pub fn insertions_legal(&self, graph: &GridGraph) -> bool {
        self.insertions
            .iter()
            .all(|&(p, _)| graph.contains(p) && !graph.blockage().is_node_blocked(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_core::RbpSpec;
    use clockroute_geom::units::Length;

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn setup(n: u32, pitch: f64) -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(n, n, Length::from_um(pitch)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    #[test]
    fn degenerate_tree_matches_rbp() {
        // A single-sink tree on an open grid embeds as an L-path; compare
        // register counts with RBP on a 1-D grid of the same total length.
        let (g, tech, lib) = setup(30, 800.0);
        for period in [200.0, 350.0, 700.0] {
            let t = Time::from_ps(period);
            let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(24, 0)]).unwrap();
            let sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
                .period(t)
                .solve()
                .unwrap();
            let rbp = RbpSpec::new(&g, &tech, &lib)
                .source(p(0, 0))
                .sink(p(24, 0))
                .period(t)
                .solve()
                .unwrap();
            assert_eq!(
                sol.register_count(),
                rbp.register_count(),
                "period {period}"
            );
            assert!(sol.verify_on(&tree, &g, &tech, &lib));
            assert_eq!(sol.sink_latencies().len(), 1);
            assert_eq!(sol.sink_latencies()[0].1, rbp.latency());
        }
    }

    #[test]
    fn multi_sink_tree_verifies() {
        let (g, tech, lib) = setup(40, 500.0);
        let tree =
            RoutingTree::rectilinear(&g, p(0, 0), &[p(35, 5), p(30, 30), p(5, 35)]).unwrap();
        let sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
            .period(Time::from_ps(300.0))
            .solve()
            .unwrap();
        assert!(sol.register_count() >= 3, "regs {}", sol.register_count());
        assert!(sol.verify_on(&tree, &g, &tech, &lib));
        assert!(sol.insertions_legal(&g));
        // Each sink gets a latency; the max matches the deepest path.
        assert_eq!(sol.sink_latencies().len(), 3);
        assert!(sol.max_latency() >= sol.sink_latencies()[0].1);
    }

    #[test]
    fn shared_trunk_shares_registers() {
        // Two sinks behind a long shared trunk: trunk registers serve
        // both paths, so total registers < 2 × single-path registers.
        let (g, tech, lib) = setup(40, 800.0);
        let t = Time::from_ps(250.0);
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(35, 2), p(35, 6)]).unwrap();
        let sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
            .period(t)
            .solve()
            .unwrap();
        let single = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(35, 2))
            .period(t)
            .solve()
            .unwrap();
        assert!(
            sol.register_count() < 2 * single.register_count(),
            "tree {} vs 2×path {}",
            sol.register_count(),
            2 * single.register_count()
        );
        assert!(sol.verify_on(&tree, &g, &tech, &lib));
    }

    #[test]
    fn loose_period_needs_no_registers() {
        let (g, tech, lib) = setup(12, 300.0);
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(10, 3), p(4, 10)]).unwrap();
        let sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
            .period(Time::from_ps(2000.0))
            .solve()
            .unwrap();
        assert_eq!(sol.register_count(), 0);
        for &(_, lat) in sol.sink_latencies() {
            assert_eq!(lat, Time::from_ps(2000.0));
        }
    }

    #[test]
    fn infeasible_period_reported() {
        let (g, tech, lib) = setup(10, 1000.0);
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(9, 9)]).unwrap();
        assert_eq!(
            TreeInsertionSpec::new(&tree, &g, &tech, &lib)
                .period(Time::from_ps(40.0))
                .solve()
                .unwrap_err(),
            RouteError::NoFeasibleRoute
        );
        assert_eq!(
            TreeInsertionSpec::new(&tree, &g, &tech, &lib)
                .solve()
                .unwrap_err(),
            RouteError::InvalidPeriod
        );
    }

    #[test]
    fn buffers_used_when_they_save_registers() {
        let (g, tech, lib) = setup(40, 800.0);
        // A period large enough that buffered stages span farther than
        // unbuffered ones: the optimum should use buffers.
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(35, 35)]).unwrap();
        let sol = TreeInsertionSpec::new(&tree, &g, &tech, &lib)
            .period(Time::from_ps(500.0))
            .solve()
            .unwrap();
        assert!(sol.buffer_count() > 0);
        assert!(sol.verify_on(&tree, &g, &tech, &lib));
    }
}
