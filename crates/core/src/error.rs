//! Error types for the routing searches.

use crate::budget::SearchStage;
use clockroute_geom::Point;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors returned by the `solve` methods of the routing specs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteError {
    /// The source point lies outside the routing grid.
    SourceOffGrid(Point),
    /// The sink point lies outside the routing grid.
    SinkOffGrid(Point),
    /// Source and sink coincide.
    SameSourceSink(Point),
    /// No feasible route exists under the given constraints (either the
    /// terminals are disconnected or the clock period is too tight for
    /// the grid granularity — cf. Table II's empty cells).
    NoFeasibleRoute,
    /// The clock period is not strictly positive.
    InvalidPeriod,
    /// No source point was supplied to the spec builder.
    UnspecifiedSource,
    /// No sink point was supplied to the spec builder.
    UnspecifiedSink,
    /// The search exhausted its [`SearchBudget`](crate::SearchBudget)
    /// before finding a route or proving infeasibility.
    BudgetExceeded {
        /// Candidates popped before the budget tripped.
        candidates: u64,
        /// Wall-clock time spent in the search.
        elapsed: Duration,
        /// Which search was running.
        stage: SearchStage,
    },
    /// A search panicked and the caller isolated it (see the planner's
    /// per-net `catch_unwind`); the payload is the panic message.
    SearchPanicked(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SourceOffGrid(p) => write!(f, "source {p} lies outside the grid"),
            RouteError::SinkOffGrid(p) => write!(f, "sink {p} lies outside the grid"),
            RouteError::SameSourceSink(p) => {
                write!(f, "source and sink coincide at {p}")
            }
            RouteError::NoFeasibleRoute => {
                f.write_str("no feasible route exists under the given constraints")
            }
            RouteError::InvalidPeriod => f.write_str("clock period must be positive"),
            RouteError::UnspecifiedSource => f.write_str("no source point was specified"),
            RouteError::UnspecifiedSink => f.write_str("no sink point was specified"),
            RouteError::BudgetExceeded {
                candidates,
                elapsed,
                stage,
            } => write!(
                f,
                "{stage} search budget exceeded after {candidates} candidates ({elapsed:?})"
            ),
            RouteError::SearchPanicked(msg) => write!(f, "search panicked: {msg}"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            RouteError::SourceOffGrid(Point::new(9, 9)).to_string(),
            "source (9, 9) lies outside the grid"
        );
        assert_eq!(
            RouteError::NoFeasibleRoute.to_string(),
            "no feasible route exists under the given constraints"
        );
        assert_eq!(
            RouteError::InvalidPeriod.to_string(),
            "clock period must be positive"
        );
        assert_eq!(
            RouteError::SameSourceSink(Point::new(1, 2)).to_string(),
            "source and sink coincide at (1, 2)"
        );
        let budget = RouteError::BudgetExceeded {
            candidates: 42,
            elapsed: Duration::from_millis(7),
            stage: SearchStage::Rbp,
        };
        assert_eq!(
            budget.to_string(),
            "RBP search budget exceeded after 42 candidates (7ms)"
        );
        assert_eq!(
            RouteError::SearchPanicked("boom".into()).to_string(),
            "search panicked: boom"
        );
    }
}
