//! Search-effort statistics.
//!
//! The paper reports, for every experiment, the number of configurations
//! examined (candidates popped off `Q`) and the maximum queue size — both
//! machine-independent proxies for the `O(nNk² log Nk)` complexity claim.
//! [`SearchStats`] captures the same counters (plus a few more) so the
//! benchmark harness can regenerate the `Configs` / `MaxQSize` columns of
//! Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters accumulated during a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Candidates popped off the main queue `Q` — the paper's “Configs”.
    pub configs: u64,
    /// Largest size reached by `Q` — the paper's “MaxQSize”.
    pub max_queue: usize,
    /// Candidates pushed onto `Q` (after surviving the prune check).
    pub pushed: u64,
    /// Candidates rejected or displaced by inferiority pruning.
    pub pruned: u64,
    /// Candidates rejected by the clock-period feasibility bounds.
    pub bound_rejected: u64,
    /// Number of wave-front advances (register/FIFO generations).
    pub waves: u32,
    /// Candidates skipped as stale when popped (already dominated).
    pub stale_skipped: u64,
}

impl SearchStats {
    /// Creates zeroed statistics.
    pub fn new() -> SearchStats {
        SearchStats::default()
    }

    /// Records a push and keeps the running queue-size maximum.
    #[inline]
    pub(crate) fn record_push(&mut self, queue_len: usize) {
        self.pushed += 1;
        if queue_len > self.max_queue {
            self.max_queue = queue_len;
        }
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "configs={} maxQ={} pushed={} pruned={} bound-rejected={} waves={}",
            self.configs, self.max_queue, self.pushed, self.pruned, self.bound_rejected, self.waves
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_push_tracks_max() {
        let mut s = SearchStats::new();
        s.record_push(3);
        s.record_push(7);
        s.record_push(5);
        assert_eq!(s.pushed, 3);
        assert_eq!(s.max_queue, 7);
    }

    #[test]
    fn display_contains_counters() {
        let mut s = SearchStats::new();
        s.configs = 42;
        s.record_push(9);
        let text = s.to_string();
        assert!(text.contains("configs=42"));
        assert!(text.contains("maxQ=9"));
    }
}
