//! Design-rule checking for synthesized routes.
//!
//! A [`RoutedPath`] can be produced by any of the searches (or by hand);
//! this module re-validates one against *all* the rules the paper's
//! problem statements impose, independently of the search that built it:
//!
//! 1. **geometry** — consecutive points grid-adjacent, no blocked edges;
//! 2. **legality** — `p(v) = 1` wherever `m(v) ∈ I`, registers only
//!    outside register keep-outs;
//! 3. **timing** — every stage within its clock period, re-computed from
//!    scratch by the ground-truth Elmore evaluator;
//! 4. **structure** — exactly one MCFIFO for two-domain routes, none for
//!    single-domain routes.
//!
//! The searches are tested against this checker, but it is also part of
//! the public API so downstream flows can gate hand-edited or imported
//! routes.

use crate::RoutedPath;
use clockroute_elmore::delay::EvaluateRouteError;
use clockroute_elmore::{GateLibrary, Technology};
use clockroute_geom::units::Time;
use clockroute_geom::Point;
use clockroute_grid::{GridGraph, ValidatePathError};
use std::error::Error;
use std::fmt;

/// The clocking discipline a route must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockRule {
    /// No timing check (combinational route).
    Unconstrained,
    /// Single domain at the given period; no MCFIFO allowed.
    SingleDomain(Time),
    /// Two domains; exactly one MCFIFO required.
    TwoDomain {
        /// Sender period.
        t_s: Time,
        /// Receiver period.
        t_t: Time,
    },
}

/// A design-rule violation.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcViolation {
    /// The geometric path is invalid.
    Geometry(ValidatePathError),
    /// A gate sits on a placement-blocked node.
    GateOnBlockedNode(Point),
    /// A register/latch/FIFO sits inside a register keep-out.
    RegisterInKeepout(Point),
    /// The route structure is malformed (evaluator rejected it).
    Malformed(EvaluateRouteError),
    /// A stage exceeds its clock period.
    StageTooSlow {
        /// Index of the offending stage (source side first).
        stage: usize,
        /// Its delay.
        delay: Time,
        /// The period it must meet.
        period: Time,
    },
    /// MCFIFO count does not match the clock rule.
    WrongFifoCount {
        /// FIFOs found on the route.
        found: usize,
        /// FIFOs the rule requires.
        required: usize,
    },
}

impl fmt::Display for DrcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrcViolation::Geometry(e) => write!(f, "geometry: {e}"),
            DrcViolation::GateOnBlockedNode(p) => {
                write!(f, "gate placed on blocked node {p}")
            }
            DrcViolation::RegisterInKeepout(p) => {
                write!(f, "register placed inside keep-out at {p}")
            }
            DrcViolation::Malformed(e) => write!(f, "malformed route: {e}"),
            DrcViolation::StageTooSlow {
                stage,
                delay,
                period,
            } => write!(f, "stage #{stage} delay {delay} exceeds period {period}"),
            DrcViolation::WrongFifoCount { found, required } => {
                write!(f, "route has {found} MCFIFOs, rule requires {required}")
            }
        }
    }
}

impl Error for DrcViolation {}

/// Checks `path` against all design rules under `rule`.
///
/// Returns every violation found (empty = clean). Timing checks use a
/// 1 fs tolerance to absorb floating-point noise.
///
/// # Example
///
/// ```
/// use clockroute_core::{RbpSpec, drc};
/// use clockroute_elmore::{Technology, GateLibrary};
/// use clockroute_grid::GridGraph;
/// use clockroute_geom::{Point, units::{Length, Time}};
///
/// let graph = GridGraph::open(20, 20, Length::from_um(500.0));
/// let tech = Technology::paper_070nm();
/// let lib = GateLibrary::paper_library();
/// let t = Time::from_ps(300.0);
/// let sol = RbpSpec::new(&graph, &tech, &lib)
///     .source(Point::new(0, 0))
///     .sink(Point::new(19, 19))
///     .period(t)
///     .solve()?;
/// let violations = drc::check(
///     sol.path(), &graph, &tech, &lib, drc::ClockRule::SingleDomain(t),
/// );
/// assert!(violations.is_empty());
/// # Ok::<(), clockroute_core::RouteError>(())
/// ```
pub fn check(
    path: &RoutedPath,
    graph: &GridGraph,
    tech: &Technology,
    lib: &GateLibrary,
    rule: ClockRule,
) -> Vec<DrcViolation> {
    let mut violations = Vec::new();
    const EPS: f64 = 1e-3; // 1 fs in ps

    // 1. Geometry.
    if let Err(e) = path.grid_path().validate(graph) {
        violations.push(DrcViolation::Geometry(e));
    }

    // 2. Legality (terminals exempt: they belong to existing blocks).
    for (pt, gate) in path.gates() {
        if pt == path.source() || pt == path.sink() {
            continue;
        }
        if !graph.contains(pt) {
            continue; // already reported as geometry
        }
        if graph.blockage().is_node_blocked(pt) {
            violations.push(DrcViolation::GateOnBlockedNode(pt));
        } else if lib.gate(gate).kind().is_sequential() && graph.blockage().is_register_blocked(pt)
        {
            violations.push(DrcViolation::RegisterInKeepout(pt));
        }
    }

    // 3 & 4. Timing + structure, from the ground-truth evaluator.
    let elems = path.to_route_elems(graph);
    match clockroute_elmore::delay::evaluate(&elems, tech, lib) {
        Err(e) => violations.push(DrcViolation::Malformed(e)),
        Ok(report) => {
            let required_fifos = match rule {
                ClockRule::TwoDomain { .. } => 1,
                _ => 0,
            };
            if report.fifo_count != required_fifos {
                violations.push(DrcViolation::WrongFifoCount {
                    found: report.fifo_count,
                    required: required_fifos,
                });
            }
            match rule {
                ClockRule::Unconstrained => {}
                ClockRule::SingleDomain(t) => {
                    for (i, stage) in report.stages.iter().enumerate() {
                        if stage.delay.ps() > t.ps() + EPS {
                            violations.push(DrcViolation::StageTooSlow {
                                stage: i,
                                delay: stage.delay,
                                period: t,
                            });
                        }
                    }
                }
                ClockRule::TwoDomain { t_s, t_t } => {
                    use clockroute_elmore::delay::ClockDomain;
                    for (i, stage) in report.stages.iter().enumerate() {
                        let period = match stage.domain {
                            ClockDomain::Source => t_s,
                            ClockDomain::Sink => t_t,
                        };
                        if stage.delay.ps() > period.ps() + EPS {
                            violations.push(DrcViolation::StageTooSlow {
                                stage: i,
                                delay: stage.delay,
                                period,
                            });
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FastPathSpec, GalsSpec, RbpSpec};
    use clockroute_geom::units::Length;
    use clockroute_geom::BlockageMap;

    fn setup(n: u32) -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(n, n, Length::from_um(500.0)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn clean_solutions_pass() {
        let (g, tech, lib) = setup(25);
        let t = Time::from_ps(300.0);
        let rbp = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(24, 24))
            .period(t)
            .solve()
            .unwrap();
        assert!(check(rbp.path(), &g, &tech, &lib, ClockRule::SingleDomain(t)).is_empty());

        let fast = FastPathSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(24, 24))
            .solve()
            .unwrap();
        assert!(check(fast.path(), &g, &tech, &lib, ClockRule::Unconstrained).is_empty());

        let gals = GalsSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(24, 24))
            .periods(t, Time::from_ps(400.0))
            .solve()
            .unwrap();
        assert!(check(
            gals.path(),
            &g,
            &tech,
            &lib,
            ClockRule::TwoDomain {
                t_s: t,
                t_t: Time::from_ps(400.0)
            }
        )
        .is_empty());
    }

    #[test]
    fn timing_violation_detected() {
        let (g, tech, lib) = setup(25);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(24, 24))
            .period(Time::from_ps(500.0))
            .solve()
            .unwrap();
        // Check the same route against a much tighter clock.
        let violations = check(
            sol.path(),
            &g,
            &tech,
            &lib,
            ClockRule::SingleDomain(Time::from_ps(100.0)),
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, DrcViolation::StageTooSlow { .. })));
    }

    #[test]
    fn fifo_count_rules() {
        let (g, tech, lib) = setup(20);
        let t = Time::from_ps(300.0);
        let rbp = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(19, 19))
            .period(t)
            .solve()
            .unwrap();
        // A single-domain route checked as two-domain lacks its FIFO.
        let violations = check(
            rbp.path(),
            &g,
            &tech,
            &lib,
            ClockRule::TwoDomain { t_s: t, t_t: t },
        );
        assert!(violations
            .iter()
            .any(|v| matches!(v, DrcViolation::WrongFifoCount { found: 0, required: 1 })));
    }

    #[test]
    fn legality_violation_detected() {
        // Build a clean route, then block a node under one of its gates.
        let (g, tech, lib) = setup(20);
        let t = Time::from_ps(250.0);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(19, 19))
            .period(t)
            .solve()
            .unwrap();
        let (gate_pt, _) = sol
            .path()
            .gates()
            .find(|&(pt, _)| pt != p(0, 0) && pt != p(19, 19))
            .expect("an internal gate exists");
        let mut blk = BlockageMap::new(20, 20);
        blk.block_node(gate_pt);
        let g2 = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let violations = check(sol.path(), &g2, &tech, &lib, ClockRule::SingleDomain(t));
        assert!(violations.contains(&DrcViolation::GateOnBlockedNode(gate_pt)));
    }

    #[test]
    fn keepout_violation_detected() {
        let (g, tech, lib) = setup(20);
        let t = Time::from_ps(250.0);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(19, 19))
            .period(t)
            .solve()
            .unwrap();
        let reg_pt = sol
            .path()
            .gates()
            .find(|&(pt, gid)| {
                pt != p(0, 0) && pt != p(19, 19) && lib.gate(gid).kind().is_sequential()
            })
            .map(|(pt, _)| pt)
            .expect("a register exists");
        let mut blk = BlockageMap::new(20, 20);
        blk.block_register(reg_pt);
        let g2 = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let violations = check(sol.path(), &g2, &tech, &lib, ClockRule::SingleDomain(t));
        assert!(violations.contains(&DrcViolation::RegisterInKeepout(reg_pt)));
    }

    #[test]
    fn geometry_violation_detected() {
        let (g, tech, lib) = setup(20);
        let t = Time::from_ps(250.0);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(19, 19))
            .period(t)
            .solve()
            .unwrap();
        // Block an edge the route uses.
        let pts = sol.path().points();
        let mut blk = BlockageMap::new(20, 20);
        blk.block_edge(pts[3], pts[4]);
        let g2 = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let violations = check(sol.path(), &g2, &tech, &lib, ClockRule::SingleDomain(t));
        assert!(violations
            .iter()
            .any(|v| matches!(v, DrcViolation::Geometry(_))));
    }

    #[test]
    fn violation_display() {
        let v = DrcViolation::StageTooSlow {
            stage: 2,
            delay: Time::from_ps(350.0),
            period: Time::from_ps(300.0),
        };
        assert_eq!(v.to_string(), "stage #2 delay 350 ps exceeds period 300 ps");
        let v = DrcViolation::WrongFifoCount {
            found: 2,
            required: 1,
        };
        assert!(v.to_string().contains("2 MCFIFOs"));
    }
}
