//! Parallel-planner speedup table: wall-clock time for batches of
//! registered nets on the paper's experimental die (E1/E2 grids) at
//! 1/2/4/8 worker threads, with resource reservation on and off.
//!
//! Every multi-threaded plan is asserted equal to the single-threaded
//! one before its time is reported — the table never trades correctness
//! for speed. Useful speedup requires physical cores; on a single-CPU
//! machine the expected result is ≈1× (scheduling overhead only).
//!
//! Usage: `cargo run --release -p clockroute-bench --bin parallel [max_grid]`
//! (default 200; pass 100 to skip the largest grid).

use clockroute_elmore::{GateLibrary, Technology};
use clockroute_geom::units::{Length, Time};
use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use clockroute_plan::{NetSpec, Plan, Planner};
use std::time::Instant;

const JOBS: [usize; 4] = [1, 2, 4, 8];

/// A batch of parallel registered nets spanning the die diagonally, like
/// the E1/E2 source–sink pairs but offset so reservation makes them
/// compete near the centre.
fn batch(grid: u32, nets: u32) -> Vec<NetSpec> {
    let period = Time::from_ps(400.0);
    (0..nets)
        .map(|i| {
            let off = i * grid / (2 * nets);
            NetSpec::registered(
                &format!("n{i}"),
                Point::new(off, 0),
                Point::new(grid - 1 - off, grid - 1),
                period,
            )
        })
        .collect()
}

fn run(
    graph: &GridGraph,
    tech: Technology,
    lib: &GateLibrary,
    nets: &[NetSpec],
    reserve: bool,
    jobs: usize,
) -> (Plan, f64) {
    // crlint-allow: CR003 bench harness measures wall-clock by design; timings are reported, never byte-compared
    let start = Instant::now();
    let plan = Planner::new(graph.clone(), tech, lib.clone())
        .reserve_routes(reserve)
        .jobs(jobs)
        .plan(nets);
    (plan, start.elapsed().as_secs_f64())
}

fn main() {
    let max_grid: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# Parallel planner speedup");
    println!();
    println!(
        "Hardware: {threads} available hardware thread(s). Speedup above 1× \
         requires real cores; with {threads} the numbers below measure \
         scheduling overhead, not parallelism."
    );
    println!();
    println!("| grid | nets | reserve | t(1) s | t(2) s | t(4) s | t(8) s | speedup@4 | identical |");
    println!("|------|------|---------|--------|--------|--------|--------|-----------|-----------|");

    let tech = Technology::paper_070nm();
    let lib = GateLibrary::paper_library();
    for &grid in [100u32, 200].iter().filter(|&&g| g <= max_grid) {
        let fp = clockroute_geom::Floorplan::new(Length::from_mm(25.0), Length::from_mm(25.0));
        let graph = GridGraph::from_floorplan(&fp, grid, grid);
        let nets = batch(grid, 8);
        for reserve in [false, true] {
            let mut times = Vec::new();
            let mut identical = true;
            let mut baseline: Option<Plan> = None;
            for jobs in JOBS {
                let (plan, secs) = run(&graph, tech, &lib, &nets, reserve, jobs);
                match &baseline {
                    None => baseline = Some(plan),
                    Some(b) => identical &= *b == plan,
                }
                times.push(secs);
            }
            assert!(identical, "parallel plan diverged from sequential");
            let routed = baseline.as_ref().map_or(0, |b| b.routed().count());
            assert!(routed > 0, "batch routed nothing; benchmark is vacuous");
            println!(
                "| {grid}×{grid} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.2}× | yes |",
                nets.len(),
                if reserve { "on" } else { "off" },
                times[0],
                times[1],
                times[2],
                times[3],
                times[0] / times[2],
            );
        }
    }
}
