//! Routing-tree topologies over the grid.

use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A rooted routing tree embedded in the grid: every node is a grid
/// point, every edge a grid edge; the root is the net's source and a
/// designated subset of nodes are sinks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTree {
    points: Vec<Point>,
    /// Parent index per node (`usize::MAX` for the root).
    parents: Vec<usize>,
    children: Vec<Vec<usize>>,
    root: usize,
    sinks: Vec<usize>,
}

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTreeError {
    /// Fewer than two terminals were given.
    TooFewTerminals,
    /// A terminal lies outside the grid.
    TerminalOffGrid(Point),
    /// Two terminals coincide.
    DuplicateTerminal(Point),
    /// An embedded edge crosses a wiring blockage (L-shaped embedding
    /// does not route around blockages; pre-clear the spine region or
    /// use the path algorithms for obstructed nets).
    BlockedEdge(Point, Point),
}

impl fmt::Display for BuildTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTreeError::TooFewTerminals => f.write_str("need a source and at least one sink"),
            BuildTreeError::TerminalOffGrid(p) => write!(f, "terminal {p} is outside the grid"),
            BuildTreeError::DuplicateTerminal(p) => write!(f, "duplicate terminal {p}"),
            BuildTreeError::BlockedEdge(a, b) => {
                write!(f, "embedded edge {a}–{b} crosses a wiring blockage")
            }
        }
    }
}

impl Error for BuildTreeError {}

impl RoutingTree {
    /// Builds a rectilinear routing tree: Prim MST over the terminals
    /// (Manhattan metric), each MST edge embedded as an L-shaped route
    /// (horizontal first), overlapping segments merged.
    ///
    /// # Errors
    ///
    /// See [`BuildTreeError`].
    pub fn rectilinear(
        graph: &GridGraph,
        source: Point,
        sinks: &[Point],
    ) -> Result<RoutingTree, BuildTreeError> {
        if sinks.is_empty() {
            return Err(BuildTreeError::TooFewTerminals);
        }
        let mut terminals = vec![source];
        terminals.extend_from_slice(sinks);
        for &t in &terminals {
            if !graph.contains(t) {
                return Err(BuildTreeError::TerminalOffGrid(t));
            }
        }
        for i in 0..terminals.len() {
            for j in i + 1..terminals.len() {
                if terminals[i] == terminals[j] {
                    return Err(BuildTreeError::DuplicateTerminal(terminals[i]));
                }
            }
        }

        // Prim MST over terminals, rooted at the source.
        let n = terminals.len();
        let mut in_tree = vec![false; n];
        let mut best_dist = vec![u32::MAX; n];
        let mut best_link = vec![0usize; n];
        in_tree[0] = true;
        for i in 1..n {
            best_dist[i] = terminals[0].manhattan(terminals[i]);
        }
        let mut mst_edges: Vec<(usize, usize)> = Vec::new();
        for _ in 1..n {
            let (i, _) = best_dist
                .iter()
                .enumerate()
                .filter(|(i, _)| !in_tree[*i])
                .min_by_key(|(_, d)| **d)
                .expect("some terminal remains");
            in_tree[i] = true;
            mst_edges.push((best_link[i], i));
            for j in 1..n {
                if !in_tree[j] {
                    let d = terminals[i].manhattan(terminals[j]);
                    if d < best_dist[j] {
                        best_dist[j] = d;
                        best_link[j] = i;
                    }
                }
            }
        }

        // Embed each MST edge (from the already-rooted endpoint outward)
        // as an L-shaped route; grow a grid-level adjacency map with
        // shared segments merged.
        let mut adjacency: HashMap<Point, Vec<Point>> = HashMap::new();
        let mut add_edge = |a: Point, b: Point| {
            let list = adjacency.entry(a).or_default();
            if !list.contains(&b) {
                list.push(b);
            }
            let list = adjacency.entry(b).or_default();
            if !list.contains(&a) {
                list.push(a);
            }
        };
        for &(from, to) in &mst_edges {
            let (a, b) = (terminals[from], terminals[to]);
            for w in l_shape(a, b).windows(2) {
                if graph.blockage().is_edge_blocked(w[0], w[1]) {
                    return Err(BuildTreeError::BlockedEdge(w[0], w[1]));
                }
                add_edge(w[0], w[1]);
            }
        }

        // Root the merged graph at the source with a BFS (the union of
        // L-embeddings can contain cycles; the BFS tree keeps shortest
        // hop counts, preserving rectilinear spirit).
        let mut points = vec![source];
        let mut index: HashMap<Point, usize> = HashMap::from([(source, 0)]);
        let mut parents = vec![usize::MAX];
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(p) = queue.pop_front() {
            let pi = index[&p];
            if let Some(neigh) = adjacency.get(&p) {
                for &q in neigh {
                    if let std::collections::hash_map::Entry::Vacant(e) = index.entry(q) {
                        let qi = points.len();
                        e.insert(qi);
                        points.push(q);
                        parents.push(pi);
                        queue.push_back(q);
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); points.len()];
        for (i, &p) in parents.iter().enumerate() {
            if p != usize::MAX {
                children[p].push(i);
            }
        }
        // Prune branches that lead to no sink (BFS may have kept cycle
        // remnants as dead twigs).
        let sink_set: std::collections::HashSet<Point> = sinks.iter().copied().collect();
        let mut keep = vec![false; points.len()];
        for (i, &p) in points.iter().enumerate() {
            if sink_set.contains(&p) {
                let mut cur = i;
                while cur != usize::MAX && !keep[cur] {
                    keep[cur] = true;
                    cur = parents[cur];
                }
            }
        }
        let mut remap = vec![usize::MAX; points.len()];
        let mut new_points = Vec::new();
        let mut new_parents = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = new_points.len();
                new_points.push(points[i]);
                new_parents.push(if parents[i] == usize::MAX {
                    usize::MAX
                } else {
                    remap[parents[i]]
                });
            }
        }
        let mut new_children = vec![Vec::new(); new_points.len()];
        for (i, &p) in new_parents.iter().enumerate() {
            if p != usize::MAX {
                new_children[p].push(i);
            }
        }
        let sinks_idx: Vec<usize> = sinks
            .iter()
            .map(|s| {
                new_points
                    .iter()
                    .position(|p| p == s)
                    .expect("every sink is kept")
            })
            .collect();

        Ok(RoutingTree {
            points: new_points,
            parents: new_parents,
            children: new_children,
            root: 0,
            sinks: sinks_idx,
        })
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the tree has no nodes (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The grid point of node `i`.
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// The root (source) node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Parent of node `i` (`None` for the root).
    pub fn parent(&self, i: usize) -> Option<usize> {
        let p = self.parents[i];
        (p != usize::MAX).then_some(p)
    }

    /// Children of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Sink node indices.
    pub fn sinks(&self) -> &[usize] {
        &self.sinks
    }

    /// Total wirelength in grid edges.
    pub fn edge_count(&self) -> usize {
        self.points.len() - 1
    }

    /// Nodes in topological order, leaves first (safe for bottom-up DP).
    pub fn bottom_up(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut depth = vec![0usize; self.len()];
        for (i, slot) in depth.iter_mut().enumerate() {
            let mut cur = i;
            let mut d = 0;
            while let Some(p) = self.parent(cur) {
                cur = p;
                d += 1;
            }
            *slot = d;
        }
        order.sort_by_key(|&i| std::cmp::Reverse(depth[i]));
        order
    }

    /// The path (node indices) from the root to node `i`, inclusive.
    pub fn path_from_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// L-shaped grid route from `a` to `b`: horizontal leg first.
fn l_shape(a: Point, b: Point) -> Vec<Point> {
    let mut pts = vec![a];
    let mut cur = a;
    while cur.x != b.x {
        cur = Point::new(
            if cur.x < b.x { cur.x + 1 } else { cur.x - 1 },
            cur.y,
        );
        pts.push(cur);
    }
    while cur.y != b.y {
        cur = Point::new(
            cur.x,
            if cur.y < b.y { cur.y + 1 } else { cur.y - 1 },
        );
        pts.push(cur);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;
    use clockroute_geom::BlockageMap;

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn open(n: u32) -> GridGraph {
        GridGraph::open(n, n, Length::from_um(500.0))
    }

    #[test]
    fn single_sink_is_an_l_path() {
        let g = open(10);
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(5, 3)]).unwrap();
        assert_eq!(tree.edge_count(), 8);
        assert_eq!(tree.sinks().len(), 1);
        assert_eq!(tree.point(tree.root()), p(0, 0));
        // Every non-root node has exactly one parent; sink is a leaf.
        let sink = tree.sinks()[0];
        assert!(tree.children(sink).is_empty());
    }

    #[test]
    fn two_sinks_share_trunk() {
        let g = open(12);
        // Sinks aligned so their L-embeddings share the horizontal trunk.
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(8, 0), p(8, 4)]).unwrap();
        // Shared trunk 8 + branch 4 = 12 edges (not 8 + 12).
        assert_eq!(tree.edge_count(), 12);
        // Exactly one branch node with two children or the sink chain.
        let branching = (0..tree.len())
            .filter(|&i| tree.children(i).len() > 1)
            .count();
        assert!(branching <= 1);
    }

    #[test]
    fn star_topology() {
        let g = open(15);
        let sinks = [p(14, 7), p(7, 14), p(0, 7), p(7, 0)];
        let tree = RoutingTree::rectilinear(&g, p(7, 7), &sinks).unwrap();
        assert_eq!(tree.sinks().len(), 4);
        for &s in tree.sinks() {
            // Path from root reaches each sink.
            let path = tree.path_from_root(s);
            assert_eq!(path[0], tree.root());
            assert_eq!(*path.last().unwrap(), s);
            // Consecutive path nodes are grid-adjacent.
            for w in path.windows(2) {
                assert!(tree.point(w[0]).is_adjacent(tree.point(w[1])));
            }
        }
    }

    #[test]
    fn bottom_up_order_is_safe() {
        let g = open(12);
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &[p(8, 0), p(8, 4), p(3, 6)]).unwrap();
        let order = tree.bottom_up();
        let mut seen = vec![false; tree.len()];
        for &i in &order {
            for &c in tree.children(i) {
                assert!(seen[c], "child {c} visited after parent {i}");
            }
            seen[i] = true;
        }
        assert_eq!(*order.last().unwrap(), tree.root());
    }

    #[test]
    fn validation_errors() {
        let g = open(8);
        assert_eq!(
            RoutingTree::rectilinear(&g, p(0, 0), &[]),
            Err(BuildTreeError::TooFewTerminals)
        );
        assert_eq!(
            RoutingTree::rectilinear(&g, p(0, 0), &[p(9, 9)]),
            Err(BuildTreeError::TerminalOffGrid(p(9, 9)))
        );
        assert_eq!(
            RoutingTree::rectilinear(&g, p(0, 0), &[p(2, 2), p(2, 2)]),
            Err(BuildTreeError::DuplicateTerminal(p(2, 2)))
        );
        let mut blk = BlockageMap::new(8, 8);
        for y in 0..8 {
            blk.block_edge(p(3, y), p(4, y));
        }
        for x in 0..8 {
            if x != 7 {
                blk.block_edge(p(x, 3), p(x, 4));
            }
        }
        let gb = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        assert!(matches!(
            RoutingTree::rectilinear(&gb, p(0, 0), &[p(7, 0)]),
            Err(BuildTreeError::BlockedEdge(..))
        ));
    }

    #[test]
    fn tree_is_acyclic_and_spanning() {
        let g = open(20);
        let sinks = [p(19, 19), p(19, 0), p(0, 19), p(10, 5), p(5, 10)];
        let tree = RoutingTree::rectilinear(&g, p(0, 0), &sinks).unwrap();
        // |V| = |E| + 1 guarantees a tree given connectivity.
        assert_eq!(tree.len(), tree.edge_count() + 1);
        // All sinks present.
        for s in sinks {
            assert!(tree.sinks().iter().any(|&i| tree.point(i) == s));
        }
    }
}
