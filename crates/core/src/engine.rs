//! Shared search-engine internals: candidate arena, priority queue and
//! inferiority pruning.
//!
//! All three algorithms (fast path, RBP, GALS) are label-correcting
//! searches over the grid graph whose candidates carry a downstream
//! capacitance `c` and a delay `d`. This module centralises the mechanics
//! they share so the algorithm files contain only the logic the paper
//! actually describes.

use clockroute_elmore::GateId;
use clockroute_grid::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

pub(crate) const NO_PARENT: u32 = u32::MAX;

/// One step of a partial route, stored in a persistent arena so candidate
/// extension is O(1) and path reconstruction is a parent walk.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Step {
    pub node: NodeId,
    pub gate: Option<GateId>,
    pub parent: u32,
}

/// Size of one arena step record, for arena-memory telemetry.
pub(crate) fn step_size_bytes() -> usize {
    std::mem::size_of::<Step>()
}

/// Append-only arena of [`Step`]s shared by all candidates of a search.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    steps: Vec<Step>,
}

impl Arena {
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of steps allocated — the budget meter's arena-memory
    /// measure (each step is one fixed-size record).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn push(&mut self, node: NodeId, gate: Option<GateId>, parent: u32) -> u32 {
        // crlint-allow: CR002 arena growth is capped by the budget meter well below u32::MAX steps
        let id = u32::try_from(self.steps.len()).expect("arena overflow");
        self.steps.push(Step { node, gate, parent });
        id
    }

    /// Bounding box of every node an arena step was allocated for.
    ///
    /// All grid state a search reads is at or adjacent to such a node, so
    /// this box (dilated by one step) over-approximates the search's read
    /// set — see [`TouchedRegion`](crate::TouchedRegion).
    pub fn touched(&self, graph: &clockroute_grid::GridGraph) -> Option<crate::TouchedRegion> {
        let mut steps = self.steps.iter();
        let mut region = crate::TouchedRegion::of_point(graph.point(steps.next()?.node));
        for step in steps {
            region.include(graph.point(step.node));
        }
        Some(region)
    }

    /// Walks from `trail` (the source-side head) to the root (the sink),
    /// merging consecutive same-node steps (a gate-insertion step shares
    /// its node with the arrival step it decorates).
    ///
    /// Returns `(nodes, labels)` in source→sink order.
    pub fn reconstruct(&self, trail: u32) -> (Vec<NodeId>, Vec<Option<GateId>>) {
        let mut nodes = Vec::new();
        let mut labels: Vec<Option<GateId>> = Vec::new();
        let mut cur = trail;
        while cur != NO_PARENT {
            let step = self.steps[cur as usize];
            if nodes.last() == Some(&step.node) {
                // Same node: keep the strongest label seen (gate steps are
                // pushed after arrival steps, so the gate is already
                // recorded; arrival steps carry `None`).
                if labels.last() == Some(&None) {
                    // crlint-allow: CR002 the `last()` probe above just returned Some
                    *labels.last_mut().expect("non-empty") = step.gate;
                }
            } else {
                nodes.push(step.node);
                labels.push(step.gate);
            }
            cur = step.parent;
        }
        (nodes, labels)
    }
}

/// A partial solution. Field meaning follows the paper's candidate tuples
/// `(c, d, m, v)` (fast path / RBP) and `(c, d, m, v, z, l)` (GALS); the
/// labelling `m` is materialised lazily through the arena `trail`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand {
    /// Downstream input capacitance seen at `node`, in fF.
    pub cap: f64,
    /// Delay from `node` to the most recent downstream synchronizer (or
    /// the sink), in ps. For fast path this is the full delay to `t`.
    pub delay: f64,
    pub node: NodeId,
    /// Arena index of the head step.
    pub trail: u32,
    /// `true` if the candidate's labelling already places a gate at
    /// `node` (then no further insertion may occur here).
    pub gate_here: bool,
    /// GALS: `true` once the MCFIFO has been inserted (paper's `z`).
    pub fifo_inserted: bool,
    /// GALS: accumulated latency `l` from the last synchronizer to `t`.
    pub latency: f64,
    /// Delay of the stage adjacent to the sink (fixed once the first
    /// synchronizer is inserted); used by the slack tie-break.
    pub sink_stage: f64,
    /// Latch extension: cumulative time borrowed so far, in ps.
    pub borrowed: f64,
    /// Fast path: candidate represents a completed route (source gate
    /// delay already added); popping it terminates the search.
    pub finalized: bool,
}

impl Cand {
    pub fn start(cap: f64, delay: f64, trail: u32, node: NodeId) -> Cand {
        Cand {
            cap,
            delay,
            node,
            trail,
            gate_here: true,
            fifo_inserted: false,
            latency: 0.0,
            sink_stage: f64::NAN,
            borrowed: 0.0,
            finalized: false,
        }
    }
}

/// Priority-queue wrapper: min-heap on `delay` with a deterministic
/// sequence-number tie-break (Rust's `BinaryHeap` is a max-heap, hence the
/// reversed ordering).
pub(crate) struct DelayQueue {
    heap: BinaryHeap<QueueEntry>,
    seq: u64,
}

struct QueueEntry {
    key: f64,
    seq: u64,
    cand: Cand,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the heap invariant even for non-finite keys
        // (NaN sorts above +inf instead of comparing equal to everything,
        // which would silently corrupt heap order).
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// The canonical CR001 pattern: `PartialOrd` delegates to the total
// `Ord` above, so NaN can never corrupt the heap invariant. crlint
// accepts exactly this shape (see crates/lint, rule CR001).
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl DelayQueue {
    pub fn new() -> DelayQueue {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, key: f64, cand: Cand) {
        debug_assert!(key.is_finite(), "non-finite queue key {key}");
        self.seq += 1;
        self.heap.push(QueueEntry {
            key,
            seq: self.seq,
            cand,
        });
    }

    pub fn pop(&mut self) -> Option<Cand> {
        self.heap.pop().map(|e| e.cand)
    }

    /// Minimum key currently in the queue.
    pub fn peek_key(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A Pareto entry used for inferiority pruning.
///
/// `capable` is `true` when the candidate can still receive a gate at its
/// node (`m(v) = 0`); a gate-bearing candidate must never prune a
/// still-capable one at equal `(c, d)`, or a legal insertion could be
/// lost. `extra` is a third dominated dimension used by the latch
/// extension (borrowed time); it is 0 elsewhere.
#[derive(Debug, Clone, Copy)]
struct Entry {
    cap: f64,
    delay: f64,
    extra: f64,
    capable: bool,
}

impl Entry {
    /// `self` dominates `other` (other may be pruned).
    fn dominates(&self, other: &Entry) -> bool {
        self.cap <= other.cap
            && self.delay <= other.delay
            && self.extra <= other.extra
            && (self.capable || !other.capable)
    }

    /// Strict domination: at least one coordinate strictly better, so the
    /// dominated candidate cannot be the entry itself.
    fn dominates_strictly(&self, other: &Entry) -> bool {
        self.dominates(other)
            && (self.cap < other.cap
                || self.delay < other.delay
                || self.extra < other.extra
                || (self.capable && !other.capable))
    }
}

/// Per-key Pareto fronts with O(1) lazy clearing between wave fronts.
///
/// Keys are `node.index()` for single-domain searches and
/// `node.index() * 2 + z` for GALS (separate fronts per `z`, per the
/// paper's rule that candidates with different `z` are never compared).
pub(crate) struct PruneTable {
    lists: Vec<Vec<Entry>>,
    stamps: Vec<u64>,
    epoch: u64,
    comparisons: u64,
}

impl PruneTable {
    pub fn new(keys: usize) -> PruneTable {
        PruneTable {
            lists: vec![Vec::new(); keys],
            stamps: vec![0; keys],
            epoch: 1,
            comparisons: 0,
        }
    }

    /// Total pairwise entry comparisons performed by dominance checks —
    /// the work measure the sorted-frontier rewrite is judged against.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Starts a new wave front: all fronts are (lazily) cleared.
    pub fn advance_wave(&mut self) {
        self.epoch += 1;
    }

    /// Attempts to admit a candidate with the given coordinates.
    ///
    /// Returns `false` (and leaves the front unchanged) if an existing
    /// entry dominates it; otherwise inserts it, evicts entries it
    /// dominates, and returns `true`. `evicted` is incremented by the
    /// number of entries removed.
    pub fn try_admit(
        &mut self,
        key: usize,
        cap: f64,
        delay: f64,
        extra: f64,
        capable: bool,
        evicted: &mut u64,
    ) -> bool {
        let entry = Entry {
            cap,
            delay,
            extra,
            capable,
        };
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.lists[key].clear();
        }
        let mut scanned = 0u64;
        let dominated = self.lists[key].iter().any(|e| {
            scanned += 1;
            e.dominates(&entry)
        });
        if dominated {
            self.comparisons += scanned;
            return false;
        }
        let list = &mut self.lists[key];
        scanned += list.len() as u64;
        self.comparisons += scanned;
        let before = list.len();
        list.retain(|e| !entry.dominates(e));
        *evicted += (before - list.len()) as u64;
        list.push(entry);
        true
    }

    /// `true` if the candidate has become stale: some entry now strictly
    /// dominates it (it can no longer be on the Pareto front).
    pub fn is_stale(&mut self, key: usize, cap: f64, delay: f64, extra: f64, capable: bool) -> bool {
        let entry = Entry {
            cap,
            delay,
            extra,
            capable,
        };
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.lists[key].clear();
        }
        let mut scanned = 0u64;
        let stale = self.lists[key].iter().any(|e| {
            scanned += 1;
            e.dominates_strictly(&entry)
        });
        self.comparisons += scanned;
        stale
    }
}

/// Which search substrate a spec runs on.
///
/// Both engines return byte-identical results; they differ only in how
/// much work they do to get there. `Legacy` is the original
/// boxed-candidate `BinaryHeap` + linear-scan implementation, retained
/// verbatim as the in-tree equivalence reference for the differential
/// suite (see `tests/differential.rs` and DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Flat struct-of-arrays candidate arena, sorted per-key Pareto
    /// frontiers with binary-search dominance, and a monotone bucket
    /// (dial) queue.
    #[default]
    Arena,
    /// The pre-rewrite substrate: boxed candidates in a `BinaryHeap`,
    /// linear-scan dominance.
    Legacy,
}

const FLAG_GATE_HERE: u8 = 1 << 0;
const FLAG_FIFO_INSERTED: u8 = 1 << 1;
const FLAG_FINALIZED: u8 = 1 << 2;
const FLAG_DEAD: u8 = 1 << 3;

/// Struct-of-arrays candidate store addressed by `u32` indices.
///
/// The queue and the frontier table hold bare indices into this arena.
/// A frontier eviction marks the index dead instead of removing it from
/// the queue; the search loop skips dead pops before charging any budget
/// or telemetry. A dead candidate is strictly dominated, so the legacy
/// engine would have stale-skipped it *after* charging — eliding that
/// charge is part of the work the rewrite saves, and it is the only
/// reason `configs`/`stale_skipped` may differ between the engines.
#[derive(Debug, Default)]
pub(crate) struct CandArena {
    cap: Vec<f64>,
    delay: Vec<f64>,
    latency: Vec<f64>,
    sink_stage: Vec<f64>,
    borrowed: Vec<f64>,
    node: Vec<NodeId>,
    trail: Vec<u32>,
    flags: Vec<u8>,
}

impl CandArena {
    pub fn new() -> CandArena {
        CandArena::default()
    }

    pub fn alloc(&mut self, cand: &Cand) -> u32 {
        // crlint-allow: CR002 arena growth is capped by the budget meter well below u32::MAX candidates
        let id = u32::try_from(self.cap.len()).expect("candidate arena overflow");
        self.cap.push(cand.cap);
        self.delay.push(cand.delay);
        self.latency.push(cand.latency);
        self.sink_stage.push(cand.sink_stage);
        self.borrowed.push(cand.borrowed);
        self.node.push(cand.node);
        self.trail.push(cand.trail);
        let mut flags = 0u8;
        if cand.gate_here {
            flags |= FLAG_GATE_HERE;
        }
        if cand.fifo_inserted {
            flags |= FLAG_FIFO_INSERTED;
        }
        if cand.finalized {
            flags |= FLAG_FINALIZED;
        }
        self.flags.push(flags);
        id
    }

    pub fn get(&self, idx: u32) -> Cand {
        let i = idx as usize;
        Cand {
            cap: self.cap[i],
            delay: self.delay[i],
            node: self.node[i],
            trail: self.trail[i],
            gate_here: self.flags[i] & FLAG_GATE_HERE != 0,
            fifo_inserted: self.flags[i] & FLAG_FIFO_INSERTED != 0,
            latency: self.latency[i],
            sink_stage: self.sink_stage[i],
            borrowed: self.borrowed[i],
            finalized: self.flags[i] & FLAG_FINALIZED != 0,
        }
    }

    /// Marks a queued-but-dominated candidate dead (lazy deletion).
    pub fn kill(&mut self, idx: u32) {
        self.flags[idx as usize] |= FLAG_DEAD;
    }

    pub fn is_dead(&self, idx: u32) -> bool {
        self.flags[idx as usize] & FLAG_DEAD != 0
    }
}

/// Minimal queue interface the arena searches drive; implemented by the
/// binary heap ([`HeapQueue`]) and the monotone bucket queue
/// ([`DialQueue`]). Pop order is the exact total order `(key, seq)`
/// ascending under `f64::total_cmp` for both, where `seq` is assigned
/// per push — the same order [`DelayQueue`] produces.
pub(crate) trait SearchQueue {
    fn push(&mut self, key: f64, idx: u32);
    fn pop(&mut self) -> Option<u32>;
    /// Minimum key currently queued. Takes `&mut self` because the dial
    /// queue may need to activate its next bucket to answer.
    fn peek_key(&mut self) -> Option<f64>;
    fn len(&self) -> usize;
}

#[cfg(test)]
struct IdxEntry {
    key: f64,
    seq: u64,
    idx: u32,
}

#[cfg(test)]
impl PartialEq for IdxEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

#[cfg(test)]
impl Eq for IdxEntry {}

#[cfg(test)]
impl Ord for IdxEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// The canonical CR001 pattern: `PartialOrd` delegates to the total
// `Ord` above (see crates/lint, rule CR001).
#[cfg(test)]
impl PartialOrd for IdxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Index-valued binary heap with the [`DelayQueue`] ordering. Test-only:
/// the production searches run on [`DialQueue`]; the heap survives as
/// the pop-order reference the dial queue is property-tested against.
#[cfg(test)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<IdxEntry>,
    seq: u64,
}

#[cfg(test)]
impl HeapQueue {
    pub fn new() -> HeapQueue {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

#[cfg(test)]
impl SearchQueue for HeapQueue {
    fn push(&mut self, key: f64, idx: u32) {
        debug_assert!(key.is_finite(), "non-finite queue key {key}");
        self.seq += 1;
        self.heap.push(IdxEntry {
            key,
            seq: self.seq,
            idx,
        });
    }

    fn pop(&mut self) -> Option<u32> {
        self.heap.pop().map(|e| e.idx)
    }

    fn peek_key(&mut self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[derive(Debug, Clone, Copy)]
struct DialEntry {
    key: f64,
    seq: u64,
    idx: u32,
}

/// Number of calendar buckets kept addressable; keys further out overflow
/// into an unsorted far list that is re-anchored when the ring drains.
const DIAL_SPAN: usize = 1 << 15;

/// Monotone-cost bucket ("dial") queue.
///
/// Keys in the Dijkstra-style searches are non-decreasing over pops, so a
/// calendar of fixed-width buckets replaces the heap: push is O(1)
/// amortized and pop sorts one small bucket instead of maintaining a
/// global heap. The pop order is *identical* to [`HeapQueue`] —
/// ascending `(key, seq)` under `f64::total_cmp`.
///
/// Out-of-band keys are handled without breaking that guarantee. Keys
/// below the bucket currently being drained (wave-style promotions push
/// at small keys after a wave empties the queue) are sorted into the
/// active bucket, or trigger a downward calendar rebase when no bucket
/// is active; keys beyond [`DIAL_SPAN`] buckets land in the far list.
pub(crate) struct DialQueue {
    width: f64,
    inv_width: f64,
    /// Key at the lower edge of `ring[0]`.
    base: f64,
    anchored: bool,
    ring: VecDeque<Vec<DialEntry>>,
    /// Bucket being drained, sorted descending by `(key, seq)` so pops
    /// come off the end in ascending order.
    active: Vec<DialEntry>,
    far: Vec<DialEntry>,
    far_min: f64,
    seq: u64,
    len: usize,
    last_pop: f64,
}

impl DialQueue {
    /// `scale` hints the bucket width: the smallest key increment the
    /// search commonly produces (e.g. the cheapest single-edge wire
    /// delay). Degenerate hints are clamped to keep the calendar sane.
    pub fn new(scale: f64) -> DialQueue {
        let width = if scale.is_finite() && scale > 1e-6 {
            scale
        } else {
            1e-6
        };
        DialQueue {
            width,
            inv_width: 1.0 / width,
            base: 0.0,
            anchored: false,
            ring: VecDeque::new(),
            active: Vec::new(),
            far: Vec::new(),
            far_min: f64::INFINITY,
            seq: 0,
            len: 0,
            last_pop: f64::NEG_INFINITY,
        }
    }

    fn desc(a: &DialEntry, b: &DialEntry) -> Ordering {
        b.key.total_cmp(&a.key).then_with(|| b.seq.cmp(&a.seq))
    }

    fn file_into_ring(&mut self, e: DialEntry) {
        let rel = ((e.key - self.base) * self.inv_width) as usize;
        if rel >= DIAL_SPAN {
            if e.key < self.far_min {
                self.far_min = e.key;
            }
            self.far.push(e);
            return;
        }
        if self.ring.len() <= rel {
            self.ring.resize_with(rel + 1, Vec::new);
        }
        self.ring[rel].push(e);
    }

    fn place(&mut self, e: DialEntry) {
        if !self.anchored {
            self.base = e.key;
            self.anchored = true;
        }
        if e.key < self.base {
            if self.active.is_empty() && self.ring.is_empty() && self.far.is_empty() {
                // Queue momentarily empty: restart the calendar — and the
                // monotonicity epoch — here. Wave-style searches drain the
                // queue completely, then re-seed at small keys.
                self.base = e.key;
                self.last_pop = f64::NEG_INFINITY;
            } else {
                // Below the calendar while entries are in flight: the
                // key must pop before everything queued (and pushes are
                // monotone, so after everything already popped) — it
                // joins the active bucket at its sorted position.
                let pos = self
                    .active
                    .partition_point(|x| Self::desc(x, &e) == Ordering::Less);
                self.active.insert(pos, e);
                return;
            }
        }
        self.file_into_ring(e);
    }

    /// Ensures `active` holds the next bucket to drain. Returns `false`
    /// when the queue is empty.
    fn ensure_active(&mut self) -> bool {
        if !self.active.is_empty() {
            return true;
        }
        loop {
            while matches!(self.ring.front(), Some(b) if b.is_empty()) {
                self.ring.pop_front();
                self.base += self.width;
            }
            if let Some(mut bucket) = self.ring.pop_front() {
                self.base += self.width;
                bucket.sort_by(Self::desc);
                self.active = bucket;
                return true;
            }
            if self.far.is_empty() {
                return false;
            }
            // Ring drained: restart the calendar at the far list's
            // minimum and redistribute.
            self.base = self.far_min;
            self.far_min = f64::INFINITY;
            let pending = std::mem::take(&mut self.far);
            for e in pending {
                self.file_into_ring(e);
            }
        }
    }
}

impl SearchQueue for DialQueue {
    fn push(&mut self, key: f64, idx: u32) {
        debug_assert!(key.is_finite(), "non-finite queue key {key}");
        self.seq += 1;
        self.len += 1;
        let e = DialEntry {
            key,
            seq: self.seq,
            idx,
        };
        self.place(e);
    }

    fn pop(&mut self) -> Option<u32> {
        if !self.ensure_active() {
            return None;
        }
        let e = self.active.pop()?;
        self.len -= 1;
        debug_assert!(
            e.key.total_cmp(&self.last_pop) != Ordering::Less,
            "dial queue popped keys out of order: {} after {}",
            e.key,
            self.last_pop
        );
        self.last_pop = e.key;
        Some(e.idx)
    }

    fn peek_key(&mut self) -> Option<f64> {
        if !self.ensure_active() {
            return None;
        }
        self.active.last().map(|e| e.key)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[derive(Debug, Clone, Copy)]
struct FrontEntry {
    cap: f64,
    delay: f64,
    extra: f64,
    idx: u32,
}

/// One key's Pareto front, split by the `capable` class.
///
/// While `uniform` holds (every entry shares `extra0` — true for fast
/// path, RBP and GALS, whose third dimension is constantly zero per
/// front) each list is a staircase: `cap` strictly ascending, `delay`
/// strictly descending. Dominance against a staircase is a single
/// binary-search probe; eviction is one contiguous drain.
#[derive(Debug, Clone)]
struct KeyFront {
    capable: Vec<FrontEntry>,
    gated: Vec<FrontEntry>,
    extra0: f64,
    uniform: bool,
}

impl KeyFront {
    fn empty() -> KeyFront {
        KeyFront {
            capable: Vec::new(),
            gated: Vec::new(),
            extra0: f64::NAN,
            uniform: true,
        }
    }
}

fn stair_dominated(list: &[FrontEntry], cap: f64, delay: f64, comps: &mut u64) -> bool {
    if list.is_empty() {
        return false;
    }
    *comps += u64::from(list.len().ilog2()) + 1;
    let pos = list.partition_point(|e| e.cap <= cap);
    pos > 0 && list[pos - 1].delay <= delay
}

fn stair_strict(
    list: &[FrontEntry],
    cap: f64,
    delay: f64,
    extra: f64,
    extra0: f64,
    cross_class: bool,
    comps: &mut u64,
) -> bool {
    if list.is_empty() {
        return false;
    }
    *comps += u64::from(list.len().ilog2()) + 1;
    let pos = list.partition_point(|e| e.cap <= cap);
    if pos == 0 {
        return false;
    }
    let e = list[pos - 1];
    if e.delay > delay {
        return false;
    }
    // `e` dominates; the caller established `extra0 <= extra`.
    cross_class || e.cap < cap || e.delay < delay || extra0 < extra
}

fn scan_dominated(list: &[FrontEntry], cap: f64, delay: f64, extra: f64, comps: &mut u64) -> bool {
    for e in list {
        *comps += 1;
        if e.cap > cap {
            return false;
        }
        if e.delay <= delay && e.extra <= extra {
            return true;
        }
    }
    false
}

fn scan_strict(
    list: &[FrontEntry],
    cap: f64,
    delay: f64,
    extra: f64,
    cross_class: bool,
    comps: &mut u64,
) -> bool {
    for e in list {
        *comps += 1;
        if e.cap > cap {
            return false;
        }
        if e.delay <= delay
            && e.extra <= extra
            && (cross_class || e.cap < cap || e.delay < delay || e.extra < extra)
        {
            return true;
        }
    }
    false
}

fn stair_evict(
    list: &mut Vec<FrontEntry>,
    cap: f64,
    delay: f64,
    cands: &mut CandArena,
    evicted: &mut u64,
    comps: &mut u64,
) {
    if list.is_empty() {
        return;
    }
    *comps += u64::from(list.len().ilog2()) + 1;
    let start = list.partition_point(|e| e.cap < cap);
    let mut end = start;
    while end < list.len() && list[end].delay >= delay {
        *comps += 1;
        end += 1;
    }
    for e in list.drain(start..end) {
        cands.kill(e.idx);
        *evicted += 1;
    }
}

fn scan_evict(
    list: &mut Vec<FrontEntry>,
    cap: f64,
    delay: f64,
    extra: f64,
    cands: &mut CandArena,
    evicted: &mut u64,
    comps: &mut u64,
) {
    let mut i = list.partition_point(|e| e.cap < cap);
    while i < list.len() {
        *comps += 1;
        let e = list[i];
        if e.delay >= delay && e.extra >= extra {
            cands.kill(e.idx);
            *evicted += 1;
            list.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Per-key sorted Pareto fronts with binary-search dominance.
///
/// Drop-in replacement for [`PruneTable`] making the *same admit, evict
/// and staleness decisions* on every input stream — pinned by the model
/// property test below — in O(log f) comparisons per probe on the
/// uniform-`extra` fronts the main searches use, instead of O(f).
///
/// The admit check and the insertion are split so the caller can run the
/// (possibly rejecting) dominance probe *before* allocating trail steps
/// and arena slots, keeping `arena_steps` byte-identical to the legacy
/// engine: [`admits`](SortedFronts::admits) first, then on success
/// [`insert`](SortedFronts::insert), which also kills evicted indices in
/// the [`CandArena`].
pub(crate) struct SortedFronts {
    fronts: Vec<KeyFront>,
    stamps: Vec<u64>,
    epoch: u64,
    comparisons: u64,
}

impl SortedFronts {
    pub fn new(keys: usize) -> SortedFronts {
        SortedFronts {
            fronts: vec![KeyFront::empty(); keys],
            stamps: vec![0; keys],
            epoch: 1,
            comparisons: 0,
        }
    }

    /// Total pairwise entry comparisons (binary-search probes counted at
    /// their actual cost) — the counterpart of
    /// [`PruneTable::comparisons`].
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Starts a new wave front: all fronts are (lazily) cleared.
    pub fn advance_wave(&mut self) {
        self.epoch += 1;
    }

    fn refresh(&mut self, key: usize) {
        if self.stamps[key] != self.epoch {
            self.stamps[key] = self.epoch;
            self.fronts[key] = KeyFront::empty();
        }
    }

    /// `true` if no existing entry dominates the candidate — the same
    /// predicate [`PruneTable::try_admit`] gates on, without inserting.
    pub fn admits(&mut self, key: usize, cap: f64, delay: f64, extra: f64, capable: bool) -> bool {
        self.refresh(key);
        let f = &self.fronts[key];
        let mut comps = 0u64;
        let admitted = if f.uniform {
            if !f.extra0.is_nan() && f.extra0 > extra {
                // Every entry is worse on the third dimension; nothing
                // can dominate.
                true
            } else {
                let dominated = stair_dominated(&f.capable, cap, delay, &mut comps)
                    || (!capable && stair_dominated(&f.gated, cap, delay, &mut comps));
                !dominated
            }
        } else {
            let dominated = scan_dominated(&f.capable, cap, delay, extra, &mut comps)
                || (!capable && scan_dominated(&f.gated, cap, delay, extra, &mut comps));
            !dominated
        };
        self.comparisons += comps;
        admitted
    }

    /// Inserts a candidate previously accepted by
    /// [`admits`](SortedFronts::admits): evicts (and kills) every entry
    /// it dominates, then files it at its sorted position. `evicted` is
    /// incremented by the number of entries removed.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        key: usize,
        cap: f64,
        delay: f64,
        extra: f64,
        capable: bool,
        idx: u32,
        cands: &mut CandArena,
        evicted: &mut u64,
    ) {
        self.refresh(key);
        let mut comps = 0u64;
        let f = &mut self.fronts[key];
        if f.uniform {
            if f.extra0.is_nan() || extra <= f.extra0 {
                if capable {
                    stair_evict(&mut f.capable, cap, delay, cands, evicted, &mut comps);
                }
                stair_evict(&mut f.gated, cap, delay, cands, evicted, &mut comps);
            }
        } else {
            if capable {
                scan_evict(&mut f.capable, cap, delay, extra, cands, evicted, &mut comps);
            }
            scan_evict(&mut f.gated, cap, delay, extra, cands, evicted, &mut comps);
        }
        if f.extra0.is_nan() {
            f.extra0 = extra;
        } else if f.extra0 != extra {
            f.uniform = false;
        }
        let entry = FrontEntry {
            cap,
            delay,
            extra,
            idx,
        };
        let list = if capable { &mut f.capable } else { &mut f.gated };
        let pos = list.partition_point(|e| e.cap < cap);
        list.insert(pos, entry);
        self.comparisons += comps;
    }

    /// `true` if some entry strictly dominates the candidate — the same
    /// predicate as [`PruneTable::is_stale`].
    pub fn is_stale(&mut self, key: usize, cap: f64, delay: f64, extra: f64, capable: bool) -> bool {
        self.refresh(key);
        let f = &self.fronts[key];
        let mut comps = 0u64;
        let stale = if f.uniform {
            if !f.extra0.is_nan() && f.extra0 > extra {
                false
            } else if capable {
                stair_strict(&f.capable, cap, delay, extra, f.extra0, false, &mut comps)
            } else {
                stair_strict(&f.capable, cap, delay, extra, f.extra0, true, &mut comps)
                    || stair_strict(&f.gated, cap, delay, extra, f.extra0, false, &mut comps)
            }
        } else if capable {
            scan_strict(&f.capable, cap, delay, extra, false, &mut comps)
        } else {
            scan_strict(&f.capable, cap, delay, extra, true, &mut comps)
                || scan_strict(&f.gated, cap, delay, extra, false, &mut comps)
        };
        self.comparisons += comps;
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(g: &clockroute_grid::GridGraph, x: u32, y: u32) -> NodeId {
        g.node(clockroute_geom::Point::new(x, y))
    }

    #[test]
    fn arena_reconstruct_merges_gate_steps() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(4, 1, Length::from_um(1.0));
        let mut arena = Arena::new();
        let t = arena.push(nid(&g, 3, 0), None, NO_PARENT);
        let v2 = arena.push(nid(&g, 2, 0), None, t);
        let lib = clockroute_elmore::GateLibrary::paper_library();
        let gate = lib.register();
        let v2g = arena.push(nid(&g, 2, 0), Some(gate), v2);
        let v1 = arena.push(nid(&g, 1, 0), None, v2g);
        let s = arena.push(nid(&g, 0, 0), None, v1);
        let (nodes, labels) = arena.reconstruct(s);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], nid(&g, 0, 0));
        assert_eq!(nodes[3], nid(&g, 3, 0));
        assert_eq!(labels, vec![None, None, Some(gate), None]);
        assert_eq!(arena.len(), 5);
    }

    #[test]
    fn delay_queue_orders_by_key_then_fifo() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
        let n = nid(&g, 0, 0);
        let mut q = DelayQueue::new();
        let mk = |d: f64| {
            let mut c = Cand::start(1.0, d, NO_PARENT, n);
            c.gate_here = false;
            c
        };
        q.push(5.0, mk(5.0));
        q.push(1.0, mk(1.0));
        q.push(3.0, mk(3.0));
        q.push(1.0, mk(100.0)); // same key, later seq
        assert_eq!(q.peek_key(), Some(1.0));
        assert_eq!(q.pop().unwrap().delay, 1.0);
        assert_eq!(q.pop().unwrap().delay, 100.0);
        assert_eq!(q.pop().unwrap().delay, 3.0);
        assert_eq!(q.pop().unwrap().delay, 5.0);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn arena_touched_covers_all_steps() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(8, 8, Length::from_um(1.0));
        let mut arena = Arena::new();
        assert!(arena.touched(&g).is_none());
        let a = arena.push(nid(&g, 2, 3), None, NO_PARENT);
        arena.push(nid(&g, 6, 1), None, a);
        let r = arena.touched(&g).unwrap();
        assert_eq!((r.min_x, r.min_y, r.max_x, r.max_y), (2, 1, 6, 3));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite queue key")]
    fn nan_key_is_rejected_in_debug_builds() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
        let mut q = DelayQueue::new();
        q.push(f64::NAN, Cand::start(1.0, 0.0, NO_PARENT, nid(&g, 0, 0)));
    }

    #[test]
    fn queue_total_order_survives_non_finite_keys() {
        // Release builds skip the finite-key assert; the heap must still
        // drain in a sane order rather than corrupting silently.
        let mut heap = BinaryHeap::new();
        let g = {
            use clockroute_geom::units::Length;
            clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0))
        };
        let cand = Cand::start(1.0, 0.0, NO_PARENT, nid(&g, 0, 0));
        for (seq, key) in [(1, f64::NAN), (2, 1.0), (3, f64::INFINITY), (4, 0.5)] {
            heap.push(QueueEntry { key, seq, cand });
        }
        let keys: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|e| e.key)).collect();
        assert_eq!(keys[0], 0.5);
        assert_eq!(keys[1], 1.0);
        assert_eq!(keys[2], f64::INFINITY);
        assert!(keys[3].is_nan());
    }

    #[test]
    fn prune_basic_dominance() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // Dominated: both coords worse.
        assert!(!t.try_admit(0, 11.0, 11.0, 0.0, true, &mut ev));
        // Equal: dominated (non-strict) — duplicate suppressed.
        assert!(!t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // Incomparable: admitted.
        assert!(t.try_admit(0, 5.0, 20.0, 0.0, true, &mut ev));
        // Dominates both: admitted, evicts both.
        assert!(t.try_admit(0, 5.0, 5.0, 0.0, true, &mut ev));
        assert_eq!(ev, 2);
        assert!(!t.try_admit(0, 6.0, 6.0, 0.0, true, &mut ev));
    }

    #[test]
    fn gate_bearing_cannot_prune_capable_at_equal_coords() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        // Gate-bearing entry first.
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, false, &mut ev));
        // Capable candidate at the same coordinates must be admitted…
        assert!(t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev));
        // …and it evicts the gate-bearing one.
        assert_eq!(ev, 1);
        // A gate-bearing one at equal coords is now dominated.
        assert!(!t.try_admit(0, 10.0, 10.0, 0.0, false, &mut ev));
    }

    #[test]
    fn third_dimension_respected() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        assert!(t.try_admit(0, 10.0, 10.0, 5.0, true, &mut ev));
        // Worse cap/delay but less borrowing: incomparable, admitted.
        assert!(t.try_admit(0, 12.0, 12.0, 0.0, true, &mut ev));
        // Dominated in all three: rejected.
        assert!(!t.try_admit(0, 12.0, 12.0, 6.0, true, &mut ev));
    }

    #[test]
    fn wave_advance_clears_fronts() {
        let mut t = PruneTable::new(2);
        let mut ev = 0;
        assert!(t.try_admit(0, 1.0, 1.0, 0.0, true, &mut ev));
        assert!(!t.try_admit(0, 2.0, 2.0, 0.0, true, &mut ev));
        t.advance_wave();
        // Previous wave's entries no longer prune.
        assert!(t.try_admit(0, 2.0, 2.0, 0.0, true, &mut ev));
    }

    #[test]
    fn staleness_is_strict() {
        let mut t = PruneTable::new(1);
        let mut ev = 0;
        t.try_admit(0, 10.0, 10.0, 0.0, true, &mut ev);
        // The entry itself is not stale.
        assert!(!t.is_stale(0, 10.0, 10.0, 0.0, true));
        t.try_admit(0, 9.0, 9.0, 0.0, true, &mut ev);
        assert!(t.is_stale(0, 10.0, 10.0, 0.0, true));
    }

    // ---------------- arena substrate ----------------

    #[test]
    fn cand_arena_roundtrips_all_fields() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 2, Length::from_um(1.0));
        let mut cands = CandArena::new();
        let mut c = Cand::start(3.5, 7.25, 42, nid(&g, 1, 1));
        c.gate_here = false;
        c.fifo_inserted = true;
        c.latency = 9.0;
        c.sink_stage = 11.0;
        c.borrowed = 0.5;
        c.finalized = true;
        let idx = cands.alloc(&c);
        let back = cands.get(idx);
        assert_eq!(back.cap, 3.5);
        assert_eq!(back.delay, 7.25);
        assert_eq!(back.trail, 42);
        assert_eq!(back.node, nid(&g, 1, 1));
        assert!(!back.gate_here);
        assert!(back.fifo_inserted);
        assert_eq!(back.latency, 9.0);
        assert_eq!(back.sink_stage, 11.0);
        assert_eq!(back.borrowed, 0.5);
        assert!(back.finalized);
        assert!(!cands.is_dead(idx));
        cands.kill(idx);
        assert!(cands.is_dead(idx));
    }

    #[test]
    fn dial_queue_orders_like_heap_with_ties_far_overflow_and_promotions() {
        let mut dial = DialQueue::new(1.0);
        let mut heap = HeapQueue::new();
        // 40000.0 is beyond DIAL_SPAN buckets from the anchor: exercises
        // the far list and its re-anchoring.
        let keys = [5.0, 1.0, 3.0, 1.0, 40000.0, 2.5, 2.5];
        for (i, &k) in keys.iter().enumerate() {
            dial.push(k, i as u32);
            heap.push(k, i as u32);
        }
        assert_eq!(dial.peek_key(), Some(1.0));
        for _ in 0..2 {
            assert_eq!(dial.pop(), heap.pop());
        }
        // Push at the last popped key (a wave-style promotion below the
        // calendar base): must pop next, after nothing, like the heap.
        dial.push(1.0, 99);
        heap.push(1.0, 99);
        while let Some(i) = heap.pop() {
            assert_eq!(dial.pop(), Some(i));
        }
        assert_eq!(dial.pop(), None);
        assert_eq!(dial.len(), 0);
    }

    #[test]
    fn sorted_fronts_match_prune_table_on_a_fixed_script() {
        use clockroute_geom::units::Length;
        let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
        let n = nid(&g, 0, 0);
        let mut legacy = PruneTable::new(2);
        let mut fronts = SortedFronts::new(2);
        let mut cands = CandArena::new();
        let script: &[(usize, f64, f64, f64, bool)] = &[
            (0, 10.0, 10.0, 0.0, true),
            (0, 11.0, 9.0, 0.0, true),
            (0, 9.0, 11.0, 0.0, false),
            (0, 10.0, 10.0, 0.0, false),
            (0, 8.0, 8.0, 0.0, true),
            (1, 5.0, 5.0, 1.0, true),
            (1, 5.0, 5.0, 0.0, true),
            (1, 6.0, 6.0, 2.0, true),
        ];
        let (mut ev_a, mut ev_b) = (0u64, 0u64);
        for &(key, cap, delay, extra, capable) in script {
            let admitted = legacy.try_admit(key, cap, delay, extra, capable, &mut ev_a);
            assert_eq!(fronts.admits(key, cap, delay, extra, capable), admitted);
            if admitted {
                let idx = cands.alloc(&Cand::start(cap, delay, NO_PARENT, n));
                fronts.insert(key, cap, delay, extra, capable, idx, &mut cands, &mut ev_b);
            }
            assert_eq!(ev_a, ev_b);
            assert_eq!(
                legacy.is_stale(key, cap, delay, extra, capable),
                fronts.is_stale(key, cap, delay, extra, capable)
            );
        }
    }

    #[test]
    fn sorted_fronts_use_fewer_comparisons_on_long_uniform_fronts() {
        // The ISSUE's named inefficiency: the legacy table walks the whole
        // per-key list per probe. The sorted front must make the same
        // decisions in logarithmically many comparisons.
        let mut legacy = PruneTable::new(1);
        let mut fronts = SortedFronts::new(1);
        let mut cands = CandArena::new();
        let g = {
            use clockroute_geom::units::Length;
            clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0))
        };
        let n = nid(&g, 0, 0);
        let m = 256;
        for i in 0..m {
            // An antichain: cap ascending, delay descending.
            let (cap, delay) = (i as f64, (2 * m - i) as f64);
            let (mut ea, mut eb) = (0, 0);
            let a = legacy.try_admit(0, cap, delay, 0.0, true, &mut ea);
            let b = fronts.admits(0, cap, delay, 0.0, true);
            assert!(a && b);
            let idx = cands.alloc(&Cand::start(cap, delay, NO_PARENT, n));
            fronts.insert(0, cap, delay, 0.0, true, idx, &mut cands, &mut eb);
            assert_eq!(ea, eb);
        }
        // Probe staleness across the whole front.
        for i in 0..m {
            let (cap, delay) = (i as f64, (2 * m - i) as f64);
            assert_eq!(
                legacy.is_stale(0, cap, delay, 0.0, true),
                fronts.is_stale(0, cap, delay, 0.0, true)
            );
        }
        assert!(
            fronts.comparisons() * 8 < legacy.comparisons(),
            "sorted: {} vs legacy: {}",
            fronts.comparisons(),
            legacy.comparisons()
        );
    }

    mod substrate_properties {
        use super::*;
        use proptest::prelude::*;

        /// A compressed op stream over a tiny coordinate domain so that
        /// dominance, ties and evictions all occur frequently.
        fn front_ops() -> impl Strategy<Value = Vec<(u8, u8, u8, u8, u8)>> {
            proptest::collection::vec(
                (0u8..4, 0u8..6, 0u8..6, 0u8..3, 0u8..8),
                1..120,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

            #[test]
            fn sorted_fronts_equal_prune_table_on_random_streams(ops in front_ops()) {
                use clockroute_geom::units::Length;
                let g = clockroute_grid::GridGraph::open(2, 1, Length::from_um(1.0));
                let n = nid(&g, 0, 0);
                let mut legacy = PruneTable::new(4);
                let mut fronts = SortedFronts::new(4);
                let mut cands = CandArena::new();
                let (mut ev_a, mut ev_b) = (0u64, 0u64);
                for (key, cap, delay, extra, action) in ops {
                    let key = key as usize;
                    let (cap, delay) = (cap as f64, delay as f64);
                    // Mostly-zero third dimension: exercises both the
                    // uniform staircase fast path and the 3-D fallback.
                    let extra = if extra == 2 { 1.0 } else { 0.0 };
                    let capable = action % 2 == 0;
                    match action {
                        7 => {
                            legacy.advance_wave();
                            fronts.advance_wave();
                        }
                        5 | 6 => {
                            prop_assert_eq!(
                                legacy.is_stale(key, cap, delay, extra, capable),
                                fronts.is_stale(key, cap, delay, extra, capable)
                            );
                        }
                        _ => {
                            let admitted =
                                legacy.try_admit(key, cap, delay, extra, capable, &mut ev_a);
                            prop_assert_eq!(
                                fronts.admits(key, cap, delay, extra, capable),
                                admitted
                            );
                            if admitted {
                                let idx = cands.alloc(&Cand::start(cap, delay, NO_PARENT, n));
                                fronts.insert(
                                    key, cap, delay, extra, capable, idx, &mut cands, &mut ev_b,
                                );
                            }
                            prop_assert_eq!(ev_a, ev_b);
                        }
                    }
                }
            }
        }

        /// Interleaved push/pop streams; pushes stay at or above the last
        /// popped key (the monotonicity the searches guarantee), with
        /// frequent exact ties and occasional huge keys to force the far
        /// list.
        fn queue_ops() -> impl Strategy<Value = Vec<(u16, u8)>> {
            proptest::collection::vec((0u16..2048, 0u8..8), 1..200)
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

            #[test]
            fn dial_queue_pops_in_exact_heap_order(ops in queue_ops(), scale in 1u8..200) {
                let mut dial = DialQueue::new(f64::from(scale) * 0.25);
                let mut heap = HeapQueue::new();
                let mut keys_by_idx: Vec<f64> = Vec::new();
                let mut floor = 0.0f64;
                for (raw, action) in ops {
                    if action < 5 {
                        // Push at or above the pop floor; `raw == 0`
                        // reproduces exact key ties, large raws overflow
                        // the calendar span at small widths.
                        let key = floor + f64::from(raw) * 0.5;
                        let idx = keys_by_idx.len() as u32;
                        keys_by_idx.push(key);
                        dial.push(key, idx);
                        heap.push(key, idx);
                    } else {
                        prop_assert_eq!(dial.peek_key(), heap.peek_key());
                        let (a, b) = (dial.pop(), heap.pop());
                        prop_assert_eq!(a, b);
                        if let Some(i) = a {
                            floor = keys_by_idx[i as usize];
                        }
                    }
                }
                // Full drain must agree entry for entry.
                loop {
                    prop_assert_eq!(dial.peek_key(), heap.peek_key());
                    let (a, b) = (dial.pop(), heap.pop());
                    prop_assert_eq!(a.is_none(), b.is_none());
                    prop_assert_eq!(a, b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
