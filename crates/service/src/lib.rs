//! `clockroute-service` — a long-running routing service around the
//! deterministic planner.
//!
//! The `crserve` binary answers line-oriented JSON requests (stdio or
//! TCP): each `route` request carries a `.cr` scenario, and the
//! response embeds exactly the per-net report a cold `crplan --quiet`
//! run would print. Three request paths produce that report:
//!
//! * **hit** — the scenario's canonical hash ([`keys`]) matches a
//!   cached solve byte-for-byte; no planning happens.
//! * **warm** — same die/grid/tech/nets as a cached solve but a small
//!   blockage delta; only nets whose search footprints intersect the
//!   delta are re-routed ([`clockroute_plan::Planner::plan_warm`]).
//! * **cold** — a full solve under the service's admission budget.
//!
//! All three are byte-identical by construction and by test. Admission
//! control ([`admission`]) bounds concurrent solves and scenario size,
//! answering `busy` instead of queueing unboundedly; a panicking solve
//! (fault injection included) costs one request, never the process.
//!
//! See DESIGN.md §12 for the protocol grammar, the canonical-hash
//! contract, and the warm-start soundness argument.

pub mod admission;
pub mod cache;
pub mod keys;
pub mod protocol;
pub mod server;

pub use admission::{Admission, Rejection};
pub use cache::{ResultCache, Solved};
pub use keys::{base_key, block_delta, scenario_key};
pub use server::{Service, ServiceConfig};
