//! Closed-form buffered-line theory.
//!
//! For a uniform line of per-length resistance `r` and capacitance `c`,
//! periodically broken by identical repeaters with driver resistance `R`,
//! input capacitance `C` and intrinsic delay `K`, the Elmore delay of one
//! repeater-to-repeater segment of length `L` is
//!
//! ```text
//! d(L) = K + R·(c·L + C) + r·L·(c·L/2 + C)
//! ```
//!
//! Minimising `d(L)/L` gives the classic optimal segment length
//! `L* = √(2(K + R·C)/(r·c))` and per-unit delay
//! `d* = R·c + r·C + √(2(K + R·C)·r·c)`.
//!
//! These closed forms serve two purposes in the workspace:
//!
//! 1. they document how the default [`Technology`] was calibrated against
//!    the paper's anchors (`DESIGN.md` §3), and
//! 2. they give the tests an independent oracle for what the fast path /
//!    RBP searches should achieve on obstacle-free dies.

use crate::{Gate, Technology};
use clockroute_geom::units::{Length, Time};

/// Elmore delay of a single driver→load segment: gate `driver` drives a
/// wire of length `len` terminated by the input capacitance (and setup
/// time, if sequential) of `load`.
///
/// This is the exact delay of one stage with no intermediate buffers.
pub fn segment_delay(tech: &Technology, driver: &Gate, len: Length, load: &Gate) -> Time {
    let c_wire = tech.unit_cap() * len;
    let c_load = load.input_cap();
    driver.delay(c_wire + c_load) + tech.wire_delay(len, c_load) + load.setup()
}

/// The segment length `L*` that minimises per-unit repeater-line delay.
pub fn optimal_segment_length(tech: &Technology, repeater: &Gate) -> Length {
    let k = repeater.intrinsic().ps();
    let rc_gate = (repeater.driver_res() * repeater.input_cap()).ps();
    // r·c in ps per µm² (Ω/µm × fF/µm × 1e-3).
    let rc_wire = tech.unit_res().ohms_per_um() * tech.unit_cap().ff_per_um() * 1.0e-3;
    Length::from_um((2.0 * (k + rc_gate) / rc_wire).sqrt())
}

/// The minimum achievable per-unit delay (ps/µm) of an optimally
/// repeater-ed line.
pub fn optimal_unit_delay(tech: &Technology, repeater: &Gate) -> f64 {
    let k = repeater.intrinsic().ps();
    let rc_gate = (repeater.driver_res() * repeater.input_cap()).ps();
    let r = tech.unit_res().ohms_per_um();
    let c = tech.unit_cap().ff_per_um() * 1.0e-3; // fF/µm → pF/µm so Ω·(pF)=ps
    let rb_c = repeater.driver_res().ohms() * c;
    let r_cb = r * repeater.input_cap().ff() * 1.0e-3;
    rb_c + r_cb + (2.0 * (k + rc_gate) * r * c).sqrt()
}

/// Estimated minimum source→sink delay over distance `dist` for an
/// optimally buffered line (ignores end effects, so it is a slight
/// *under*-estimate for short lines and asymptotically exact).
pub fn min_buffered_delay(tech: &Technology, repeater: &Gate, dist: Length) -> Time {
    Time::from_ps(optimal_unit_delay(tech, repeater) * dist.um())
}

/// The largest register-to-register span `L` (in µm) such that a stage
/// `register → wire(L) → register` meets clock period `t_phi`, with no
/// intermediate buffers. Returns `None` if even `L → 0` fails
/// (i.e. `t_phi < K + R·C + Setup`).
///
/// Solves the quadratic
/// `(r·c/2)·L² + (R·c + r·C)·L + (K + R·C + Setup − T) ≤ 0`.
pub fn max_unbuffered_span(tech: &Technology, register: &Gate, t_phi: Time) -> Option<Length> {
    let r = tech.unit_res().ohms_per_um();
    let c = tech.unit_cap().ff_per_um() * 1.0e-3; // → ps units
    let rr = register.driver_res().ohms();
    let cc = register.input_cap().ff() * 1.0e-3;
    let k = register.intrinsic().ps();
    let setup = register.setup().ps();

    let a = r * c / 2.0;
    let b = rr * c + r * cc;
    let const_term = k + (register.driver_res() * register.input_cap()).ps() + setup - t_phi.ps();
    if const_term > 0.0 {
        return None;
    }
    // Positive root of a·L² + b·L + const = 0.
    let disc = b * b - 4.0 * a * const_term;
    let l = (-b + disc.sqrt()) / (2.0 * a);
    Some(Length::from_um(l))
}

/// The smallest clock period at which registers spaced every `pitch` can
/// sustain the signal (one grid edge between registers):
/// `segment_delay(pitch) ` including setup.
pub fn min_feasible_period(tech: &Technology, register: &Gate, pitch: Length) -> Time {
    segment_delay(tech, register, pitch, register)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateLibrary;

    fn setup() -> (Technology, Gate, Gate) {
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let buf = *lib.gate(lib.buffers().next().unwrap());
        let reg = *lib.gate(lib.register());
        (tech, buf, reg)
    }

    #[test]
    fn optimal_separation_matches_table1_anchor() {
        // Table I (T_φ = ∞): max repeater separation 19 grid points at
        // 0.125 mm pitch ⇒ L* ≈ 2.4 mm.
        let (tech, buf, _) = setup();
        let l = optimal_segment_length(&tech, &buf);
        assert!(
            (l.mm() - 2.37).abs() < 0.1,
            "optimal separation {} mm, expected ≈ 2.37 mm",
            l.mm()
        );
    }

    #[test]
    fn min_buffered_delay_matches_fastpath_anchor() {
        // Paper: minimum buffered 40 mm path delay 2739 ps.
        let (tech, buf, _) = setup();
        let d = min_buffered_delay(&tech, &buf, Length::from_mm(40.0));
        assert!(
            (d.ps() - 2739.0).abs() < 30.0,
            "40 mm optimal delay {} ps, expected ≈ 2739 ps",
            d.ps()
        );
    }

    #[test]
    fn buffer_count_anchor() {
        // ~16 buffers on the 40 mm path (Table I, T = ∞ row).
        let (tech, buf, _) = setup();
        let l = optimal_segment_length(&tech, &buf);
        let n = (40_000.0 / l.um()).floor() as u32;
        assert!((15..=17).contains(&n), "expected ≈16 buffers, got {n}");
    }

    #[test]
    fn segment_delay_monotone_in_length() {
        let (tech, _, reg) = setup();
        let mut prev = Time::ZERO;
        for i in 1..20 {
            let d = segment_delay(&tech, &reg, Length::from_um(200.0 * f64::from(i)), &reg);
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn min_period_anchors_match_table2_crossovers() {
        let (tech, _, reg) = setup();
        // 0.125 mm pitch: min period rounds to 47–49 ps ⇒ T = 49 feasible.
        let p125 = min_feasible_period(&tech, &reg, Length::from_um(125.0));
        assert!(p125.ps() <= 49.0, "0.125 mm min period {p125}");
        // 0.25 mm pitch: feasible at 53 ps but not 49 ps (Table II).
        let p250 = min_feasible_period(&tech, &reg, Length::from_um(250.0));
        assert!(p250.ps() <= 53.0 && p250.ps() > 49.0, "0.25 mm min period {p250}");
        // 0.5 mm pitch: infeasible at 53 ps (Table II shows no solution).
        let p500 = min_feasible_period(&tech, &reg, Length::from_um(500.0));
        assert!(p500.ps() > 53.0, "0.5 mm min period {p500}");
    }

    #[test]
    fn max_unbuffered_span_inverts_min_period() {
        let (tech, _, reg) = setup();
        for t in [60.0, 84.0, 120.0, 300.0] {
            let t = Time::from_ps(t);
            let span = max_unbuffered_span(&tech, &reg, t).unwrap();
            // The span meets the period…
            let d = segment_delay(&tech, &reg, span, &reg);
            assert!(d.ps() <= t.ps() + 1e-6, "span {span} gives {d} > {t}");
            // …and 1% more does not.
            let d_over = segment_delay(&tech, &reg, span * 1.01, &reg);
            assert!(d_over > t);
        }
    }

    #[test]
    fn max_unbuffered_span_none_below_intrinsic_floor() {
        let (tech, _, reg) = setup();
        // K + R·C + setup ≈ 36.4 + 4.2 + 2 = 42.6 ps is the absolute floor.
        assert!(max_unbuffered_span(&tech, &reg, Time::from_ps(40.0)).is_none());
        assert!(max_unbuffered_span(&tech, &reg, Time::from_ps(43.0)).is_some());
    }

    #[test]
    fn table1_register_separation_anchors() {
        // Table I: at T = 84 ps registers sit 8 edges (1 mm) apart; at
        // T = 67 ps, 5 edges; at T = 62, 4; at T = 53, 2; at T = 49, 1.
        let (tech, _, reg) = setup();
        // The paper's raw parameters are unpublished, so we accept a ±1
        // grid-edge calibration slack; the monotone staircase itself is
        // exact.
        for &(t, edges) in &[(84.0, 8i64), (67.0, 5), (62.0, 4), (53.0, 2), (49.0, 1)] {
            let span = max_unbuffered_span(&tech, &reg, Time::from_ps(t)).unwrap();
            let feasible_edges = (span.um() / 125.0).floor() as i64;
            assert!(
                (feasible_edges - edges).abs() <= 1,
                "period {t}: span {:.1} µm ⇒ {feasible_edges} edges, paper says {edges}",
                span.um()
            );
        }
    }
}
