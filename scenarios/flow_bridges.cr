# Congested bridges: a wiring wall splits the die, crossable only at
# three gaps (y = 1, 4, 7). All three nets sit nearest the middle gap,
# so order-driven planning funnels every net through it and overflows
# the capacity-1 crossing edges; `--flow` prices the middle bridge up
# until the outer nets detour to the side gaps:
#
#   crplan scenarios/flow_bridges.cr --flow
die 9mm 9mm
grid 9 9
tech paper
reserve off

# The wall: a two-column hard band (so the crossing edges between its
# columns are removed) with gaps at rows 1, 4 and 7.
block hard 4 0 5 0
block hard 4 2 5 3
block hard 4 5 5 6
block hard 4 8 5 8

# Every edge in the three-column band around the wall carries one net.
capacity rect 3 0 5 8 1

net comb name=north src=0,5 dst=8,5
net comb name=mid   src=0,4 dst=8,4
net comb name=south src=0,3 dst=8,3
