//! Shared, pre-resolved search context.
//!
//! Validates terminals and pre-extracts the raw `f64` electrical
//! parameters the inner loops need (unit-wrapped arithmetic is used at API
//! boundaries; the hot loops run on plain numbers in fF/ps/Ω).

use crate::RouteError;
use clockroute_elmore::{GateId, GateLibrary, Technology};
use clockroute_geom::Point;
use clockroute_grid::{GridGraph, NodeId};

/// A pre-resolved buffer model for the inner loops.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BufModel {
    pub id: GateId,
    pub res: f64,
    pub cap: f64,
    pub k: f64,
}

/// Pre-resolved search context shared by all algorithms.
pub(crate) struct Ctx<'a> {
    pub graph: &'a GridGraph,
    pub lib: &'a GateLibrary,
    pub s: NodeId,
    pub t: NodeId,
    pub gs: GateId,
    pub gt: GateId,
    /// Per-edge wire resistance (Ω): `[horizontal, vertical]`.
    pub re: [f64; 2],
    /// Per-edge wire capacitance (fF): `[horizontal, vertical]`.
    pub ce: [f64; 2],
    /// Register model raw values.
    pub reg_id: GateId,
    pub reg_res: f64,
    pub reg_cap: f64,
    pub reg_k: f64,
    pub reg_setup: f64,
    /// Source gate raw values.
    pub gs_res: f64,
    pub gs_k: f64,
    /// `min R(B ∪ {r})` for the admissible wire bound.
    pub min_res: f64,
    /// Buffer library, pre-resolved.
    pub buffers: Vec<BufModel>,
}

impl<'a> Ctx<'a> {
    pub fn new(
        graph: &'a GridGraph,
        tech: &'a Technology,
        lib: &'a GateLibrary,
        source: Option<Point>,
        sink: Option<Point>,
        source_gate: GateId,
        sink_gate: GateId,
    ) -> Result<Ctx<'a>, RouteError> {
        let source = source.ok_or(RouteError::UnspecifiedSource)?;
        let sink = sink.ok_or(RouteError::UnspecifiedSink)?;
        if !graph.contains(source) {
            return Err(RouteError::SourceOffGrid(source));
        }
        if !graph.contains(sink) {
            return Err(RouteError::SinkOffGrid(sink));
        }
        if source == sink {
            return Err(RouteError::SameSourceSink(source));
        }
        let reg = lib.gate(lib.register());
        let gs_gate = lib.gate(source_gate);
        let buffers = lib
            .buffers()
            .map(|id| {
                let g = lib.gate(id);
                BufModel {
                    id,
                    res: g.driver_res().ohms(),
                    cap: g.input_cap().ff(),
                    k: g.intrinsic().ps(),
                }
            })
            .collect();
        Ok(Ctx {
            graph,
            lib,
            s: graph.node(source),
            t: graph.node(sink),
            gs: source_gate,
            gt: sink_gate,
            re: [
                (tech.unit_res() * graph.pitch_x()).ohms(),
                (tech.unit_res() * graph.pitch_y()).ohms(),
            ],
            ce: [
                (tech.unit_cap() * graph.pitch_x()).ff(),
                (tech.unit_cap() * graph.pitch_y()).ff(),
            ],
            reg_id: lib.register(),
            reg_res: reg.driver_res().ohms(),
            reg_cap: reg.input_cap().ff(),
            reg_k: reg.intrinsic().ps(),
            reg_setup: reg.setup().ps(),
            gs_res: gs_gate.driver_res().ohms(),
            gs_k: gs_gate.intrinsic().ps(),
            min_res: lib.min_driver_res().ohms(),
            buffers,
        })
    }

    /// Raw `(R, C)` of the edge between adjacent nodes `u` and `v`, with
    /// the Ω·fF → ps factor already folded into `R`.
    #[inline]
    pub fn edge(&self, u: NodeId, v: NodeId) -> (f64, f64) {
        let axis = usize::from(self.graph.point(u).y != self.graph.point(v).y);
        (self.re[axis] * 1.0e-3, self.ce[axis])
    }

    /// Source-gate completion delay for a candidate `(c, d)` at `s`:
    /// `d + R(g_s)·c + K(g_s)` (ps).
    #[inline]
    pub fn finish_at_source(&self, cap: f64, delay: f64) -> f64 {
        delay + self.gs_res * cap * 1.0e-3 + self.gs_k
    }

    /// Register insertion delay for a candidate `(c, d)`:
    /// `d + R(r)·c + K(r)` (ps).
    #[inline]
    pub fn register_stage(&self, cap: f64, delay: f64) -> f64 {
        delay + self.reg_res * cap * 1.0e-3 + self.reg_k
    }

    /// Smallest input capacitance any gate the searches place can
    /// present: the floor for downstream loads.
    pub fn min_gate_cap(&self) -> f64 {
        let mut best = self
            .reg_cap
            .min(self.lib.gate(self.gt).input_cap().ff());
        for b in &self.buffers {
            best = best.min(b.cap);
        }
        best
    }

    /// Bucket-width hint for the dial queue: the cheapest single-edge
    /// key increment a wire expansion can produce,
    /// `min_a R_e[a]·(C_min + C_e[a]/2)·1e-3` (ps). Keys grow by at
    /// least roughly this per push, so buckets of this width stay small.
    pub fn queue_scale(&self) -> f64 {
        let c_min = self.min_gate_cap();
        let mut best = f64::INFINITY;
        for a in 0..2 {
            let step = self.re[a] * 1.0e-3 * (c_min + self.ce[a] / 2.0);
            best = best.min(step);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;

    fn setup() -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(5, 5, Length::from_um(125.0)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    #[test]
    fn validates_terminals() {
        let (g, tech, lib) = setup();
        let reg = lib.register();
        let mk = |s: Option<Point>, t: Option<Point>| {
            Ctx::new(&g, &tech, &lib, s, t, reg, reg).map(|_| ())
        };
        assert_eq!(mk(None, Some(Point::new(1, 1))), Err(RouteError::UnspecifiedSource));
        assert_eq!(mk(Some(Point::new(1, 1)), None), Err(RouteError::UnspecifiedSink));
        assert_eq!(
            mk(Some(Point::new(9, 0)), Some(Point::new(1, 1))),
            Err(RouteError::SourceOffGrid(Point::new(9, 0)))
        );
        assert_eq!(
            mk(Some(Point::new(1, 1)), Some(Point::new(0, 9))),
            Err(RouteError::SinkOffGrid(Point::new(0, 9)))
        );
        assert_eq!(
            mk(Some(Point::new(1, 1)), Some(Point::new(1, 1))),
            Err(RouteError::SameSourceSink(Point::new(1, 1)))
        );
        assert!(mk(Some(Point::new(0, 0)), Some(Point::new(4, 4))).is_ok());
    }

    #[test]
    fn edge_parameters() {
        let (g, tech, lib) = setup();
        let reg = lib.register();
        let ctx = Ctx::new(
            &g,
            &tech,
            &lib,
            Some(Point::new(0, 0)),
            Some(Point::new(4, 4)),
            reg,
            reg,
        )
        .unwrap();
        let u = g.node(Point::new(1, 1));
        let east = g.node(Point::new(2, 1));
        let (r, c) = ctx.edge(u, east);
        // 125 µm at 1.39 Ω/µm = 173.75 Ω (ps-scaled: 0.17375) and 1.25 fF.
        assert!((r - 0.17375).abs() < 1e-12);
        assert!((c - 1.25).abs() < 1e-12);
    }

    #[test]
    fn helper_delays() {
        let (g, tech, lib) = setup();
        let reg = lib.register();
        let ctx = Ctx::new(
            &g,
            &tech,
            &lib,
            Some(Point::new(0, 0)),
            Some(Point::new(4, 4)),
            reg,
            reg,
        )
        .unwrap();
        // finish: d + 180·c·1e-3 + 36.4
        let f = ctx.finish_at_source(100.0, 10.0);
        assert!((f - (10.0 + 18.0 + 36.4)).abs() < 1e-9);
        let r = ctx.register_stage(100.0, 10.0);
        assert!((r - (10.0 + 18.0 + 36.4)).abs() < 1e-9);
        assert_eq!(ctx.buffers.len(), 1);
        assert!((ctx.min_res - 180.0).abs() < 1e-12);
    }
}
