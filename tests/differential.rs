//! Differential fuzz suite: production searches vs the exhaustive oracles.
//!
//! Generates 200+ tiny random scenarios (grids up to 4×4 with random node
//! and edge blockages, random pitch, random wire technology, random clock
//! periods) from fixed seeds, then checks that the fast-path, RBP and
//! GALS searches agree *exactly* with the brute-force oracles in
//! `clockroute::core::reference` — same feasibility verdict, same optimal
//! value. Seeds are deterministic (`BASE_SEED + index`), so a failure
//! reproduces by running the suite again; the panic message carries the
//! full scenario dump needed to rebuild the failing instance by hand.

use clockroute::core::{reference, LatchSpec};
use clockroute::geom::units::{CapPerLength, ResPerLength};
use clockroute::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First seed of the suite; instance `i` uses `BASE_SEED + i`.
const BASE_SEED: u64 = 0xC10C_0D1F;

/// Number of random scenarios (the issue floor is 200).
const INSTANCES: u64 = 200;

/// Everything needed to rebuild one fuzz instance by hand.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    width: u32,
    height: u32,
    pitch_um: f64,
    res_ohms_per_um: f64,
    cap_ff_per_um: f64,
    period_ps: f64,
    sink_period_ps: f64,
    source: (u32, u32),
    sink: (u32, u32),
    blocked_nodes: Vec<(u32, u32)>,
    blocked_edges: Vec<((u32, u32), (u32, u32))>,
}

impl Scenario {
    fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let width = rng.gen_range(2u32..=4);
        let height = rng.gen_range(2u32..=4);
        let pitch_um = rng.gen_range(300.0f64..2000.0);
        // Sweep the technology around the paper's 0.07 µm point so the
        // oracles are exercised on more than one calibration.
        let res_ohms_per_um = rng.gen_range(0.5f64..3.0);
        let cap_ff_per_um = rng.gen_range(0.005f64..0.03);
        let period_ps = rng.gen_range(60.0f64..800.0);
        let sink_period_ps = rng.gen_range(60.0f64..800.0);

        let pick = |rng: &mut StdRng| (rng.gen_range(0..width), rng.gen_range(0..height));
        let source = pick(&mut rng);
        let sink = loop {
            let p = pick(&mut rng);
            if p != source {
                break p;
            }
        };

        let mut blocked_nodes = Vec::new();
        for _ in 0..rng.gen_range(0usize..=(width * height / 4) as usize) {
            let p = pick(&mut rng);
            if p != source && p != sink {
                blocked_nodes.push(p);
            }
        }
        // Random wiring blockages; these may disconnect the terminals, in
        // which case solver and oracle must both report infeasibility.
        let mut blocked_edges = Vec::new();
        for _ in 0..rng.gen_range(0usize..=(width * height / 4) as usize) {
            let (x, y) = pick(&mut rng);
            let to = if rng.gen_range(0u32..2) == 0 && x + 1 < width {
                (x + 1, y)
            } else if y + 1 < height {
                (x, y + 1)
            } else if x + 1 < width {
                (x + 1, y)
            } else {
                continue;
            };
            blocked_edges.push(((x, y), to));
        }

        Scenario {
            seed,
            width,
            height,
            pitch_um,
            res_ohms_per_um,
            cap_ff_per_um,
            period_ps,
            sink_period_ps,
            source,
            sink,
            blocked_nodes,
            blocked_edges,
        }
    }

    fn graph(&self) -> GridGraph {
        let mut blk = BlockageMap::new(self.width, self.height);
        for &(x, y) in &self.blocked_nodes {
            blk.block_node(Point::new(x, y));
        }
        for &((ax, ay), (bx, by)) in &self.blocked_edges {
            blk.block_edge(Point::new(ax, ay), Point::new(bx, by));
        }
        GridGraph::new(
            blk,
            Length::from_um(self.pitch_um),
            Length::from_um(self.pitch_um),
        )
    }

    fn tech(&self) -> Technology {
        Technology::new(
            ResPerLength::from_ohms_per_um(self.res_ohms_per_um),
            CapPerLength::from_ff_per_um(self.cap_ff_per_um),
        )
    }

    fn source(&self) -> Point {
        Point::new(self.source.0, self.source.1)
    }

    fn sink(&self) -> Point {
        Point::new(self.sink.0, self.sink.1)
    }

    /// Longest simple path on the grid — the oracle bound that makes the
    /// brute force a true global optimum.
    fn max_edges(&self) -> usize {
        (self.width * self.height - 1) as usize
    }
}

/// `Ok(a) ~ Ok(b)` within eps, or both `NoFeasibleRoute`.
fn assert_same_time(
    scenario: &Scenario,
    what: &str,
    got: Result<Time, RouteError>,
    want: Result<Time, RouteError>,
) {
    match (&got, &want) {
        (Ok(a), Ok(b)) if (a.ps() - b.ps()).abs() < 1e-6 => {}
        (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => {}
        _ => panic!(
            "{what} diverged: solver {got:?} vs oracle {want:?}\n\
             reproduce with: {scenario:#?}"
        ),
    }
}

#[test]
fn fastpath_matches_oracle_on_random_scenarios() {
    let lib = GateLibrary::paper_library();
    for i in 0..INSTANCES {
        let sc = Scenario::generate(BASE_SEED + i);
        let g = sc.graph();
        let tech = sc.tech();
        let sol = FastPathSpec::new(&g, &tech, &lib)
            .source(sc.source())
            .sink(sc.sink())
            .solve();
        let oracle = reference::min_delay_exhaustive(
            &g,
            &tech,
            &lib,
            sc.source(),
            sc.sink(),
            sc.max_edges(),
        );
        assert_same_time(&sc, "fastpath", sol.map(|s| s.delay()), oracle);
    }
}

#[test]
fn rbp_matches_oracle_on_random_scenarios() {
    let lib = GateLibrary::paper_library();
    for i in 0..INSTANCES {
        let sc = Scenario::generate(BASE_SEED + i);
        let g = sc.graph();
        let tech = sc.tech();
        let t = Time::from_ps(sc.period_ps);
        let sol = RbpSpec::new(&g, &tech, &lib)
            .source(sc.source())
            .sink(sc.sink())
            .period(t)
            .solve();
        let oracle = reference::min_registers_exhaustive(
            &g,
            &tech,
            &lib,
            sc.source(),
            sc.sink(),
            t,
            sc.max_edges(),
        );
        match (&sol, &oracle) {
            (Ok(s), Ok(best)) if s.register_count() == *best => {}
            (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => {}
            _ => panic!(
                "rbp diverged: solver {:?} vs oracle {oracle:?}\n\
                 reproduce with: {sc:#?}",
                sol.map(|s| s.register_count()),
            ),
        }
    }
}

#[test]
fn gals_never_worse_than_oracle_on_random_scenarios() {
    // The GALS oracle enumerates *simple* paths only, but the production
    // search legally routes non-simple detours (out to a FIFO site and
    // back — `GridPath::validate` allows node revisits), which on tiny
    // blocked grids can strictly beat every simple path or rescue an
    // instance with no simple-path solution at all. So the differential
    // contract is one-sided: the solver must never be worse than the
    // oracle, and every strictly-better or rescued solution must be a
    // non-simple path that passes the ground-truth feasibility report.
    let lib = GateLibrary::paper_library();
    let (mut checked, mut exact) = (0u32, 0u32);
    for i in 0..INSTANCES {
        let sc = Scenario::generate(BASE_SEED + i);
        // The GALS oracle also enumerates every MCFIFO position, so keep
        // it to grids where the full bound stays cheap.
        if sc.width * sc.height > 12 {
            continue;
        }
        checked += 1;
        let g = sc.graph();
        let tech = sc.tech();
        let ts = Time::from_ps(sc.period_ps);
        let tt = Time::from_ps(sc.sink_period_ps);
        let sol = GalsSpec::new(&g, &tech, &lib)
            .source(sc.source())
            .sink(sc.sink())
            .periods(ts, tt)
            .solve();
        let oracle = reference::min_gals_latency_exhaustive(
            &g,
            &tech,
            &lib,
            sc.source(),
            sc.sink(),
            ts,
            tt,
            sc.max_edges(),
        );
        match (&sol, &oracle) {
            (Ok(s), Ok(best)) if (s.latency().ps() - best.ps()).abs() < 1e-6 => exact += 1,
            (Ok(s), oracle_out) => {
                let better = match oracle_out {
                    Ok(best) => s.latency().ps() < best.ps() - 1e-6,
                    Err(RouteError::NoFeasibleRoute) => true,
                    Err(e) => panic!("oracle error {e:?}\nreproduce with: {sc:#?}"),
                };
                assert!(
                    better,
                    "gals worse than oracle: solver {:?} vs {oracle_out:?}\n\
                     reproduce with: {sc:#?}",
                    s.latency()
                );
                let points = s.path().grid_path();
                let mut sorted = points.points().to_vec();
                sorted.sort_unstable_by_key(|p| (p.x, p.y));
                sorted.dedup();
                assert!(
                    sorted.len() < points.points().len(),
                    "gals beat the simple-path oracle with a simple path — \
                     the oracle covers that path, so one of them is wrong: \
                     solver {:?} vs {oracle_out:?}\nreproduce with: {sc:#?}",
                    s.latency()
                );
                // Ground truth, independent of the search internals.
                assert!(points.validate(&g).is_ok(), "reproduce with: {sc:#?}");
                let report = s.path().report(&g, &tech, &lib);
                assert!(
                    report.is_feasible_gals(
                        Time::from_ps(ts.ps() + 1e-9),
                        Time::from_ps(tt.ps() + 1e-9)
                    ),
                    "infeasible stages {:?}\nreproduce with: {sc:#?}",
                    report.stages
                );
            }
            (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => exact += 1,
            (Err(e), oracle_out) => panic!(
                "gals diverged: solver Err({e:?}) vs oracle {oracle_out:?}\n\
                 reproduce with: {sc:#?}"
            ),
        }
    }
    assert!(checked >= 50, "GALS sample too small: {checked}");
    // The non-simple escape hatch must stay the exception, not the rule.
    assert!(exact * 2 > checked, "only {exact}/{checked} exact matches");
}

/// Old-vs-new equivalence mode: every search re-run on the same 200
/// scenarios under the retained pre-rewrite substrate
/// (`EngineKind::Legacy`) must return byte-identical *results* — same
/// routed path, same optimal value, same feasibility verdict — as the
/// default arena substrate. Stats legitimately differ (that is the
/// point of the rewrite), so only results are compared here; the
/// counter contract is pinned separately below.
#[test]
fn arena_engine_matches_legacy_reference_on_random_scenarios() {
    let lib = GateLibrary::paper_library();
    for i in 0..INSTANCES {
        let sc = Scenario::generate(BASE_SEED + i);
        let g = sc.graph();
        let tech = sc.tech();
        let t = Time::from_ps(sc.period_ps);
        let tt = Time::from_ps(sc.sink_period_ps);

        let fp = |e: EngineKind| {
            FastPathSpec::new(&g, &tech, &lib)
                .source(sc.source())
                .sink(sc.sink())
                .engine(e)
                .solve()
                .map(|s| (s.path().clone(), s.delay()))
        };
        assert_equivalent(&sc, "fastpath", fp(EngineKind::Arena), fp(EngineKind::Legacy));

        let rbp = |e: EngineKind| {
            RbpSpec::new(&g, &tech, &lib)
                .source(sc.source())
                .sink(sc.sink())
                .period(t)
                .engine(e)
                .solve()
                .map(|s| (s.path().clone(), (s.register_count(), s.latency())))
        };
        assert_equivalent(&sc, "rbp", rbp(EngineKind::Arena), rbp(EngineKind::Legacy));

        let gals = |e: EngineKind| {
            GalsSpec::new(&g, &tech, &lib)
                .source(sc.source())
                .sink(sc.sink())
                .periods(t, tt)
                .engine(e)
                .solve()
                .map(|s| (s.path().clone(), s.latency()))
        };
        assert_equivalent(&sc, "gals", gals(EngineKind::Arena), gals(EngineKind::Legacy));

        // Level-sensitive extension, with a deterministic borrow window
        // derived from the scenario so the whole sweep stays seeded.
        let b = Time::from_ps(sc.sink_period_ps * 0.25);
        let latch = |e: EngineKind| {
            LatchSpec::new(&g, &tech, &lib)
                .source(sc.source())
                .sink(sc.sink())
                .period(t)
                .borrow_window(b)
                .engine(e)
                .solve()
                .map(|s| (s.path().clone(), (s.latch_count(), s.latency())))
        };
        assert_equivalent(&sc, "latch", latch(EngineKind::Arena), latch(EngineKind::Legacy));
    }
}

/// `Ok` sides must be identical (paths compare exactly; `RoutedPath`
/// is `PartialEq`), `Err` sides must both be `NoFeasibleRoute`.
fn assert_equivalent<V: PartialEq + std::fmt::Debug>(
    scenario: &Scenario,
    what: &str,
    arena: Result<(RoutedPath, V), RouteError>,
    legacy: Result<(RoutedPath, V), RouteError>,
) {
    match (&arena, &legacy) {
        (Ok(a), Ok(b)) if a == b => {}
        (Err(RouteError::NoFeasibleRoute), Err(RouteError::NoFeasibleRoute)) => {}
        _ => panic!(
            "{what} engines diverged:\narena  {arena:?}\nlegacy {legacy:?}\n\
             reproduce with: {scenario:#?}"
        ),
    }
}

/// Pins the satellite counter contract on a mid-size production grid:
/// with goal pruning off, the arena substrate must generate *exactly*
/// the work the legacy substrate does — same pushes, prunes, and
/// Elmore bound rejections, and no more pops — while the sorted
/// frontiers perform
/// strictly fewer dominance comparisons than the legacy linear scans.
/// This is the regression test for the `PruneTable::is_stale`
/// whole-list walk: if the staircase frontier ever degrades back to
/// linear scanning, `front_comparisons` climbs back to parity and this
/// test fails.
#[test]
fn arena_substrate_reduces_comparisons_with_identical_telemetry() {
    let lib = GateLibrary::paper_library();
    let g = GridGraph::open(40, 40, Length::from_um(500.0));
    let tech = Technology::paper_070nm();
    let run = |e: EngineKind| {
        FastPathSpec::new(&g, &tech, &lib)
            .source(Point::new(4, 4))
            .sink(Point::new(35, 35))
            .engine(e)
            .goal_prune(false)
            .solve()
            .expect("open grid is routable")
    };
    let arena = run(EngineKind::Arena);
    let legacy = run(EngineKind::Legacy);

    assert_eq!(arena.path(), legacy.path());
    assert_eq!(arena.delay(), legacy.delay());
    let (a, l) = (arena.stats(), legacy.stats());
    // The arena kills dominated candidates while they are still queued
    // and skips their corpses at pop time, so its pop count may only
    // drop; every expansion it *does* perform is the same one legacy
    // performs, which is what the exact push/prune/bound counts pin.
    assert!(
        a.configs <= l.configs,
        "arena popped more than legacy: {} vs {}",
        a.configs,
        l.configs
    );
    assert_eq!(a.pushed, l.pushed);
    assert_eq!(a.pruned, l.pruned);
    assert_eq!(
        a.bound_rejected, l.bound_rejected,
        "bound-reject telemetry must be unchanged by the substrate"
    );
    // Strictly fewer on a real routing instance; the asymptotic win on
    // long fronts is pinned by the proptest in `engine.rs`
    // (`sorted_fronts_use_fewer_comparisons_on_long_uniform_fronts`).
    assert!(
        a.front_comparisons < l.front_comparisons,
        "sorted frontiers should reduce dominance comparisons: \
         arena {} vs legacy {}",
        a.front_comparisons,
        l.front_comparisons
    );
}

#[test]
fn scenario_generation_is_deterministic() {
    // The whole suite's reproducibility rests on this: the same seed must
    // always produce the same scenario.
    for seed in [BASE_SEED, BASE_SEED + 77, BASE_SEED + 199] {
        let a = Scenario::generate(seed);
        let b = Scenario::generate(seed);
        assert_eq!(a.seed, seed);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
