//! `crplan` — command-line interconnect planner.
//!
//! ```text
//! usage: crplan <scenario.cr> [--render] [--quiet] [--budget-ms <n>] [--strict] [--jobs <n>]
//!               [--metrics <file>] [--trace <file>]
//!               [--flow [--flow-iters <n>] [--flow-seed <n>]]
//! ```
//!
//! Reads a scenario file (see [`clockroute_cli::scenario`] for the
//! format), plans every net with the optimal fast-path / RBP / GALS
//! searches, and prints a per-net report plus aggregate statistics.
//! `--render` additionally draws each routed net as ASCII art.
//!
//! `--budget-ms <n>` caps each per-net search attempt at `n` milliseconds
//! of wall clock; nets that blow the budget fall down the degradation
//! ladder (coarsened grid, then an unbuffered wire) instead of hanging
//! the run. Degraded nets are flagged in the report and counted in the
//! summary.
//!
//! `--jobs <n>` sets the number of routing worker threads (default: the
//! machine's available parallelism). The plan — and therefore the entire
//! report — is bit-identical for every job count; parallelism only
//! changes wall-clock time.
//!
//! `--flow` routes the whole batch with the congestion-aware
//! multicommodity-flow mode (`clockroute-flow`) against the scenario's
//! `capacity` directives. `--flow-iters <n>` sets the fractional price
//! rounds and `--flow-seed <n>` the rounding seed; both require
//! `--flow` (exit 2 otherwise). Under `--flow` the plan is a pure
//! function of scenario + seed + iters: `--jobs` is accepted but is a
//! documented no-op for ordering (flow planning is sequential), and a
//! non-quiet run appends a congestion/overflow section to the report.
//!
//! `--metrics <file>` writes the aggregated telemetry counters/gauges as
//! a JSON object; the file is byte-identical for every `--jobs` value.
//! `--trace <file>` writes the full telemetry stream (spans and
//! scheduling events included) as JSONL; traces are for reading one run
//! and are *not* deterministic. A summary table of the counters is also
//! appended to the report unless `--quiet`.
//!
//! Exit codes: `0` all nets routed (degraded nets allowed unless
//! `--strict`), `1` any net failed — or, under `--strict`, was degraded —
//! `2` usage or scenario errors.

use clockroute_cli::{report, scenario};
use clockroute_core::telemetry::Tee;
use clockroute_core::{failpoint, MetricsRecorder, SearchBudget, Telemetry, TraceWriter};
use clockroute_elmore::GateLibrary;
use clockroute_flow::{FlowConfig, PlannerFlowExt};
use clockroute_grid::{render_grid, GridGraph, RenderOptions};
use clockroute_plan::{Planner, SharedTelemetry};
use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: crplan <scenario.cr> [--render] [--quiet] [--budget-ms <n>] \
                     [--strict] [--jobs <n>] [--metrics <file>] [--trace <file>] \
                     [--flow [--flow-iters <n>] [--flow-seed <n>]]";

struct Options {
    path: String,
    render: bool,
    quiet: bool,
    strict: bool,
    budget: SearchBudget,
    jobs: usize,
    metrics: Option<String>,
    trace: Option<String>,
    flow: bool,
    flow_iters: Option<u32>,
    flow_seed: Option<u64>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut render = false;
    let mut quiet = false;
    let mut strict = false;
    let mut budget = SearchBudget::unlimited();
    let mut jobs = default_jobs();
    let mut metrics = None;
    let mut trace = None;
    let mut flow = false;
    let mut flow_iters = None;
    let mut flow_seed = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--render" => render = true,
            "--quiet" => quiet = true,
            "--strict" => strict = true,
            "--budget-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "--budget-ms needs an integer millisecond count")?;
                budget = budget.with_deadline(Duration::from_millis(ms));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "--jobs needs a positive integer")?;
                if jobs == 0 {
                    return Err("--jobs needs a positive integer".to_owned());
                }
            }
            "--metrics" => {
                metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
            }
            "--trace" => {
                trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
            }
            "--flow" => flow = true,
            "--flow-iters" => {
                let n: u32 = it
                    .next()
                    .ok_or("--flow-iters needs a value")?
                    .parse()
                    .map_err(|_| "--flow-iters needs a positive integer")?;
                if n == 0 {
                    return Err("--flow-iters needs a positive integer".to_owned());
                }
                flow_iters = Some(n);
            }
            "--flow-seed" => {
                flow_seed = Some(
                    it.next()
                        .ok_or("--flow-seed needs a value")?
                        .parse()
                        .map_err(|_| "--flow-seed needs an unsigned integer")?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => {
                if path.replace(other.to_owned()).is_some() {
                    return Err("more than one scenario file given".to_owned());
                }
            }
        }
    }
    if !flow && flow_iters.is_some() {
        return Err("--flow-iters requires --flow".to_owned());
    }
    if !flow && flow_seed.is_some() {
        return Err("--flow-seed requires --flow".to_owned());
    }
    Ok(Options {
        path: path.ok_or("missing scenario file")?,
        render,
        quiet,
        strict,
        budget,
        jobs,
        metrics,
        trace,
        flow,
        flow_iters,
        flow_seed,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = failpoint::arm_from_env() {
        eprintln!("error: bad CLOCKROUTE_FAILPOINTS: {e}");
        return ExitCode::from(2);
    }

    let text = match std::fs::read_to_string(&opts.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let scenario = match scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };

    let (gw, gh) = scenario.grid;
    let graph = GridGraph::from_floorplan(&scenario.floorplan, gw, gh);
    let lib = GateLibrary::paper_library();
    if !opts.quiet {
        let (px, py) = scenario.floorplan.pitch(gw, gh);
        println!(
            "# die {:.1}×{:.1} mm, grid {gw}×{gh} (pitch {:.3}×{:.3} mm), {} blocks, {} nets",
            scenario.floorplan.die_width().mm(),
            scenario.floorplan.die_height().mm(),
            px.mm(),
            py.mm(),
            scenario.floorplan.blocks().len(),
            scenario.nets.len()
        );
    }

    // The recorder is always attached: its counters are deterministic (a
    // pure function of the scenario, independent of --jobs), so the
    // summary table below is part of the reproducible report. The trace
    // writer, when requested, sees the same stream plus scheduling events.
    // Preflight the --metrics file alongside --trace: an unwritable
    // path must fail fast (exit 2) *before* the possibly expensive
    // solve, not after it.
    let metrics_file = match &opts.metrics {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some((path.clone(), f)),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let recorder = Arc::new(MetricsRecorder::new());
    let mut trace_tee = None;
    let sink: Arc<dyn Telemetry + Send + Sync> = match &opts.trace {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: cannot create {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let tee = Arc::new(Tee(recorder.clone(), TraceWriter::new(BufWriter::new(file))));
            trace_tee = Some(tee.clone());
            tee
        }
        None => recorder.clone(),
    };

    // Under --flow, --jobs is a documented no-op: flow planning is
    // sequential so the plan is a pure function of scenario + seed +
    // iters for every job count.
    let planner = Planner::new(graph.clone(), scenario.tech, lib.clone())
        .reserve_routes(scenario.reserve)
        .budget(opts.budget)
        .jobs(if opts.flow { 1 } else { opts.jobs })
        .telemetry(SharedTelemetry::new(sink));
    let (plan, flow_summary) = if opts.flow {
        let mut cfg = FlowConfig::default();
        if let Some(n) = opts.flow_iters {
            cfg.iters = n;
        }
        if let Some(s) = opts.flow_seed {
            cfg.seed = s;
        }
        let (plan, summary) = planner
            .flow(&scenario.nets, &scenario.capacities, cfg)
            .into_parts();
        (plan, Some(summary))
    } else {
        (planner.plan(&scenario.nets), None)
    };

    // The per-net lines come from the shared renderer so they are
    // byte-identical to what `crserve` returns for the same scenario.
    let report_text = report::plan_report(&plan);
    for (result, line) in plan.results().iter().zip(report_text.lines()) {
        println!("{line}");
        if opts.render {
            if let Some(path) = &result.path {
                let mut labels = vec![(path.source(), 'S'), (path.sink(), 'T')];
                for (pt, gate) in path.gates() {
                    if pt != path.source() && pt != path.sink() {
                        let c = match lib.gate(gate).kind() {
                            clockroute_elmore::GateKind::Buffer => 'B',
                            clockroute_elmore::GateKind::McFifo => 'F',
                            _ => 'R',
                        };
                        labels.push((pt, c));
                    }
                }
                println!(
                    "{}",
                    render_grid(
                        &graph,
                        Some(&path.grid_path()),
                        &labels,
                        &RenderOptions::default()
                    )
                );
            }
        }
    }

    let failed = plan.failed().count();
    let degraded = plan.degraded().count();
    if !opts.quiet {
        println!("{}", report::summary_line(&plan));
        if let Some(summary) = &flow_summary {
            print!("{}", summary.render());
        }
    }
    if !opts.quiet {
        println!("# telemetry");
        for row in recorder.summary_rows() {
            println!("#   {row}");
        }
    }
    if let Some((path, mut file)) = metrics_file {
        let mut json = recorder.to_json();
        json.push('\n');
        let wrote = file.write_all(json.as_bytes()).and_then(|()| file.flush());
        if let Err(e) = wrote {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(tee) = trace_tee {
        // The planner has released its clone, so the unwrap succeeds and
        // write errors surface instead of vanishing in a drop.
        if let Ok(tee) = Arc::try_unwrap(tee) {
            if let Err(e) = tee.1.into_inner().flush() {
                eprintln!("error: cannot write trace: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if failed > 0 || (opts.strict && degraded > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
