// Fixture: CR001 — NaN-unsound orderings.
use std::cmp::Ordering;

struct Entry {
    key: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

// BAD (line 15): hand-rolled PartialOrd with no total-order delegation.
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        // BAD (line 18): .partial_cmp( call on an f64 key.
        self.key.partial_cmp(&other.key)
    }
}

fn sort_keys(keys: &mut [f64]) {
    // BAD (line 24): the classic sort_by footgun.
    keys.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}

struct Good {
    key: f64,
    seq: u64,
}

impl PartialEq for Good {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Good {}

impl Ord for Good {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// GOOD: the canonical delegation pattern — no finding.
impl PartialOrd for Good {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
