//! Electrical substrate: technology parameters, switch-level gate models,
//! RC wire models and the Elmore delay engine.
//!
//! The routing algorithms in `clockroute-core` evaluate millions of partial
//! solutions; every delay number they manipulate is produced by this crate.
//! The model follows Hassoun & Alpert §II exactly:
//!
//! * wires use the **resistance–capacitance π-model** with uniform per-length
//!   R and C for a fixed width and layer assignment ([`Technology`]);
//! * gates (buffers, registers, relay stations, MCFIFOs) use a
//!   **switch-level model**: driver resistance `R(g)`, intrinsic delay
//!   `K(g)` and input capacitance `C(g)` ([`Gate`], [`GateLibrary`]);
//! * path delays use the **Elmore model** ([`delay`]).
//!
//! The crate also contains closed-form buffered-line theory ([`calib`])
//! used both to calibrate the default parameter set against the paper's
//! published anchors and to cross-check the search algorithms in tests.
//!
//! # Example
//!
//! ```
//! use clockroute_elmore::{Technology, GateLibrary, delay::{RouteElem, evaluate}};
//! use clockroute_geom::units::{Length, Time};
//!
//! let tech = Technology::paper_070nm();
//! let lib = GateLibrary::paper_library();
//! let reg = lib.register();
//! // register → 1 mm wire → register
//! let route = [
//!     RouteElem::Gate(reg),
//!     RouteElem::Wire(Length::from_mm(1.0)),
//!     RouteElem::Gate(reg),
//! ];
//! let report = evaluate(&route, &tech, &lib).unwrap();
//! assert_eq!(report.stages.len(), 1);
//! assert!(report.stages[0].delay > Time::ZERO);
//! ```

pub mod calib;
pub mod delay;
pub mod gate;
pub mod lower_bound;
pub mod tech;

pub use gate::{Gate, GateId, GateKind, GateLibrary};
pub use tech::Technology;
