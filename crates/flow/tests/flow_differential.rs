//! Differential and metamorphic suite for the flow-mode planner.
//!
//! * **Differential** — on uncongested scenarios (no finite capacity
//!   anywhere) flow mode must be *byte-identical* to the sequential
//!   planner across 100+ seeded random instances: delegation is
//!   structural, not approximate.
//! * **Metamorphic** — relaxing any single edge capacity never
//!   increases the total overflow flow ships, and permuting the net
//!   declaration order never changes any route.
//!
//! Seeds are deterministic (`BASE_SEED + index`), so a failure
//! reproduces by re-running the suite; the panic message carries the
//! instance seed.

use clockroute_elmore::{GateLibrary, Technology};
use clockroute_flow::{FlowConfig, FlowMode, FlowPlan, PlannerFlowExt};
use clockroute_geom::units::Length;
use clockroute_geom::Point;
use clockroute_grid::{EdgeCapacities, GridGraph};
use clockroute_plan::{NetSpec, Planner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// First seed of the suite; instance `i` uses `BASE_SEED + i`.
const BASE_SEED: u64 = 0xF10F_CAFE;

/// Instance count for the uncongested differential sweep (the issue
/// floor is 100).
const UNCONGESTED_INSTANCES: u64 = 100;

struct Instance {
    graph: GridGraph,
    nets: Vec<NetSpec>,
}

/// A random open-grid scenario with combinational nets. Terminal pairs
/// may collide across nets — that is the interesting congested case.
fn generate(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = rng.gen_range(4u32..=8);
    let height = rng.gen_range(3u32..=6);
    let pitch = Length::from_um(rng.gen_range(200.0f64..1200.0));
    let graph = GridGraph::open(width, height, pitch);
    let net_count = rng.gen_range(2usize..=5);
    let mut nets = Vec::new();
    for i in 0..net_count {
        let pick = |rng: &mut StdRng| {
            Point::new(rng.gen_range(0..width), rng.gen_range(0..height))
        };
        let source = pick(&mut rng);
        let sink = loop {
            let p = pick(&mut rng);
            if p != source {
                break p;
            }
        };
        nets.push(NetSpec::combinational(&format!("n{i}"), source, sink));
    }
    Instance { graph, nets }
}

fn planner(graph: GridGraph) -> Planner {
    Planner::new(graph, Technology::paper_070nm(), GateLibrary::paper_library())
}

/// Per-net report lines keyed by name: the comparison surface for
/// plans whose net order may differ.
fn by_name(fp: &FlowPlan) -> BTreeMap<String, String> {
    fp.plan()
        .results()
        .iter()
        .map(|r| (r.name.clone(), r.to_string()))
        .collect()
}

#[test]
fn uncongested_flow_is_byte_identical_to_sequential_across_seeds() {
    for i in 0..UNCONGESTED_INSTANCES {
        let seed = BASE_SEED + i;
        let inst = generate(seed);
        let sequential = planner(inst.graph.clone()).plan(&inst.nets);
        // The flow seed and iteration count vary too: neither may leak
        // into a delegated plan.
        let cfg = FlowConfig {
            seed,
            iters: 1 + (i % 7) as u32,
            ..FlowConfig::default()
        };
        let flow = planner(inst.graph).flow(&inst.nets, &EdgeCapacities::new(), cfg);
        assert_eq!(flow.summary().mode, FlowMode::Delegated, "seed {seed}");
        assert_eq!(
            flow.plan(),
            &sequential,
            "seed {seed}: delegated flow plan diverged from sequential"
        );
    }
}

/// The canonical contention instance: three identical-terminal nets on
/// a unit-capacity channel wide enough to spread them.
fn contention() -> (GridGraph, Vec<NetSpec>, EdgeCapacities) {
    let graph = GridGraph::open(7, 5, Length::from_um(500.0));
    let nets = (0..3)
        .map(|i| NetSpec::combinational(&format!("n{i}"), Point::new(0, 2), Point::new(6, 2)))
        .collect();
    let mut caps = EdgeCapacities::new();
    caps.set_default(1);
    (graph, nets, caps)
}

/// An over-subscribed instance with *unavoidable* overflow: a
/// single-row channel cannot spread three identical nets.
fn oversubscribed() -> (GridGraph, Vec<NetSpec>, EdgeCapacities) {
    let graph = GridGraph::open(7, 1, Length::from_um(500.0));
    let nets = (0..3)
        .map(|i| NetSpec::combinational(&format!("n{i}"), Point::new(0, 0), Point::new(6, 0)))
        .collect();
    let mut caps = EdgeCapacities::new();
    caps.set_default(1);
    (graph, nets, caps)
}

#[test]
fn raising_one_capacity_never_increases_overflow() {
    for (tag, (graph, nets, caps)) in
        [("spread", contention()), ("jam", oversubscribed())]
    {
        let base = planner(graph.clone()).flow(&nets, &caps, FlowConfig::default());
        let base_overflow = base.summary().total_overflow;
        for (a, b, cap) in caps.capacitated_edges(&graph) {
            let mut relaxed = caps.clone();
            relaxed.set_edge(a, b, cap + 1);
            let run = planner(graph.clone()).flow(&nets, &relaxed, FlowConfig::default());
            assert!(
                run.summary().total_overflow <= base_overflow,
                "{tag}: raising cap of {a}-{b} to {} raised overflow {} -> {}",
                cap + 1,
                base_overflow,
                run.summary().total_overflow,
            );
        }
    }
}

#[test]
fn net_order_permutation_never_changes_a_flow_route() {
    for i in 0..20u64 {
        let seed = BASE_SEED ^ (0x9E37 + i);
        let inst = generate(seed);
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let cfg = FlowConfig {
            seed,
            ..FlowConfig::default()
        };
        let reference = planner(inst.graph.clone()).flow(&inst.nets, &caps, cfg);

        // Deterministic Fisher–Yates permutation of the declaration order.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3)); // distinct stream
        let mut permuted = inst.nets.clone();
        for j in (1..permuted.len()).rev() {
            permuted.swap(j, rng.gen_range(0..=j));
        }
        let shuffled = planner(inst.graph).flow(&permuted, &caps, cfg);
        assert_eq!(
            by_name(&reference),
            by_name(&shuffled),
            "seed {seed}: permuting net order changed a route"
        );
        assert_eq!(
            reference.summary().total_overflow,
            shuffled.summary().total_overflow,
            "seed {seed}"
        );
    }
}

#[test]
fn capacitated_flow_is_reproducible_across_random_scenarios() {
    for i in 0..20u64 {
        let seed = BASE_SEED ^ (0xB5E5 + i);
        let inst = generate(seed);
        let mut caps = EdgeCapacities::new();
        caps.set_default(1);
        let cfg = FlowConfig {
            seed,
            ..FlowConfig::default()
        };
        let a = planner(inst.graph.clone()).flow(&inst.nets, &caps, cfg);
        let b = planner(inst.graph).flow(&inst.nets, &caps, cfg);
        assert_eq!(a, b, "seed {seed}: flow run not reproducible");
    }
}
