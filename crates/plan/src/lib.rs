//! Multi-net interconnect planning.
//!
//! The paper positions its algorithms as building blocks for
//! *interconnect planning*: “routing estimates can be achieved during
//! architectural explorations to assess communication overhead once an
//! initial floorplan is constructed” (§I). A real plan involves many
//! global nets that compete for routing tracks and insertion sites. This
//! crate provides that layer:
//!
//! * [`NetSpec`] — one global net: terminals plus its clocking
//!   requirement (combinational, single-domain registered, or two-domain
//!   GALS);
//! * [`Planner`] — plans a batch of nets **sequentially with resource
//!   reservation**: after each net is routed, its edges are removed from
//!   the shared grid and its insertion sites are blocked, so later nets
//!   cannot overlap it (the classic sequential global-routing discipline;
//!   the per-net searches remain optimal w.r.t. the remaining resources);
//! * [`Plan`] / [`NetResult`] — the outcome: per-net routes, latencies,
//!   element counts, and aggregate statistics an RTL/architecture update
//!   would consume.
//!
//! Net ordering matters in sequential planning; the planner routes nets
//! in the order given (callers typically sort by criticality) and reports
//! failures without aborting the batch.
//!
//! # Example
//!
//! ```
//! use clockroute_plan::{NetSpec, Planner};
//! use clockroute_grid::GridGraph;
//! use clockroute_elmore::{Technology, GateLibrary};
//! use clockroute_geom::{Point, units::{Length, Time}};
//!
//! let graph = GridGraph::open(30, 30, Length::from_um(500.0));
//! let tech = Technology::paper_070nm();
//! let lib = GateLibrary::paper_library();
//! let nets = vec![
//!     NetSpec::registered("a", Point::new(0, 0), Point::new(29, 5), Time::from_ps(400.0)),
//!     NetSpec::registered("b", Point::new(0, 10), Point::new(29, 15), Time::from_ps(400.0)),
//! ];
//! let plan = Planner::new(graph, tech, lib).plan(&nets);
//! assert_eq!(plan.routed().count(), 2);
//! ```

use clockroute_core::{FastPathSpec, GalsSpec, RbpSpec, RouteError, RoutedPath};
use clockroute_elmore::{GateLibrary, Technology};
use clockroute_geom::units::{Length, Time};
use clockroute_geom::Point;
use clockroute_grid::GridGraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Clocking requirement of a net.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetKind {
    /// Minimum-delay buffered net (fast path), no synchronizers.
    Combinational,
    /// Single-domain registered net at the given period (RBP).
    Registered {
        /// Clock period.
        period: Time,
    },
    /// Two-domain net through an MCFIFO (GALS).
    Gals {
        /// Sender period.
        t_s: Time,
        /// Receiver period.
        t_t: Time,
    },
}

/// One global net to plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Human-readable identifier.
    pub name: String,
    /// Source grid point.
    pub source: Point,
    /// Sink grid point.
    pub sink: Point,
    /// Clocking requirement.
    pub kind: NetKind,
}

impl NetSpec {
    /// A combinational (fast path) net.
    pub fn combinational(name: &str, source: Point, sink: Point) -> NetSpec {
        NetSpec {
            name: name.to_owned(),
            source,
            sink,
            kind: NetKind::Combinational,
        }
    }

    /// A registered single-domain net.
    pub fn registered(name: &str, source: Point, sink: Point, period: Time) -> NetSpec {
        NetSpec {
            name: name.to_owned(),
            source,
            sink,
            kind: NetKind::Registered { period },
        }
    }

    /// A two-domain (GALS) net.
    pub fn gals(name: &str, source: Point, sink: Point, t_s: Time, t_t: Time) -> NetSpec {
        NetSpec {
            name: name.to_owned(),
            source,
            sink,
            kind: NetKind::Gals { t_s, t_t },
        }
    }
}

/// Result of planning one net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetResult {
    /// The net's name.
    pub name: String,
    /// The synthesized route (when successful).
    pub path: Option<RoutedPath>,
    /// End-to-end latency: path delay for combinational nets, cycle
    /// latency otherwise.
    pub latency: Option<Time>,
    /// Pipeline depth in cycles (1 for combinational nets).
    pub cycles: Option<usize>,
    /// Total wirelength.
    pub wirelength: Option<Length>,
    /// Failure reason, if the net could not be routed.
    pub error: Option<RouteError>,
}

impl NetResult {
    /// `true` if the net was routed.
    pub fn is_routed(&self) -> bool {
        self.path.is_some()
    }
}

impl fmt::Display for NetResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.path, &self.error) {
            (Some(path), _) => write!(
                f,
                "{}: {} cycles, latency {:.0}, {} registers, {} buffers, {:.1} mm",
                self.name,
                self.cycles.unwrap_or(0),
                self.latency.unwrap_or(Time::ZERO),
                path.register_count() + path.fifo_count(),
                path.buffer_count(),
                self.wirelength.unwrap_or(Length::ZERO).mm(),
            ),
            (None, Some(e)) => write!(f, "{}: FAILED ({e})", self.name),
            (None, None) => write!(f, "{}: not planned", self.name),
        }
    }
}

/// A completed plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    results: Vec<NetResult>,
}

impl Plan {
    /// Per-net results, in planning order.
    pub fn results(&self) -> &[NetResult] {
        &self.results
    }

    /// Iterates over successfully routed nets.
    pub fn routed(&self) -> impl Iterator<Item = &NetResult> {
        self.results.iter().filter(|r| r.is_routed())
    }

    /// Iterates over failed nets.
    pub fn failed(&self) -> impl Iterator<Item = &NetResult> {
        self.results.iter().filter(|r| !r.is_routed())
    }

    /// Total wirelength over all routed nets.
    pub fn total_wirelength(&self) -> Length {
        self.routed().filter_map(|r| r.wirelength).sum()
    }

    /// Total synchronizer count (registers + FIFOs) over routed nets.
    pub fn total_synchronizers(&self) -> usize {
        self.routed()
            .filter_map(|r| r.path.as_ref())
            .map(|p| p.register_count() + p.fifo_count())
            .sum()
    }

    /// Worst pipeline depth among routed nets.
    pub fn max_cycles(&self) -> Option<usize> {
        self.routed().filter_map(|r| r.cycles).max()
    }
}

/// Sequential multi-net planner with resource reservation.
#[derive(Debug, Clone)]
pub struct Planner {
    graph: GridGraph,
    tech: Technology,
    lib: GateLibrary,
    reserve_routes: bool,
}

impl Planner {
    /// Creates a planner over (a private copy of) the grid.
    pub fn new(graph: GridGraph, tech: Technology, lib: GateLibrary) -> Planner {
        Planner {
            graph,
            tech,
            lib,
            reserve_routes: true,
        }
    }

    /// Disables resource reservation (nets may overlap freely) — useful
    /// for pure latency estimation during early exploration.
    pub fn reserve_routes(mut self, reserve: bool) -> Planner {
        self.reserve_routes = reserve;
        self
    }

    /// The current grid state (reflecting reservations made so far).
    pub fn graph(&self) -> &GridGraph {
        &self.graph
    }

    /// Plans the nets in order. Failures are recorded, not fatal.
    pub fn plan(mut self, nets: &[NetSpec]) -> Plan {
        let mut results = Vec::with_capacity(nets.len());
        for net in nets {
            let outcome = self.route_net(net);
            let result = match outcome {
                Ok((path, latency, cycles)) => {
                    if self.reserve_routes {
                        self.reserve(&path, net);
                    }
                    NetResult {
                        name: net.name.clone(),
                        latency: Some(latency),
                        cycles: Some(cycles),
                        wirelength: Some(path.wirelength(&self.graph)),
                        path: Some(path),
                        error: None,
                    }
                }
                Err(e) => NetResult {
                    name: net.name.clone(),
                    path: None,
                    latency: None,
                    cycles: None,
                    wirelength: None,
                    error: Some(e),
                },
            };
            results.push(result);
        }
        Plan { results }
    }

    fn route_net(&self, net: &NetSpec) -> Result<(RoutedPath, Time, usize), RouteError> {
        match net.kind {
            NetKind::Combinational => {
                let sol = FastPathSpec::new(&self.graph, &self.tech, &self.lib)
                    .source(net.source)
                    .sink(net.sink)
                    .solve()?;
                Ok((sol.path().clone(), sol.delay(), 1))
            }
            NetKind::Registered { period } => {
                let sol = RbpSpec::new(&self.graph, &self.tech, &self.lib)
                    .source(net.source)
                    .sink(net.sink)
                    .period(period)
                    .solve()?;
                Ok((
                    sol.path().clone(),
                    sol.latency(),
                    sol.register_count() + 1,
                ))
            }
            NetKind::Gals { t_s, t_t } => {
                let sol = GalsSpec::new(&self.graph, &self.tech, &self.lib)
                    .source(net.source)
                    .sink(net.sink)
                    .periods(t_s, t_t)
                    .solve()?;
                Ok((
                    sol.path().clone(),
                    sol.latency(),
                    sol.regs_source_side() + sol.regs_sink_side() + 2,
                ))
            }
        }
    }

    /// Reserves a routed net's resources: its edges are removed from the
    /// grid and its gate sites become placement-blocked (terminals stay
    /// usable — they belong to the blocks, not the channel).
    fn reserve(&mut self, path: &RoutedPath, net: &NetSpec) {
        let points = path.points().to_vec();
        for w in points.windows(2) {
            self.graph.blockage_mut().block_edge(w[0], w[1]);
        }
        for (pt, _) in path.gates() {
            if pt != net.source && pt != net.sink {
                self.graph.blockage_mut().block_node(pt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u32) -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(n, n, Length::from_um(500.0)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn plans_mixed_net_kinds() {
        let (g, tech, lib) = setup(30);
        let nets = vec![
            NetSpec::combinational("comb", p(0, 0), p(29, 2)),
            NetSpec::registered("reg", p(0, 6), p(29, 8), Time::from_ps(350.0)),
            NetSpec::gals(
                "xdomain",
                p(0, 12),
                p(29, 14),
                Time::from_ps(300.0),
                Time::from_ps(400.0),
            ),
        ];
        let plan = Planner::new(g, tech, lib).plan(&nets);
        assert_eq!(plan.routed().count(), 3);
        assert_eq!(plan.failed().count(), 0);
        let comb = &plan.results()[0];
        assert_eq!(comb.cycles, Some(1));
        let gals = &plan.results()[2];
        assert_eq!(gals.path.as_ref().unwrap().fifo_count(), 1);
        assert!(plan.total_wirelength().mm() > 40.0);
        assert!(plan.max_cycles().unwrap() >= 2);
    }

    #[test]
    fn reserved_routes_do_not_overlap() {
        let (g, tech, lib) = setup(20);
        // Two nets with the same terminals row: the second must detour.
        let nets = vec![
            NetSpec::registered("n0", p(0, 10), p(19, 10), Time::from_ps(400.0)),
            NetSpec::registered("n1", p(0, 9), p(19, 11), Time::from_ps(400.0)),
        ];
        let plan = Planner::new(g, tech, lib).plan(&nets);
        assert_eq!(plan.routed().count(), 2);
        let a: std::collections::HashSet<(Point, Point)> = plan.results()[0]
            .path
            .as_ref()
            .unwrap()
            .points()
            .windows(2)
            .map(|w| ord_edge(w[0], w[1]))
            .collect();
        let b_path = plan.results()[1].path.as_ref().unwrap();
        for w in b_path.points().windows(2) {
            assert!(
                !a.contains(&ord_edge(w[0], w[1])),
                "nets share edge {:?}",
                (w[0], w[1])
            );
        }
    }

    fn ord_edge(a: Point, b: Point) -> (Point, Point) {
        if (a.x, a.y) <= (b.x, b.y) {
            (a, b)
        } else {
            (b, a)
        }
    }

    #[test]
    fn without_reservation_nets_may_share() {
        let (g, tech, lib) = setup(12);
        let nets = vec![
            NetSpec::combinational("n0", p(0, 5), p(11, 5)),
            NetSpec::combinational("n1", p(0, 5), p(11, 5)),
        ];
        let plan = Planner::new(g, tech, lib).reserve_routes(false).plan(&nets);
        assert_eq!(plan.routed().count(), 2);
        // Same terminals, same grid ⇒ identical optimal routes.
        assert_eq!(
            plan.results()[0].path.as_ref().unwrap().points(),
            plan.results()[1].path.as_ref().unwrap().points()
        );
    }

    #[test]
    fn failures_recorded_not_fatal() {
        let (g, tech, lib) = setup(12);
        let nets = vec![
            NetSpec::registered("impossible", p(0, 0), p(11, 11), Time::from_ps(30.0)),
            NetSpec::combinational("fine", p(0, 2), p(11, 2)),
        ];
        let plan = Planner::new(g, tech, lib).plan(&nets);
        assert_eq!(plan.failed().count(), 1);
        assert_eq!(plan.routed().count(), 1);
        assert_eq!(
            plan.results()[0].error,
            Some(RouteError::NoFeasibleRoute)
        );
        assert!(plan.results()[0].to_string().contains("FAILED"));
        assert!(plan.results()[1].is_routed());
    }

    #[test]
    fn congestion_can_exhaust_resources() {
        // A 1-row channel: after the first net eats the row, the second
        // has no edges left.
        let g = GridGraph::open(10, 1, Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let nets = vec![
            NetSpec::combinational("n0", p(0, 0), p(9, 0)),
            NetSpec::combinational("n1", p(0, 0), p(9, 0)),
        ];
        let plan = Planner::new(g, tech, lib).plan(&nets);
        assert_eq!(plan.routed().count(), 1);
        assert_eq!(plan.failed().count(), 1);
    }

    #[test]
    fn display_formats() {
        let (g, tech, lib) = setup(12);
        let nets = vec![NetSpec::registered(
            "link",
            p(0, 0),
            p(11, 11),
            Time::from_ps(400.0),
        )];
        let plan = Planner::new(g, tech, lib).plan(&nets);
        let text = plan.results()[0].to_string();
        assert!(text.starts_with("link:"), "{text}");
        assert!(text.contains("cycles"));
    }
}
