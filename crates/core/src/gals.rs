//! GALS — minimum-latency routing between two clock domains
//! (paper §IV, Fig. 12).
//!
//! The route must cross exactly one **MCFIFO** `f` (Chelcea & Nowick's
//! mixed-clock FIFO); relay stations (delay-identical to registers,
//! §IV-B) pipeline the wire on both sides. Stages upstream of the FIFO
//! are clocked at the sender period `T_s`, the FIFO's get interface and
//! everything downstream at the receiver period `T_t` — encoded in the
//! paper's `T(z)` lookup with `T(1) = T_s`, `T(0) = T_t`.
//!
//! Differences from RBP, per the paper:
//!
//! 1. candidates carry `(c, d, m, v, z, l)` — `z` marks whether the FIFO
//!    has been inserted, `l` accumulates latency from the last
//!    synchronizer to the sink;
//! 2. pruning compares only candidates with equal `z` (separate fronts);
//! 3. wave fronts are ordered by **latency** `l`, not register count —
//!    `Q*` is a priority queue keyed by `l` and `ExtractAllMin` promotes
//!    all candidates of the minimum latency at once;
//! 4. a solution is accepted at the source only when `z = 1` and the
//!    final stage meets `T_s`; its total latency is `l + T_s`.
//!
//! Because waves are processed in increasing `l` and every source arrival
//! adds the same `T_s`, the first feasible arrival is globally optimal.

use crate::budget::{BudgetMeter, SearchStage};
use crate::ctx::Ctx;
use crate::engine::{
    Arena, Cand, CandArena, DelayQueue, DialQueue, EngineKind, PruneTable, SearchQueue,
    SortedFronts, NO_PARENT,
};
use crate::failpoint::{self, FailAction};
use crate::telemetry::TelemetryHandle;
use crate::{GalsSolution, RouteError, RoutedPath, SearchBudget, SearchStats};
use clockroute_elmore::{GateId, GateKind, GateLibrary, Technology};
use clockroute_geom::units::Time;
use clockroute_geom::Point;
use clockroute_grid::GridGraph;

/// Specification builder for a GALS two-domain search.
///
/// # Example
///
/// ```
/// use clockroute_core::GalsSpec;
/// use clockroute_elmore::{Technology, GateLibrary};
/// use clockroute_grid::GridGraph;
/// use clockroute_geom::{Point, units::{Length, Time}};
///
/// let graph = GridGraph::open(40, 40, Length::from_um(500.0));
/// let tech = Technology::paper_070nm();
/// let lib = GateLibrary::paper_library();
/// let sol = GalsSpec::new(&graph, &tech, &lib)
///     .source(Point::new(0, 0))
///     .sink(Point::new(39, 39))
///     .periods(Time::from_ps(300.0), Time::from_ps(400.0))
///     .solve()?;
/// assert_eq!(sol.path().fifo_count(), 1);
/// # Ok::<(), clockroute_core::RouteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GalsSpec<'a> {
    graph: &'a GridGraph,
    tech: &'a Technology,
    lib: &'a GateLibrary,
    source: Option<Point>,
    sink: Option<Point>,
    source_gate: GateId,
    sink_gate: GateId,
    t_s: Option<Time>,
    t_t: Option<Time>,
    budget: SearchBudget,
    telemetry: TelemetryHandle<'a>,
    engine: EngineKind,
}

impl<'a> GalsSpec<'a> {
    /// Creates a spec; terminals default to the library register model.
    pub fn new(graph: &'a GridGraph, tech: &'a Technology, lib: &'a GateLibrary) -> Self {
        GalsSpec {
            graph,
            tech,
            lib,
            source: None,
            sink: None,
            source_gate: lib.register(),
            sink_gate: lib.register(),
            t_s: None,
            t_t: None,
            budget: SearchBudget::unlimited(),
            telemetry: TelemetryHandle::none(),
            engine: EngineKind::default(),
        }
    }

    /// Selects the search substrate (default: [`EngineKind::Arena`]).
    /// Both engines return identical routes; `Legacy` exists as the
    /// equivalence reference.
    pub fn engine(mut self, e: EngineKind) -> Self {
        self.engine = e;
        self
    }

    /// Sets the source grid point (sender domain).
    pub fn source(mut self, p: Point) -> Self {
        self.source = Some(p);
        self
    }

    /// Sets the sink grid point (receiver domain).
    pub fn sink(mut self, p: Point) -> Self {
        self.sink = Some(p);
        self
    }

    /// Sets the sender (`T_s`) and receiver (`T_t`) clock periods.
    pub fn periods(mut self, t_s: Time, t_t: Time) -> Self {
        self.t_s = Some(t_s);
        self.t_t = Some(t_t);
        self
    }

    /// Sets the resource budget for the search (default: unlimited).
    pub fn budget(mut self, b: SearchBudget) -> Self {
        self.budget = b;
        self
    }

    /// Attaches a telemetry sink (default: detached, zero-cost).
    pub fn telemetry(mut self, t: TelemetryHandle<'a>) -> Self {
        self.telemetry = t;
        self
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if the spec is invalid or no feasible
    /// MCFIFO path exists at these periods and grid granularity.
    pub fn solve(&self) -> Result<GalsSolution, RouteError> {
        let t_s = self.t_s.ok_or(RouteError::InvalidPeriod)?;
        let t_t = self.t_t.ok_or(RouteError::InvalidPeriod)?;
        for t in [t_s, t_t] {
            if t.ps() <= 0.0 || !t.is_finite() {
                return Err(RouteError::InvalidPeriod);
            }
        }
        let ctx = Ctx::new(
            self.graph,
            self.tech,
            self.lib,
            self.source,
            self.sink,
            self.source_gate,
            self.sink_gate,
        )?;
        // crlint-allow: CR003 span start; the duration only reaches telemetry, never compared bytes
        let started = std::time::Instant::now();
        let mut stats = SearchStats::new();
        let out = match self.engine {
            EngineKind::Arena => solve_arena(&ctx, t_s.ps(), t_t.ps(), self.budget, &mut stats),
            EngineKind::Legacy => solve_legacy(&ctx, t_s.ps(), t_t.ps(), self.budget, &mut stats),
        };
        self.telemetry
            .flush_search("gals", &stats, started.elapsed(), out.is_ok());
        out
    }
}

/// `T(z)` lookup: `T(0) = T_t`, `T(1) = T_s` (paper §IV-B).
#[inline]
fn t_of(z: bool, t_s: f64, t_t: f64) -> f64 {
    if z {
        t_s
    } else {
        t_t
    }
}

/// The pre-rewrite substrate, kept verbatim as the equivalence
/// reference (DESIGN.md §15).
fn solve_legacy(
    ctx: &Ctx<'_>,
    t_s: f64,
    t_t: f64,
    budget: SearchBudget,
    stats: &mut SearchStats,
) -> Result<GalsSolution, RouteError> {
    let graph = ctx.graph;
    let n = graph.node_count();
    let mut meter = BudgetMeter::new(budget, SearchStage::Gals);
    let mut arena = Arena::new();
    // Separate Pareto fronts per z: key = node·2 + z.
    let mut prune = PruneTable::new(n * 2);
    // A_0 / A_1: register inserted at v with the given z; F: FIFO at v.
    let mut reg_marked = [vec![false; n], vec![false; n]];
    let mut fifo_marked = vec![false; n];

    let fifo = ctx.lib.gate(ctx.lib.mcfifo());
    let fifo_res = fifo.driver_res().ohms();
    let fifo_cap = fifo.input_cap().ff();
    let fifo_k = fifo.intrinsic().ps();
    let fifo_setup = fifo.setup().ps();
    let fifo_id = ctx.lib.mcfifo();

    let mut queue = DelayQueue::new();
    // Q*: next wave fronts, keyed by latency `l`.
    let mut qstar = DelayQueue::new();

    let gt = ctx.lib.gate(ctx.gt);
    let root = arena.push(ctx.t, None, NO_PARENT);
    let start = Cand::start(gt.input_cap().ff(), gt.setup().ps(), root, ctx.t);
    prune.try_admit(ctx.t.index() * 2, start.cap, start.delay, 0.0, false, &mut stats.pruned);
    queue.push(start.delay, start);
    stats.record_push(queue.len());

    loop {
        while let Some(cand) = queue.pop() {
            match failpoint::hit("gals::pop") {
                Some(FailAction::Panic) => panic!("failpoint gals::pop: forced panic"),
                Some(FailAction::BudgetExhausted) => return Err(meter.exceeded()),
                Some(FailAction::NoRoute) => return Err(RouteError::NoFeasibleRoute),
                // I/O actions only apply at `serve::*` sites; inert here.
                Some(FailAction::IoError | FailAction::ShortIo) | None => {}
            }
            stats.budget_charges += 1;
            stats.arena_steps = arena.len() as u64;
            meter.charge_pop(arena.len())?;
            stats.configs += 1;
            let z = cand.fifo_inserted;
            let key = cand.node.index() * 2 + usize::from(z);
            if prune.is_stale(key, cand.cap, cand.delay, 0.0, !cand.gate_here) {
                stats.stale_skipped += 1;
                continue;
            }
            let t_cur = t_of(z, t_s, t_t);

            // Step 4: source arrival — accept only with the FIFO inserted.
            if cand.node == ctx.s && z {
                let total = ctx.finish_at_source(cand.cap, cand.delay);
                if total <= t_s {
                    stats.arena_steps = arena.len() as u64;
                    stats.front_comparisons = prune.comparisons();
                    return Ok(build(ctx, &arena, cand, t_s, t_t, *stats));
                }
            }

            // Step 5: wire expansion, bounded by the current domain period.
            for v in graph.neighbors(cand.node) {
                stats.budget_charges += 1;
                meter.charge_expand()?;
                let (re, ce) = ctx.edge(cand.node, v);
                let cap = cand.cap + ce;
                let delay = cand.delay + re * (cand.cap + ce / 2.0);
                if delay > t_cur - ctx.reg_k - ctx.min_res * cap * 1.0e-3 {
                    stats.bound_rejected += 1;
                    continue;
                }
                let vkey = v.index() * 2 + usize::from(z);
                if !prune.try_admit(vkey, cap, delay, 0.0, true, &mut stats.pruned) {
                    stats.pruned += 1;
                    continue;
                }
                let trail = arena.push(v, None, cand.trail);
                let mut next = cand;
                next.cap = cap;
                next.delay = delay;
                next.node = v;
                next.trail = trail;
                next.gate_here = false;
                queue.push(delay, next);
                stats.record_push(queue.len());
            }

            let internal = cand.node != ctx.s && cand.node != ctx.t && !cand.gate_here;

            // Step 7: buffers (remember each stands for a pair, one per
            // signal direction — §IV-B).
            if internal && graph.is_insertable(cand.node) {
                for b in &ctx.buffers {
                    stats.budget_charges += 1;
                    meter.charge_expand()?;
                    let cap = b.cap;
                    let delay = cand.delay + b.res * cand.cap * 1.0e-3 + b.k;
                    if delay > t_cur - ctx.reg_k {
                        stats.bound_rejected += 1;
                        continue;
                    }
                    if !prune.try_admit(key, cap, delay, 0.0, false, &mut stats.pruned) {
                        stats.pruned += 1;
                        continue;
                    }
                    let trail = arena.push(cand.node, Some(b.id), cand.trail);
                    let mut next = cand;
                    next.cap = cap;
                    next.delay = delay;
                    next.trail = trail;
                    next.gate_here = true;
                    queue.push(delay, next);
                    stats.record_push(queue.len());
                }
            }

            // Step 8: relay station (register) insertion → next wave,
            // latency grows by the current domain period.
            if internal
                && graph.is_register_allowed(cand.node)
                && !reg_marked[usize::from(z)][cand.node.index()]
            {
                let stage = ctx.register_stage(cand.cap, cand.delay);
                if stage <= t_cur {
                    reg_marked[usize::from(z)][cand.node.index()] = true;
                    let trail = arena.push(cand.node, Some(ctx.reg_id), cand.trail);
                    let mut next = cand;
                    next.cap = ctx.reg_cap;
                    next.delay = ctx.reg_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.latency = cand.latency + t_cur;
                    qstar.push(next.latency, next);
                } else {
                    stats.bound_rejected += 1;
                }
            }

            // Step 9: MCFIFO insertion (only once, only before any FIFO),
            // latency grows by T_t (the FIFO's get interface launches the
            // downstream stage on the receiver clock).
            if internal && !z && graph.is_register_allowed(cand.node) && !fifo_marked[cand.node.index()]
            {
                let stage = cand.delay + fifo_res * cand.cap * 1.0e-3 + fifo_k;
                if stage <= t_cur {
                    fifo_marked[cand.node.index()] = true;
                    let trail = arena.push(cand.node, Some(fifo_id), cand.trail);
                    let mut next = cand;
                    next.cap = fifo_cap;
                    next.delay = fifo_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.fifo_inserted = true;
                    next.latency = cand.latency + t_t;
                    qstar.push(next.latency, next);
                } else {
                    stats.bound_rejected += 1;
                }
            }
        }

        // ExtractAllMin(Q*): promote the minimum-latency wave front.
        let Some(l_min) = qstar.peek_key() else {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = prune.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        };
        stats.waves += 1;
        prune.advance_wave();
        while qstar.peek_key() == Some(l_min) {
            stats.budget_charges += 1;
            stats.promoted += 1;
            meter.charge_expand()?;
            // crlint-allow: CR002 `peek_key` on the same queue just returned Some
            let cand = qstar.pop().expect("peeked");
            let key = cand.node.index() * 2 + usize::from(cand.fifo_inserted);
            prune.try_admit(key, cand.cap, cand.delay, 0.0, false, &mut stats.pruned);
            queue.push(cand.delay, cand);
            stats.record_push(queue.len());
        }
    }
}

/// Arena-engine search: flat candidate storage, monotone bucket queues
/// (the latency-keyed `Q*` included), and sorted Pareto fronts. Returns
/// exactly what [`solve_legacy`] returns. No goal pruning: the
/// two-domain latency objective has no admissible single-period bound.
fn solve_arena(
    ctx: &Ctx<'_>,
    t_s: f64,
    t_t: f64,
    budget: SearchBudget,
    stats: &mut SearchStats,
) -> Result<GalsSolution, RouteError> {
    let graph = ctx.graph;
    let n = graph.node_count();
    let mut meter = BudgetMeter::new(budget, SearchStage::Gals);
    let mut arena = Arena::new();
    let mut cands = CandArena::new();
    // Separate Pareto fronts per z: key = node·2 + z.
    let mut fronts = SortedFronts::new(n * 2);
    // A_0 / A_1: register inserted at v with the given z; F: FIFO at v.
    let mut reg_marked = [vec![false; n], vec![false; n]];
    let mut fifo_marked = vec![false; n];

    let fifo = ctx.lib.gate(ctx.lib.mcfifo());
    let fifo_res = fifo.driver_res().ohms();
    let fifo_cap = fifo.input_cap().ff();
    let fifo_k = fifo.intrinsic().ps();
    let fifo_setup = fifo.setup().ps();
    let fifo_id = ctx.lib.mcfifo();

    let mut queue = DialQueue::new(ctx.queue_scale());
    // Q*: next wave fronts, keyed by latency `l` — bucketed by the
    // faster period, the smallest latency increment a stage can add.
    let mut qstar = DialQueue::new(t_s.min(t_t));

    let gt = ctx.lib.gate(ctx.gt);
    let root = arena.push(ctx.t, None, NO_PARENT);
    let start = Cand::start(gt.input_cap().ff(), gt.setup().ps(), root, ctx.t);
    let sidx = cands.alloc(&start);
    if fronts.admits(ctx.t.index() * 2, start.cap, start.delay, 0.0, false) {
        fronts.insert(
            ctx.t.index() * 2,
            start.cap,
            start.delay,
            0.0,
            false,
            sidx,
            &mut cands,
            &mut stats.pruned,
        );
    }
    queue.push(start.delay, sidx);
    stats.record_push(queue.len());

    loop {
        while let Some(qidx) = queue.pop() {
            // Entry evicted from its front while queued: the slot was
            // reclaimed, so skip before charging anything.
            if cands.is_dead(qidx) {
                continue;
            }
            match failpoint::hit("gals::pop") {
                Some(FailAction::Panic) => panic!("failpoint gals::pop: forced panic"),
                Some(FailAction::BudgetExhausted) => return Err(meter.exceeded()),
                Some(FailAction::NoRoute) => return Err(RouteError::NoFeasibleRoute),
                // I/O actions only apply at `serve::*` sites; inert here.
                Some(FailAction::IoError | FailAction::ShortIo) | None => {}
            }
            let cand = cands.get(qidx);
            stats.budget_charges += 1;
            stats.arena_steps = arena.len() as u64;
            meter.charge_pop(arena.len())?;
            stats.configs += 1;
            let z = cand.fifo_inserted;
            let key = cand.node.index() * 2 + usize::from(z);
            if fronts.is_stale(key, cand.cap, cand.delay, 0.0, !cand.gate_here) {
                stats.stale_skipped += 1;
                continue;
            }
            let t_cur = t_of(z, t_s, t_t);

            // Step 4: source arrival — accept only with the FIFO inserted.
            if cand.node == ctx.s && z {
                let total = ctx.finish_at_source(cand.cap, cand.delay);
                if total <= t_s {
                    stats.arena_steps = arena.len() as u64;
                    stats.front_comparisons = fronts.comparisons();
                    return Ok(build(ctx, &arena, cand, t_s, t_t, *stats));
                }
            }

            // Step 5: wire expansion, bounded by the current domain period.
            for v in graph.neighbors(cand.node) {
                stats.budget_charges += 1;
                meter.charge_expand()?;
                let (re, ce) = ctx.edge(cand.node, v);
                let cap = cand.cap + ce;
                let delay = cand.delay + re * (cand.cap + ce / 2.0);
                if delay > t_cur - ctx.reg_k - ctx.min_res * cap * 1.0e-3 {
                    stats.bound_rejected += 1;
                    continue;
                }
                let vkey = v.index() * 2 + usize::from(z);
                if !fronts.admits(vkey, cap, delay, 0.0, true) {
                    stats.pruned += 1;
                    continue;
                }
                let trail = arena.push(v, None, cand.trail);
                let mut next = cand;
                next.cap = cap;
                next.delay = delay;
                next.node = v;
                next.trail = trail;
                next.gate_here = false;
                let nidx = cands.alloc(&next);
                fronts.insert(vkey, cap, delay, 0.0, true, nidx, &mut cands, &mut stats.pruned);
                queue.push(delay, nidx);
                stats.record_push(queue.len());
            }

            let internal = cand.node != ctx.s && cand.node != ctx.t && !cand.gate_here;

            // Step 7: buffers (remember each stands for a pair, one per
            // signal direction — §IV-B).
            if internal && graph.is_insertable(cand.node) {
                for b in &ctx.buffers {
                    stats.budget_charges += 1;
                    meter.charge_expand()?;
                    let cap = b.cap;
                    let delay = cand.delay + b.res * cand.cap * 1.0e-3 + b.k;
                    if delay > t_cur - ctx.reg_k {
                        stats.bound_rejected += 1;
                        continue;
                    }
                    if !fronts.admits(key, cap, delay, 0.0, false) {
                        stats.pruned += 1;
                        continue;
                    }
                    let trail = arena.push(cand.node, Some(b.id), cand.trail);
                    let mut next = cand;
                    next.cap = cap;
                    next.delay = delay;
                    next.trail = trail;
                    next.gate_here = true;
                    let nidx = cands.alloc(&next);
                    fronts.insert(key, cap, delay, 0.0, false, nidx, &mut cands, &mut stats.pruned);
                    queue.push(delay, nidx);
                    stats.record_push(queue.len());
                }
            }

            // Step 8: relay station (register) insertion → next wave,
            // latency grows by the current domain period.
            if internal
                && graph.is_register_allowed(cand.node)
                && !reg_marked[usize::from(z)][cand.node.index()]
            {
                let stage = ctx.register_stage(cand.cap, cand.delay);
                if stage <= t_cur {
                    reg_marked[usize::from(z)][cand.node.index()] = true;
                    let trail = arena.push(cand.node, Some(ctx.reg_id), cand.trail);
                    let mut next = cand;
                    next.cap = ctx.reg_cap;
                    next.delay = ctx.reg_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.latency = cand.latency + t_cur;
                    qstar.push(next.latency, cands.alloc(&next));
                } else {
                    stats.bound_rejected += 1;
                }
            }

            // Step 9: MCFIFO insertion (only once, only before any FIFO),
            // latency grows by T_t (the FIFO's get interface launches the
            // downstream stage on the receiver clock).
            if internal && !z && graph.is_register_allowed(cand.node) && !fifo_marked[cand.node.index()]
            {
                let stage = cand.delay + fifo_res * cand.cap * 1.0e-3 + fifo_k;
                if stage <= t_cur {
                    fifo_marked[cand.node.index()] = true;
                    let trail = arena.push(cand.node, Some(fifo_id), cand.trail);
                    let mut next = cand;
                    next.cap = fifo_cap;
                    next.delay = fifo_setup;
                    next.trail = trail;
                    next.gate_here = true;
                    next.fifo_inserted = true;
                    next.latency = cand.latency + t_t;
                    qstar.push(next.latency, cands.alloc(&next));
                } else {
                    stats.bound_rejected += 1;
                }
            }
        }

        // ExtractAllMin(Q*): promote the minimum-latency wave front.
        let Some(l_min) = qstar.peek_key() else {
            stats.arena_steps = arena.len() as u64;
            stats.front_comparisons = fronts.comparisons();
            return Err(RouteError::NoFeasibleRoute);
        };
        stats.waves += 1;
        fronts.advance_wave();
        while qstar.peek_key() == Some(l_min) {
            stats.budget_charges += 1;
            stats.promoted += 1;
            meter.charge_expand()?;
            // crlint-allow: CR002 `peek_key` on the same queue just returned Some
            let nidx = qstar.pop().expect("peeked");
            let cand = cands.get(nidx);
            let key = cand.node.index() * 2 + usize::from(cand.fifo_inserted);
            // Mirrors the legacy unconditional promotion: file into the
            // front when admissible, but push regardless — a dominated
            // seed is caught by `is_stale` at its pop, exactly as the
            // reference engine does.
            if fronts.admits(key, cand.cap, cand.delay, 0.0, false) {
                fronts.insert(
                    key,
                    cand.cap,
                    cand.delay,
                    0.0,
                    false,
                    nidx,
                    &mut cands,
                    &mut stats.pruned,
                );
            }
            queue.push(cand.delay, nidx);
            stats.record_push(queue.len());
        }
    }
}

fn build(
    ctx: &Ctx<'_>,
    arena: &Arena,
    cand: Cand,
    t_s: f64,
    t_t: f64,
    mut stats: SearchStats,
) -> GalsSolution {
    stats.touched = arena.touched(ctx.graph);
    let (nodes, mut labels) = arena.reconstruct(cand.trail);
    let points: Vec<Point> = nodes.iter().map(|&n| ctx.graph.point(n)).collect();
    labels[0] = Some(ctx.gs);
    let last = labels.len() - 1;
    labels[last] = Some(ctx.gt);
    // Count relay stations on each side of the FIFO.
    let mut regs_source_side = 0;
    let mut regs_sink_side = 0;
    let mut seen_fifo = false;
    for &label in labels.iter().take(last).skip(1) {
        if let Some(id) = label {
            match ctx.lib.gate(id).kind() {
                GateKind::McFifo => seen_fifo = true,
                GateKind::Register | GateKind::Latch => {
                    if seen_fifo {
                        regs_sink_side += 1;
                    } else {
                        regs_source_side += 1;
                    }
                }
                GateKind::Buffer => {}
            }
        }
    }
    GalsSolution {
        path: RoutedPath::new(points, labels, ctx.lib),
        t_s: Time::from_ps(t_s),
        t_t: Time::from_ps(t_t),
        regs_source_side,
        regs_sink_side,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;
    use clockroute_geom::BlockageMap;

    fn setup(n: u32, pitch_um: f64) -> (GridGraph, Technology, GateLibrary) {
        (
            GridGraph::open(n, n, Length::from_um(pitch_um)),
            Technology::paper_070nm(),
            GateLibrary::paper_library(),
        )
    }

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn solve(
        g: &GridGraph,
        tech: &Technology,
        lib: &GateLibrary,
        s: Point,
        t: Point,
        t_s: f64,
        t_t: f64,
    ) -> Result<GalsSolution, RouteError> {
        GalsSpec::new(g, tech, lib)
            .source(s)
            .sink(t)
            .periods(Time::from_ps(t_s), Time::from_ps(t_t))
            .solve()
    }

    #[test]
    fn period_validation() {
        let (g, tech, lib) = setup(5, 100.0);
        let base = GalsSpec::new(&g, &tech, &lib).source(p(0, 0)).sink(p(4, 4));
        assert_eq!(base.clone().solve().unwrap_err(), RouteError::InvalidPeriod);
        assert_eq!(
            base.periods(Time::from_ps(100.0), Time::ZERO)
                .solve()
                .unwrap_err(),
            RouteError::InvalidPeriod
        );
    }

    #[test]
    fn always_contains_exactly_one_fifo() {
        let (g, tech, lib) = setup(10, 250.0);
        let sol = solve(&g, &tech, &lib, p(0, 0), p(9, 9), 400.0, 400.0).unwrap();
        assert_eq!(sol.path().fifo_count(), 1);
        // Even a short, loose-clock route needs the FIFO: at least
        // two stages exist.
        let report = sol.path().report(&g, &tech, &lib);
        assert!(report.stages.len() >= 2);
        assert_eq!(report.fifo_count, 1);
    }

    #[test]
    fn stage_delays_respect_both_domains() {
        let (g, tech, lib) = setup(30, 500.0);
        for (ts, tt) in [(300.0, 300.0), (200.0, 300.0), (300.0, 200.0), (250.0, 420.0)] {
            let sol = solve(&g, &tech, &lib, p(0, 0), p(29, 29), ts, tt).unwrap();
            let report = sol.path().report(&g, &tech, &lib);
            assert!(
                report.is_feasible_gals(
                    Time::from_ps(ts + 1e-9),
                    Time::from_ps(tt + 1e-9)
                ),
                "({ts},{tt}): stage delays {:?}",
                report.stages
            );
        }
    }

    #[test]
    fn latency_formula_consistent_with_report() {
        let (g, tech, lib) = setup(30, 500.0);
        let (ts, tt) = (300.0, 400.0);
        let sol = solve(&g, &tech, &lib, p(0, 0), p(29, 29), ts, tt).unwrap();
        let report = sol.path().report(&g, &tech, &lib);
        let lat = report
            .latency_gals(Time::from_ps(ts + 1e-9), Time::from_ps(tt + 1e-9))
            .expect("feasible");
        // Compare against the analytic formula on the solution object
        // (tolerances only for the +1e-9 period padding).
        assert!((lat.ps() - sol.latency().ps()).abs() < 1e-3);
        assert_eq!(
            sol.regs_source_side() + sol.regs_sink_side(),
            sol.path().register_count()
        );
    }

    #[test]
    fn asymmetric_periods_push_fifo_toward_slow_side() {
        // With a much slower receiver clock, sink-side stages span more
        // distance per cycle, so fewer sink-side relays are needed: the
        // optimiser exploits the cheap (slow) domain.
        let (g, tech, lib) = setup(40, 500.0);
        let fast_snk = solve(&g, &tech, &lib, p(0, 0), p(39, 39), 600.0, 150.0).unwrap();
        let slow_snk = solve(&g, &tech, &lib, p(0, 0), p(39, 39), 150.0, 600.0).unwrap();
        // Mirror-symmetric configurations give mirror-symmetric optima.
        assert_eq!(fast_snk.latency(), slow_snk.latency());
        assert_eq!(fast_snk.regs_source_side(), slow_snk.regs_sink_side());
        assert_eq!(fast_snk.regs_sink_side(), slow_snk.regs_source_side());
    }

    #[test]
    fn equal_periods_match_rbp_latency() {
        // With T_s = T_t = T the MCFIFO is delay-identical to a register,
        // so it simply takes the place of one of RBP's synchronizers:
        // whenever RBP needs at least one register, the GALS optimum has
        // the same stage count and the same latency.
        let (g, tech, lib) = setup(30, 500.0);
        let t = 300.0;
        let rbp = crate::RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(29, 29))
            .period(Time::from_ps(t))
            .solve()
            .unwrap();
        assert!(rbp.register_count() >= 1);
        let gals = solve(&g, &tech, &lib, p(0, 0), p(29, 29), t, t).unwrap();
        let rbp_stages = rbp.register_count() + 1;
        let gals_stages = gals.regs_source_side() + gals.regs_sink_side() + 2;
        assert_eq!(gals_stages, rbp_stages);
        assert!((gals.latency().ps() - rbp.latency().ps()).abs() < 1e-6);

        // On a short net where RBP needs no register, the FIFO is the one
        // extra synchronizer: latency 2T vs T.
        let rbp0 = crate::RbpSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(2, 0))
            .period(Time::from_ps(t))
            .solve()
            .unwrap();
        assert_eq!(rbp0.register_count(), 0);
        let gals0 = solve(&g, &tech, &lib, p(0, 0), p(2, 0), t, t).unwrap();
        assert_eq!(gals0.regs_source_side() + gals0.regs_sink_side(), 0);
        assert!((gals0.latency().ps() - 2.0 * t).abs() < 1e-6);
    }

    #[test]
    fn routes_around_blockages() {
        let mut blk = BlockageMap::new(25, 25);
        for y in 0..24 {
            blk.block_edge(p(12, y), p(13, y));
        }
        let g = GridGraph::new(blk, Length::from_um(500.0), Length::from_um(500.0));
        let tech = Technology::paper_070nm();
        let lib = GateLibrary::paper_library();
        let sol = solve(&g, &tech, &lib, p(0, 0), p(24, 0), 300.0, 350.0).unwrap();
        assert!(sol.path().grid_path().validate(&g).is_ok());
        assert!(sol.path().edge_count() > 24);
        assert_eq!(sol.path().fifo_count(), 1);
    }

    #[test]
    fn infeasible_when_grid_too_coarse() {
        let (g, tech, lib) = setup(10, 500.0);
        assert_eq!(
            solve(&g, &tech, &lib, p(0, 0), p(9, 9), 50.0, 50.0).unwrap_err(),
            RouteError::NoFeasibleRoute
        );
    }

    #[test]
    fn budget_trips_with_gals_stage() {
        let (g, tech, lib) = setup(20, 500.0);
        let err = GalsSpec::new(&g, &tech, &lib)
            .source(p(0, 0))
            .sink(p(19, 19))
            .periods(Time::from_ps(200.0), Time::from_ps(250.0))
            .budget(crate::SearchBudget::unlimited().with_max_candidates(15))
            .solve()
            .unwrap_err();
        assert!(
            matches!(
                err,
                RouteError::BudgetExceeded {
                    stage: crate::SearchStage::Gals,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn deterministic() {
        let (g, tech, lib) = setup(20, 500.0);
        let run = || solve(&g, &tech, &lib, p(0, 0), p(19, 19), 250.0, 300.0).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.path(), b.path());
        assert_eq!(a.stats(), b.stats());
    }
}
