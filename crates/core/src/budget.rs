//! Search budgets: cooperative resource limits for the routing searches.
//!
//! The optimal searches are worst-case expensive (tight periods on big
//! grids can touch millions of candidates), and an interconnect planner
//! embedded in an architectural-exploration loop must never hang on one
//! hostile net. A [`SearchBudget`] bounds a single `solve` call along
//! three axes:
//!
//! * **wall clock** — a deadline measured from the start of the search;
//! * **candidates** — the number of configurations popped off the queue;
//! * **arena memory** — the number of [`Step`](crate::engine) records
//!   allocated for partial routes (the dominant allocation).
//!
//! Enforcement is *cooperative*: every search checks its meter at the top
//! of the main pop loop and returns
//! [`RouteError::BudgetExceeded`] with diagnostics when a limit trips.
//! Candidate and arena caps are exact; the wall clock is sampled every
//! [`CLOCK_CHECK_INTERVAL`] pops to keep `Instant::now` off the hot path.
//! Because a single pop can fan out into a long neighbour/buffer
//! expansion or wave-promotion burst, the searches additionally charge
//! each expansion step (`charge_expand`), where the clock is sampled
//! every [`EXPANSION_CHECK_INTERVAL`] charges — so a deadline overshoots
//! by at most one sampling interval's worth of work, never by a whole
//! expansion burst.

use crate::RouteError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// How many candidate pops pass between wall-clock samples.
pub const CLOCK_CHECK_INTERVAL: u64 = 64;

/// How many expansion charges pass between wall-clock samples.
/// Expansions are an order of magnitude more frequent than pops, so the
/// interval is wider to keep `Instant::now` cost negligible.
pub const EXPANSION_CHECK_INTERVAL: u64 = 256;

/// Which search tripped a budget (diagnostic payload of
/// [`RouteError::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStage {
    /// Minimum-delay buffered search ([`FastPathSpec`](crate::FastPathSpec)).
    FastPath,
    /// Single-domain registered search ([`RbpSpec`](crate::RbpSpec)).
    Rbp,
    /// Two-domain MCFIFO search ([`GalsSpec`](crate::GalsSpec)).
    Gals,
    /// Transparent-latch search ([`LatchSpec`](crate::LatchSpec)).
    Latch,
    /// Congestion-priced flow-mode routing (`clockroute-flow`).
    Flow,
}

impl fmt::Display for SearchStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SearchStage::FastPath => "fast path",
            SearchStage::Rbp => "RBP",
            SearchStage::Gals => "GALS",
            SearchStage::Latch => "latch",
            SearchStage::Flow => "flow",
        })
    }
}

/// Resource limits for one `solve` call. The default is unlimited; each
/// axis is opt-in.
///
/// # Example
///
/// ```
/// use clockroute_core::{FastPathSpec, RouteError, SearchBudget};
/// use clockroute_elmore::{Technology, GateLibrary};
/// use clockroute_grid::GridGraph;
/// use clockroute_geom::{Point, units::Length};
///
/// let graph = GridGraph::open(30, 30, Length::from_um(500.0));
/// let tech = Technology::paper_070nm();
/// let lib = GateLibrary::paper_library();
/// let err = FastPathSpec::new(&graph, &tech, &lib)
///     .source(Point::new(0, 0))
///     .sink(Point::new(29, 29))
///     .budget(SearchBudget::unlimited().with_max_candidates(3))
///     .solve()
///     .unwrap_err();
/// assert!(matches!(err, RouteError::BudgetExceeded { .. }));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchBudget {
    deadline: Option<Duration>,
    max_candidates: Option<u64>,
    max_arena_steps: Option<usize>,
}

impl SearchBudget {
    /// No limits at all (the default).
    pub fn unlimited() -> SearchBudget {
        SearchBudget::default()
    }

    /// Limits wall-clock time from the start of the search.
    pub fn with_deadline(mut self, d: Duration) -> SearchBudget {
        self.deadline = Some(d);
        self
    }

    /// Limits the number of candidates popped off the queue.
    pub fn with_max_candidates(mut self, n: u64) -> SearchBudget {
        self.max_candidates = Some(n);
        self
    }

    /// Limits the number of arena steps (partial-route records) allocated.
    pub fn with_max_arena_steps(mut self, n: usize) -> SearchBudget {
        self.max_arena_steps = Some(n);
        self
    }

    /// `true` if no axis is limited (the meter can skip all checks).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_candidates.is_none() && self.max_arena_steps.is_none()
    }
}

/// Per-search accounting against a [`SearchBudget`].
///
/// Created once per `solve` call (or once per flow-mode phase); the
/// search invokes `charge_pop` at the top of the main pop loop with the
/// current arena size.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: SearchBudget,
    stage: SearchStage,
    start: Instant,
    popped: u64,
    expansions: u64,
}

impl BudgetMeter {
    /// Starts metering a search against `budget`, stamping errors with
    /// `stage`. The wall clock starts now.
    pub fn new(budget: SearchBudget, stage: SearchStage) -> BudgetMeter {
        BudgetMeter {
            budget,
            stage,
            start: Instant::now(),
            popped: 0,
            expansions: 0,
        }
    }

    /// The error for an exhausted budget, with current diagnostics.
    pub fn exceeded(&self) -> RouteError {
        RouteError::BudgetExceeded {
            candidates: self.popped,
            elapsed: self.start.elapsed(),
            stage: self.stage,
        }
    }

    /// Accounts for one candidate pop. Returns `Err` when a limit trips.
    pub fn charge_pop(&mut self, arena_len: usize) -> Result<(), RouteError> {
        self.popped += 1;
        if self.budget.is_unlimited() {
            return Ok(());
        }
        if let Some(max) = self.budget.max_candidates {
            if self.popped > max {
                return Err(self.exceeded());
            }
        }
        if let Some(max) = self.budget.max_arena_steps {
            if arena_len > max {
                return Err(self.exceeded());
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.popped % CLOCK_CHECK_INTERVAL == 1 && self.start.elapsed() > deadline {
                return Err(self.exceeded());
            }
        }
        Ok(())
    }

    /// Accounts for one expansion step (a neighbour visit, a buffer
    /// insertion attempt or a wave-promotion move). Only the wall clock is
    /// enforced here: a pop can fan out into arbitrarily much expansion
    /// work, and without this check a deadline could overshoot by a whole
    /// burst.
    #[inline]
    pub fn charge_expand(&mut self) -> Result<(), RouteError> {
        let Some(deadline) = self.budget.deadline else {
            return Ok(());
        };
        self.expansions += 1;
        if self.expansions.is_multiple_of(EXPANSION_CHECK_INTERVAL) && self.start.elapsed() > deadline
        {
            return Err(self.exceeded());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut meter = BudgetMeter::new(SearchBudget::unlimited(), SearchStage::FastPath);
        for _ in 0..10_000 {
            assert!(meter.charge_pop(usize::MAX).is_ok());
        }
    }

    #[test]
    fn candidate_cap_is_exact() {
        let budget = SearchBudget::unlimited().with_max_candidates(5);
        let mut meter = BudgetMeter::new(budget, SearchStage::Rbp);
        for _ in 0..5 {
            assert!(meter.charge_pop(0).is_ok());
        }
        let err = meter.charge_pop(0).unwrap_err();
        match err {
            RouteError::BudgetExceeded {
                candidates, stage, ..
            } => {
                assert_eq!(candidates, 6);
                assert_eq!(stage, SearchStage::Rbp);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn arena_cap_trips_on_allocation_growth() {
        let budget = SearchBudget::unlimited().with_max_arena_steps(100);
        let mut meter = BudgetMeter::new(budget, SearchStage::Gals);
        assert!(meter.charge_pop(100).is_ok());
        assert!(matches!(
            meter.charge_pop(101),
            Err(RouteError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn zero_deadline_trips_on_first_sample() {
        let budget = SearchBudget::unlimited().with_deadline(Duration::ZERO);
        let mut meter = BudgetMeter::new(budget, SearchStage::Latch);
        // The first pop (popped == 1) is a clock-sample point.
        let err = meter.charge_pop(0).unwrap_err();
        assert!(matches!(
            err,
            RouteError::BudgetExceeded {
                stage: SearchStage::Latch,
                ..
            }
        ));
    }

    #[test]
    fn deadline_checked_only_at_sample_points() {
        let budget = SearchBudget::unlimited().with_deadline(Duration::ZERO);
        let mut meter = BudgetMeter::new(budget, SearchStage::FastPath);
        meter.popped = 1; // next pop is 2: not a sample point
        assert!(meter.charge_pop(0).is_ok());
    }

    #[test]
    fn expand_charges_are_free_without_deadline() {
        let budget = SearchBudget::unlimited().with_max_candidates(1);
        let mut meter = BudgetMeter::new(budget, SearchStage::Rbp);
        for _ in 0..10_000 {
            assert!(meter.charge_expand().is_ok());
        }
    }

    #[test]
    fn expand_trips_expired_deadline_within_one_interval() {
        let budget = SearchBudget::unlimited().with_deadline(Duration::ZERO);
        let mut meter = BudgetMeter::new(budget, SearchStage::Gals);
        let mut tripped_at = None;
        for i in 1..=2 * EXPANSION_CHECK_INTERVAL {
            if meter.charge_expand().is_err() {
                tripped_at = Some(i);
                break;
            }
        }
        assert_eq!(tripped_at, Some(EXPANSION_CHECK_INTERVAL));
    }

    #[test]
    fn stage_display() {
        assert_eq!(SearchStage::FastPath.to_string(), "fast path");
        assert_eq!(SearchStage::Rbp.to_string(), "RBP");
        assert_eq!(SearchStage::Gals.to_string(), "GALS");
        assert_eq!(SearchStage::Latch.to_string(), "latch");
        assert_eq!(SearchStage::Flow.to_string(), "flow");
    }
}
