//! Solution types: fully-labelled routed paths and per-algorithm results.

use clockroute_elmore::delay::{evaluate, RouteElem, RouteReport};
use clockroute_elmore::{GateId, GateKind, GateLibrary, Technology};
use clockroute_geom::units::{Length, Time};
use clockroute_geom::Point;
use clockroute_grid::{GridGraph, GridPath};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::SearchStats;

/// A routed path together with its gate labelling `m` — the output object
/// of all three algorithms.
///
/// Positions run from source to sink. `labels[0]` is the driving gate
/// `g_s`, `labels[last]` the receiving gate `g_t`; interior entries are
/// the inserted buffers / registers / MCFIFO (or `None`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedPath {
    points: Vec<Point>,
    labels: Vec<Option<GateId>>,
    buffer_count: usize,
    register_count: usize,
    fifo_count: usize,
}

impl RoutedPath {
    /// Assembles a routed path from raw search output.
    ///
    /// A single-point path is the degenerate zero-length route (source
    /// and sink share a grid node); it carries one terminal label and no
    /// inserted elements.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `labels` differ in length, the path is
    /// empty, or a terminal label is missing.
    pub fn new(points: Vec<Point>, labels: Vec<Option<GateId>>, lib: &GateLibrary) -> RoutedPath {
        assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
        assert!(!points.is_empty(), "a routed path needs at least one point");
        assert!(
            labels[0].is_some() && labels[labels.len() - 1].is_some(),
            "terminal gates must be labelled"
        );
        let mut buffer_count = 0;
        let mut register_count = 0;
        let mut fifo_count = 0;
        if labels.len() >= 2 {
            for &label in &labels[1..labels.len() - 1] {
                if let Some(id) = label {
                    match lib.gate(id).kind() {
                        GateKind::Buffer => buffer_count += 1,
                        GateKind::Register | GateKind::Latch => register_count += 1,
                        GateKind::McFifo => fifo_count += 1,
                    }
                }
            }
        }
        RoutedPath {
            points,
            labels,
            buffer_count,
            register_count,
            fifo_count,
        }
    }

    /// The grid points of the route, source first.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The labelling `m`, aligned with [`points`](Self::points).
    #[inline]
    pub fn labels(&self) -> &[Option<GateId>] {
        &self.labels
    }

    /// Source grid point.
    pub fn source(&self) -> Point {
        self.points[0]
    }

    /// Sink grid point.
    pub fn sink(&self) -> Point {
        self.points[self.points.len() - 1]
    }

    /// Number of inserted buffers.
    #[inline]
    pub fn buffer_count(&self) -> usize {
        self.buffer_count
    }

    /// Number of inserted registers / relay stations (excluding the
    /// terminals).
    #[inline]
    pub fn register_count(&self) -> usize {
        self.register_count
    }

    /// Number of inserted MCFIFOs (0 or 1).
    #[inline]
    pub fn fifo_count(&self) -> usize {
        self.fifo_count
    }

    /// Number of grid edges traversed.
    pub fn edge_count(&self) -> usize {
        self.points.len() - 1
    }

    /// The bare geometric path.
    pub fn grid_path(&self) -> GridPath {
        GridPath::new(self.points.clone())
    }

    /// Iterates over `(point, gate)` pairs for every labelled position,
    /// terminals included.
    pub fn gates(&self) -> impl Iterator<Item = (Point, GateId)> + '_ {
        self.points
            .iter()
            .zip(self.labels.iter())
            .filter_map(|(&p, &l)| l.map(|g| (p, g)))
    }

    /// Converts to the linear [`RouteElem`] representation consumed by the
    /// ground-truth delay evaluator.
    pub fn to_route_elems(&self, graph: &GridGraph) -> Vec<RouteElem> {
        let mut elems = Vec::with_capacity(self.points.len() * 2);
        // crlint-allow: CR002 construction invariant: the source point always carries its gate label
        elems.push(RouteElem::Gate(self.labels[0].expect("source gate")));
        for i in 1..self.points.len() {
            let a = graph.node(self.points[i - 1]);
            let b = graph.node(self.points[i]);
            elems.push(RouteElem::Wire(graph.edge_length(a, b)));
            if let Some(g) = self.labels[i] {
                elems.push(RouteElem::Gate(g));
            }
        }
        // The sink label is already appended by the loop's last iteration.
        elems
    }

    /// Ground-truth Elmore re-evaluation of the route.
    pub fn report(&self, graph: &GridGraph, tech: &Technology, lib: &GateLibrary) -> RouteReport {
        evaluate(&self.to_route_elems(graph), tech, lib)
            // crlint-allow: CR002 construction invariant: searches only build evaluable routes
            .expect("a RoutedPath always forms a well-formed route")
    }

    /// Total physical wirelength.
    pub fn wirelength(&self, graph: &GridGraph) -> Length {
        self.grid_path().length(graph)
    }

    /// Grid-edge separations between consecutive *sequential* elements
    /// (terminals, registers, MCFIFO) — the paper's `MaxRegSep` /
    /// `MinRegSep` columns.
    pub fn register_separations(&self, lib: &GateLibrary) -> Vec<usize> {
        self.separations(|id| lib.gate(id).kind().is_sequential())
    }

    /// Grid-edge separations between consecutive inserted elements of any
    /// kind (terminals included) — the paper's `Max R/B Sep` column.
    pub fn element_separations(&self) -> Vec<usize> {
        self.separations(|_| true)
    }

    fn separations(&self, keep: impl Fn(GateId) -> bool) -> Vec<usize> {
        let mut seps = Vec::new();
        let mut last = 0usize;
        for i in 1..self.points.len() {
            let is_terminal = i == self.points.len() - 1;
            if let Some(id) = self.labels[i] {
                if is_terminal || keep(id) {
                    seps.push(i - last);
                    last = i;
                }
            }
        }
        seps
    }
}

impl fmt::Display for RoutedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route {} → {} ({} edges, {} buffers, {} registers, {} fifos)",
            self.source(),
            self.sink(),
            self.edge_count(),
            self.buffer_count,
            self.register_count,
            self.fifo_count
        )
    }
}

/// Result of the fast path search: the minimum-delay buffered path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastPathSolution {
    pub(crate) path: RoutedPath,
    pub(crate) delay: Time,
    pub(crate) stats: SearchStats,
}

impl FastPathSolution {
    /// The labelled route.
    pub fn path(&self) -> &RoutedPath {
        &self.path
    }

    /// The minimised source→sink Elmore delay (including the terminal
    /// gates' contributions).
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// Search-effort counters.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Number of inserted buffers.
    pub fn buffer_count(&self) -> usize {
        self.path.buffer_count()
    }
}

/// Result of the RBP search: the minimum-latency registered-buffered path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbpSolution {
    pub(crate) path: RoutedPath,
    pub(crate) period: Time,
    pub(crate) stats: SearchStats,
    pub(crate) source_stage: Time,
    pub(crate) sink_stage: Time,
}

impl RbpSolution {
    /// The labelled route.
    pub fn path(&self) -> &RoutedPath {
        &self.path
    }

    /// The clock period the route was synthesised for.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Number of inserted registers `p`.
    pub fn register_count(&self) -> usize {
        self.path.register_count()
    }

    /// Number of inserted buffers.
    pub fn buffer_count(&self) -> usize {
        self.path.buffer_count()
    }

    /// Cycle latency `T_φ × (p + 1)` (paper §III).
    pub fn latency(&self) -> Time {
        self.period * (self.path.register_count() as f64 + 1.0)
    }

    /// Slack of the first stage (at the source): `T_φ − stage delay`.
    pub fn source_slack(&self) -> Time {
        self.period - self.source_stage
    }

    /// Slack of the last stage (into the sink): `T_φ − stage delay`.
    pub fn sink_slack(&self) -> Time {
        self.period - self.sink_stage
    }

    /// Search-effort counters.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

/// Result of the GALS search: the minimum-latency two-domain path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GalsSolution {
    pub(crate) path: RoutedPath,
    pub(crate) t_s: Time,
    pub(crate) t_t: Time,
    pub(crate) regs_source_side: usize,
    pub(crate) regs_sink_side: usize,
    pub(crate) stats: SearchStats,
}

impl GalsSolution {
    /// The labelled route.
    pub fn path(&self) -> &RoutedPath {
        &self.path
    }

    /// Sender-domain clock period `T_s`.
    pub fn t_s(&self) -> Time {
        self.t_s
    }

    /// Receiver-domain clock period `T_t`.
    pub fn t_t(&self) -> Time {
        self.t_t
    }

    /// Relay stations between the source and the MCFIFO (`Reg-s`).
    pub fn regs_source_side(&self) -> usize {
        self.regs_source_side
    }

    /// Relay stations between the MCFIFO and the sink (`Reg-t`).
    pub fn regs_sink_side(&self) -> usize {
        self.regs_sink_side
    }

    /// Number of inserted buffers.
    pub fn buffer_count(&self) -> usize {
        self.path.buffer_count()
    }

    /// Empty-FIFO latency `T_s·(Reg_s+1) + T_t·(Reg_t+1)` (paper §IV).
    pub fn latency(&self) -> Time {
        self.t_s * (self.regs_source_side as f64 + 1.0)
            + self.t_t * (self.regs_sink_side as f64 + 1.0)
    }

    /// Search-effort counters.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockroute_geom::units::Length;

    fn p(x: u32, y: u32) -> Point {
        Point::new(x, y)
    }

    fn sample() -> (GridGraph, GateLibrary, RoutedPath) {
        let graph = GridGraph::open(6, 1, Length::from_um(1000.0));
        let lib = GateLibrary::paper_library();
        let reg = lib.register();
        let buf = lib.buffers().next().unwrap();
        let points = vec![p(0, 0), p(1, 0), p(2, 0), p(3, 0), p(4, 0), p(5, 0)];
        let labels = vec![
            Some(reg),
            None,
            Some(buf),
            None,
            Some(reg),
            Some(reg),
        ];
        let path = RoutedPath::new(points, labels, &lib);
        (graph, lib, path)
    }

    #[test]
    fn counts_and_accessors() {
        let (_, _, path) = sample();
        assert_eq!(path.buffer_count(), 1);
        assert_eq!(path.register_count(), 1);
        assert_eq!(path.fifo_count(), 0);
        assert_eq!(path.edge_count(), 5);
        assert_eq!(path.source(), p(0, 0));
        assert_eq!(path.sink(), p(5, 0));
        assert_eq!(path.gates().count(), 4);
    }

    #[test]
    fn route_elems_structure() {
        let (graph, _, path) = sample();
        let elems = path.to_route_elems(&graph);
        // g_s, 5 wires, buffer, register, g_t = 9 elements.
        assert_eq!(elems.len(), 9);
        assert!(matches!(elems[0], RouteElem::Gate(_)));
        assert!(matches!(elems[8], RouteElem::Gate(_)));
        let wires = elems
            .iter()
            .filter(|e| matches!(e, RouteElem::Wire(_)))
            .count();
        assert_eq!(wires, 5);
    }

    #[test]
    fn report_matches_counts() {
        let (graph, lib, path) = sample();
        let tech = Technology::paper_070nm();
        let report = path.report(&graph, &tech, &lib);
        assert_eq!(report.buffer_count, 1);
        assert_eq!(report.register_count, 1);
        // 1 internal register ⇒ 2 stages.
        assert_eq!(report.stages.len(), 2);
        assert!((path.wirelength(&graph).um() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn separations() {
        let (_, lib, path) = sample();
        // Sequential at positions 0, 4, 5 ⇒ separations 4, 1.
        assert_eq!(path.register_separations(&lib), vec![4, 1]);
        // All elements at 0, 2, 4, 5 ⇒ separations 2, 2, 1.
        assert_eq!(path.element_separations(), vec![2, 2, 1]);
    }

    #[test]
    fn single_point_route_is_degenerate_but_valid() {
        let lib = GateLibrary::paper_library();
        let path = RoutedPath::new(vec![p(3, 3)], vec![Some(lib.register())], &lib);
        assert_eq!(path.edge_count(), 0);
        assert_eq!(path.source(), p(3, 3));
        assert_eq!(path.sink(), p(3, 3));
        assert_eq!(path.buffer_count(), 0);
        assert_eq!(path.register_count(), 0);
        assert_eq!(path.fifo_count(), 0);
        assert_eq!(path.gates().count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let lib = GateLibrary::paper_library();
        let _ = RoutedPath::new(vec![p(0, 0), p(1, 0)], vec![Some(lib.register())], &lib);
    }

    #[test]
    #[should_panic(expected = "terminal gates")]
    fn missing_terminal_gate_rejected() {
        let lib = GateLibrary::paper_library();
        let _ = RoutedPath::new(vec![p(0, 0), p(1, 0)], vec![Some(lib.register()), None], &lib);
    }

    #[test]
    fn display_summarises() {
        let (_, _, path) = sample();
        let text = path.to_string();
        assert!(text.contains("5 edges"));
        assert!(text.contains("1 buffers"));
    }

    #[test]
    fn rbp_solution_latency_formula() {
        let (_, _lib, path) = sample();
        let sol = RbpSolution {
            path,
            period: Time::from_ps(100.0),
            stats: SearchStats::new(),
            source_stage: Time::from_ps(80.0),
            sink_stage: Time::from_ps(60.0),
        };
        // 1 register ⇒ latency 2 × 100.
        assert_eq!(sol.latency(), Time::from_ps(200.0));
        assert_eq!(sol.source_slack(), Time::from_ps(20.0));
        assert_eq!(sol.sink_slack(), Time::from_ps(40.0));
    }

    #[test]
    fn gals_solution_latency_formula() {
        let lib = GateLibrary::paper_library();
        let reg = lib.register();
        let fifo = lib.mcfifo();
        let points = vec![p(0, 0), p(1, 0), p(2, 0)];
        let labels = vec![Some(reg), Some(fifo), Some(reg)];
        let path = RoutedPath::new(points, labels, &lib);
        let sol = GalsSolution {
            path,
            t_s: Time::from_ps(200.0),
            t_t: Time::from_ps(300.0),
            regs_source_side: 0,
            regs_sink_side: 0,
            stats: SearchStats::new(),
        };
        assert_eq!(sol.latency(), Time::from_ps(500.0));
        assert_eq!(sol.path().fifo_count(), 1);
    }
}
